"""Cluster-type summaries through the full engine: propagation across
joins/grouping, representative re-election under projection and deletes,
zoom-in on groups, and the $-functions over cluster objects."""

import pytest

from repro import Column, Database, ValueType

# Two well-separated topics so CluStream forms two groups per tuple.
DISEASE_NOTES = [
    "flu virus infection outbreak epidemic mortality sick birds",
    "infection epidemic flu mortality virus outbreak sick",
    "virus flu epidemic infection outbreak sick mortality",
]
HABITAT_NOTES = [
    "wetland lake marsh reed shoreline coastal water habitat",
    "marsh wetland reed lake habitat coastal shoreline water",
]


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [
        Column("name", ValueType.TEXT), Column("grp", ValueType.TEXT),
    ])
    database.create_cluster_instance("Clu")
    database.manager.link("t", "Clu")
    return database


def annotate_topics(db, oid, disease=0, habitat=0):
    for text in DISEASE_NOTES[:disease]:
        db.add_annotation(text, table="t", oid=oid)
    for text in HABITAT_NOTES[:habitat]:
        db.add_annotation(text, table="t", oid=oid)


class TestClusterObjects:
    def test_two_topics_two_groups(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=3, habitat=2)
        obj = db.manager.summary_set_for("t", oid).get_summary_object("Clu")
        assert obj.get_size() == 2
        sizes = sorted(size for _rep, size in obj.rep())
        assert sizes == [2, 3]

    def test_rep_ordered_by_group_size(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=3, habitat=2)
        obj = db.manager.summary_set_for("t", oid).get_summary_object("Clu")
        sizes = [size for _rep, size in obj.rep()]
        assert sizes == sorted(sizes, reverse=True)

    def test_zoom_in_on_largest_group(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=3, habitat=2)
        texts = db.zoom_in("t", oid, "Clu", 0)  # position 0 = largest
        assert len(texts) == 3
        assert all("flu" in t or "virus" in t for t in texts)


class TestClusterFunctionsInQueries:
    def test_get_size_predicate(self, db):
        for name, disease, habitat in [("two", 3, 2), ("one", 3, 0)]:
            oid = db.insert("t", {"name": name, "grp": "g"})
            annotate_topics(db, oid, disease=disease, habitat=habitat)
        result = db.sql(
            "Select name From t r Where "
            "r.$.getSummaryObject('Clu').getSize() = 2"
        )
        assert [t.get("name") for t in result.tuples] == ["two"]

    def test_get_group_size_in_select_list(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=3, habitat=2)
        result = db.sql(
            "Select name, r.$.getSummaryObject('Clu').getGroupSize(0) s "
            "From t r"
        )
        assert result.tuples[0].get("s") == 3

    def test_get_representative_function(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=3)
        result = db.sql(
            "Select r.$.getSummaryObject('Clu').getRepresentative(0) rep "
            "From t r"
        )
        rep = result.tuples[0].get("rep")
        assert any(kw in rep for kw in ("flu", "virus", "infection"))

    def test_structural_filter_keeps_cluster_only(self, db):
        db.create_classifier_instance(
            "C", ["A", "B"], [("alpha apple", "A"), ("beta ball", "B")]
        )
        db.manager.link("t", "C")
        oid = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid, disease=2)
        result = db.sql(
            "Select name From t "
            "FILTER SUMMARIES getSummaryType() = 'Cluster'"
        )
        assert set(result.summaries(0)) == {"Clu"}


class TestClusterPropagation:
    def test_group_by_merges_cluster_objects(self, db):
        for name in ("a", "b"):
            oid = db.insert("t", {"name": name, "grp": "same"})
            annotate_topics(db, oid, disease=2)
        result = db.sql(
            "Select grp, count(*) n From t Group By grp"
        )
        merged = result.summaries(0)["Clu"]
        # 4 disease-style annotations merged into the group's clusters:
        # total member count across groups must be 4 (no double counting).
        assert sum(size for _rep, size in merged) == 4

    def test_join_merges_cluster_objects(self, db):
        db.create_table("u", [Column("grp", ValueType.TEXT)])
        db.manager.link("u", "Clu")
        oid_t = db.insert("t", {"name": "a", "grp": "g"})
        annotate_topics(db, oid_t, disease=2)
        oid_u = db.insert("u", {"grp": "g"})
        db.add_annotation(HABITAT_NOTES[0], table="u", oid=oid_u)
        result = db.sql(
            "Select r.name From t r, u s Where r.grp = s.grp"
        )
        merged = result.summaries(0)["Clu"]
        assert sum(size for _rep, size in merged) == 3

    def test_delete_annotation_shrinks_group(self, db):
        oid = db.insert("t", {"name": "a", "grp": "g"})
        ann = db.add_annotation(DISEASE_NOTES[0], table="t", oid=oid)
        db.add_annotation(DISEASE_NOTES[1], table="t", oid=oid)
        before = db.manager.summary_set_for("t", oid) \
            .get_summary_object("Clu")
        assert sum(s for _r, s in before.rep()) == 2
        db.delete_annotation(ann.ann_id)
        after = db.manager.summary_set_for("t", oid) \
            .get_summary_object("Clu")
        assert sum(s for _r, s in after.rep()) == 1
