"""Unit + property tests for the page-based B-Tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, IndexError_
from repro.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_tree(unique=False, capacity=512):
    return BTree(BufferPool(DiskManager(), capacity=capacity), unique=unique)


def k(i):
    return f"{i:08d}".encode()


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert len(tree) == 0
        assert tree.search(b"missing") == []
        assert list(tree.items()) == []

    def test_insert_search(self):
        tree = make_tree()
        tree.insert(b"alpha", b"1")
        tree.insert(b"beta", b"2")
        assert tree.search(b"alpha") == [b"1"]
        assert tree.search(b"beta") == [b"2"]
        assert len(tree) == 2

    def test_duplicate_keys_allowed_by_default(self):
        tree = make_tree()
        tree.insert(b"dup", b"1")
        tree.insert(b"dup", b"2")
        assert sorted(tree.search(b"dup")) == [b"1", b"2"]

    def test_duplicate_pair_rejected(self):
        tree = make_tree()
        tree.insert(b"dup", b"1")
        with pytest.raises(DuplicateKeyError):
            tree.insert(b"dup", b"1")

    def test_unique_index_rejects_duplicate_key(self):
        tree = make_tree(unique=True)
        tree.insert(b"key", b"1")
        with pytest.raises(DuplicateKeyError):
            tree.insert(b"key", b"2")

    def test_delete_present(self):
        tree = make_tree()
        tree.insert(b"a", b"1")
        assert tree.delete(b"a", b"1") is True
        assert tree.search(b"a") == []
        assert len(tree) == 0

    def test_delete_absent_returns_false(self):
        tree = make_tree()
        tree.insert(b"a", b"1")
        assert tree.delete(b"a", b"2") is False
        assert tree.delete(b"zz", b"1") is False
        assert len(tree) == 1

    def test_oversize_entry_rejected(self):
        tree = make_tree()
        with pytest.raises(IndexError_):
            tree.insert(b"x" * 5000, b"y")


class TestSplitsAndScale:
    def test_many_inserts_force_splits(self):
        tree = make_tree()
        n = 5000
        for i in range(n):
            tree.insert(k(i), str(i).encode())
        assert len(tree) == n
        assert tree.height >= 2
        for i in (0, 1, n // 2, n - 1):
            assert tree.search(k(i)) == [str(i).encode()]

    def test_random_insert_order(self):
        tree = make_tree()
        rng = random.Random(17)
        keys = list(range(3000))
        rng.shuffle(keys)
        for i in keys:
            tree.insert(k(i), str(i).encode())
        assert [key for key, _ in tree.items()] == [k(i) for i in range(3000)]

    def test_height_grows_logarithmically(self):
        tree = make_tree()
        for i in range(20000):
            tree.insert(k(i), b"v")
        assert tree.height <= 4  # ~200 fanout

    def test_survives_cold_cache(self):
        tree = make_tree(capacity=4)
        for i in range(2000):
            tree.insert(k(i), str(i).encode())
        tree._cache.clear()
        tree.pool.clear()
        assert tree.search(k(1234)) == [b"1234"]
        assert len(list(tree.items())) == 2000


class TestRangeScans:
    def test_inclusive_range(self):
        tree = make_tree()
        for i in range(100):
            tree.insert(k(i), b"v")
        got = [key for key, _ in tree.range_scan(k(10), k(20))]
        assert got == [k(i) for i in range(10, 21)]

    def test_exclusive_bounds(self):
        tree = make_tree()
        for i in range(30):
            tree.insert(k(i), b"v")
        got = [
            key
            for key, _ in tree.range_scan(
                k(5), k(10), lo_inclusive=False, hi_inclusive=False
            )
        ]
        assert got == [k(i) for i in range(6, 10)]

    def test_open_ended_ranges(self):
        tree = make_tree()
        for i in range(50):
            tree.insert(k(i), b"v")
        assert len(list(tree.range_scan(None, k(9)))) == 10
        assert len(list(tree.range_scan(k(40), None))) == 10

    def test_range_with_duplicates(self):
        tree = make_tree()
        for i in range(10):
            for j in range(3):
                tree.insert(k(i), f"v{j}".encode())
        got = list(tree.range_scan(k(2), k(4)))
        assert len(got) == 9

    def test_empty_range(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(k(i), b"v")
        assert list(tree.range_scan(b"zzz", b"zzzz")) == []


class TestDeletesAtScale:
    def test_delete_half_then_scan(self):
        tree = make_tree()
        n = 2000
        for i in range(n):
            tree.insert(k(i), b"v")
        for i in range(0, n, 2):
            assert tree.delete(k(i), b"v")
        remaining = [key for key, _ in tree.items()]
        assert remaining == [k(i) for i in range(1, n, 2)]
        assert len(tree) == n // 2

    def test_delete_everything(self):
        tree = make_tree()
        for i in range(500):
            tree.insert(k(i), b"v")
        for i in range(500):
            assert tree.delete(k(i), b"v")
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_reinsert_after_delete(self):
        tree = make_tree()
        tree.insert(b"key", b"v")
        tree.delete(b"key", b"v")
        tree.insert(b"key", b"v")
        assert tree.search(b"key") == [b"v"]


class TestInstrumentation:
    def test_touches_counter(self):
        tree = make_tree()
        for i in range(1000):
            tree.insert(k(i), b"v")
        tree.reset_touches()
        tree.search(k(500))
        assert 0 < tree.touches <= 2 * tree.height + 2

    def test_node_count(self):
        tree = make_tree()
        for i in range(1000):
            tree.insert(k(i), b"v")
        assert tree.node_count() > 1


@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=20), st.binary(max_size=20)),
        min_size=1,
        max_size=300,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_items_sorted_and_complete(entries):
    tree = make_tree()
    for key, value in entries:
        tree.insert(key, value)
    got = list(tree.items())
    assert got == sorted(entries)


@given(
    st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=400),
    st.integers(min_value=0, max_value=400),
)
@settings(max_examples=40, deadline=None)
def test_property_range_scan_matches_filter(values, lo, hi):
    lo, hi = min(lo, hi), max(lo, hi)
    tree = make_tree()
    seen = set()
    for v in values:
        if v not in seen:
            tree.insert(k(v), b"")
            seen.add(v)
    got = [key for key, _ in tree.range_scan(k(lo), k(hi))]
    expected = [k(v) for v in sorted(seen) if lo <= v <= hi]
    assert got == expected


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=300),
)
@settings(max_examples=30, deadline=None)
def test_property_insert_delete_interleaved(ops):
    tree = make_tree()
    shadow = set()
    for v in ops:
        if v in shadow:
            assert tree.delete(k(v), b"")
            shadow.remove(v)
        else:
            tree.insert(k(v), b"")
            shadow.add(v)
    assert [key for key, _ in tree.items()] == [k(v) for v in sorted(shadow)]
    assert len(tree) == len(shadow)
