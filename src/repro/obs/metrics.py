"""Counter/timer registry.

A :class:`MetricsRegistry` is a flat namespace of named monotonic counters
(``inc``) and accumulated wall-time buckets (``timer``/``add_time``).  It is
deliberately tiny: dict updates under one mutex, no background machinery —
cheap enough to leave enabled in every run, which is what makes the counted
numbers comparable across benches (DESIGN.md §5's interpreter-noise
argument).  The mutex matters since the engine went concurrent: the
read-modify-write in ``inc`` is a classic lost-update race when sessions
on worker threads count through the same registry (locks, WAL, cache all
share it), and an unlocked ``snapshot`` could observe a dict mid-resize.

Naming convention used by the engine::

    maint.on_summary_insert      SummaryManager observer events (§4.1.2)
    maint.annotation_add         raw annotation mutations
    index.summary.<tbl>.<inst>.probes   Summary-BTree probe counts
    cache.hits / cache.misses    summary-cache lookups (repro.cache)
    cache.stores / cache.evictions / cache.invalidations / cache.rejections
                                 summary-cache admission and removal events
    cache.epoch_bumps[.<reason>] coarse invalidations (write / recover /
                                 repair / load / rebuild_oid_index)
    pool.hits / pool.misses      buffer-pool counters (merged at snapshot)
    disk.reads / disk.writes     DiskManager counters (merged at snapshot)
    faults.injected              total injected disk faults (repro.faults)
    faults.injected.<kind>       per-kind: fail_stop / transient /
                                 torn_write / bit_flip
    resilience.retries[.<op>]    transient I/O retries (repro.resilience)
    resilience.recovered         operations that succeeded after >=1 retry
    resilience.failures          operations that failed past the budget
    resilience.breaker.<state>   breaker transitions (closed/half-open/open)
    resilience.breaker.rejected  calls fast-failed by an open breaker
    resilience.timeouts          statements killed by their deadline
    resilience.cancelled         statements cooperatively cancelled
    resilience.quarantined / resilience.restored
                                 access-path health transitions
    resilience.degraded_plans    statements planned around unhealthy paths
    resilience.statement_retries statements re-run after mid-query index
                                 corruption quarantined their access paths
    resilience.breaker_state     snapshot gauge: 0=closed 1=half-open 2=open
    resilience.unhealthy_paths   snapshot gauge: quarantined path count
    txn.begins / txn.commits / txn.aborts / txn.empty_commits
                                 explicit-transaction lifecycle (repro.txn)
    txn.ops_committed            buffered redo ops applied at commit
    txn.commit_failures          commits that raised mid-apply
    txn.open                     snapshot gauge: transactions in flight
    lock.acquisitions.shared / lock.acquisitions.exclusive / lock.upgrades
                                 lock-manager grants (repro.txn.locks)
    lock.waits / lock.timeouts   blocked acquisitions / deadlock victims
    lock.releases                release_all calls that dropped >=1 lock
    lock.tables                  snapshot gauge: distinct locked resources
    server.connections / server.requests / server.errors
                                 asyncio query server (repro.server)
    server.cancelled_disconnects statements cancelled by client hangup
    server.shed                  requests shed by admission control, with
                                 per-cause children: server.shed.connections
                                 (connection cap) / server.shed.queue_full /
                                 server.shed.queue_deadline /
                                 server.shed.draining
    server.queue_depth           gauge: statements parked in the admission
                                 queue right now
    server.active_connections    gauge: connections currently admitted
    server.idle_closed           connections dropped by the idle timeout
    server.health_requests       {"op": "health"} frames answered
    server.drains                graceful drains begun (stop() calls)
    server.drain_cancelled       in-flight statements cooperatively
                                 cancelled at the drain deadline
    server.faults.injected[.<kind>]
                                 injected network faults (repro.faults
                                 NetworkFaultPlan): reset / stall /
                                 partial_frame / garble
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class MetricsRegistry:
    """Named monotonic counters + accumulated timers (thread-safe)."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._mutex = threading.Lock()

    # -- pickling (the registry rides inside Database images) -----------------

    def __getstate__(self) -> dict:
        with self._mutex:
            return {"counters": dict(self.counters),
                    "timers": dict(self.timers),
                    "gauges": dict(self.gauges)}

    def __setstate__(self, state: dict) -> None:
        self.counters = state.get("counters", {})
        self.timers = state.get("timers", {})
        self.gauges = state.get("gauges", {})
        self._mutex = threading.Lock()

    # -- counters -------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        with self._mutex:
            self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    # -- gauges ---------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time level (queue depth, open connections) —
        unlike counters these go down; snapshots report the last value."""
        with self._mutex:
            self.gauges[name] = value

    def get_gauge(self, name: str, default: float = 0) -> float:
        return self.gauges.get(name, default)

    # -- timers ---------------------------------------------------------------

    def add_time(self, name: str, seconds: float) -> None:
        with self._mutex:
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str):
        """Accumulate the elapsed wall time of the ``with`` body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # -- snapshot / delta / reset --------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """One flat dict of every counter and timer (timers keyed
        ``<name>.seconds``)."""
        with self._mutex:
            out: dict[str, float] = dict(self.counters)
            out.update(self.gauges)
            for name, seconds in self.timers.items():
                out[f"{name}.seconds"] = seconds
        return out

    @staticmethod
    def delta(after: dict[str, float], before: dict[str, float]) -> dict[str, float]:
        """Per-key difference of two snapshots (keys absent from ``before``
        count from zero; unchanged keys are dropped)."""
        out = {}
        for key, value in after.items():
            diff = value - before.get(key, 0)
            if diff:
                out[key] = diff
        return out

    def reset(self) -> None:
        with self._mutex:
            self.counters.clear()
            self.timers.clear()
            self.gauges.clear()
