"""Typed record (row) serialization.

A :class:`RecordCodec` is built from a list of :class:`ValueType` and packs a
row of Python values into a compact binary record: a null bitmap followed by
fixed-width numerics and length-prefixed variable fields. This is the on-page
format used by heap files and catalog tables.
"""

from __future__ import annotations

import struct
from enum import Enum

from repro.errors import SchemaError

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class ValueType(Enum):
    """Column datatypes supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    BLOB = "blob"

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this type."""
        if value is None:
            return
        ok = {
            ValueType.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
            ValueType.FLOAT: lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            ValueType.TEXT: lambda v: isinstance(v, str),
            ValueType.BOOL: lambda v: isinstance(v, bool),
            ValueType.BLOB: lambda v: isinstance(v, (bytes, bytearray)),
        }[self](value)
        if not ok:
            raise SchemaError(f"value {value!r} is not a valid {self.value}")


class RecordCodec:
    """Packs/unpacks rows described by a fixed sequence of value types."""

    def __init__(self, types: list[ValueType]):
        self.types = list(types)
        self._bitmap_bytes = (len(self.types) + 7) // 8

    def encode(self, values: list[object]) -> bytes:
        """Serialize ``values`` (one per column, ``None`` allowed) to bytes."""
        if len(values) != len(self.types):
            raise SchemaError(
                f"row has {len(values)} values; schema has {len(self.types)}"
            )
        bitmap = bytearray(self._bitmap_bytes)
        parts: list[bytes] = []
        for i, (vtype, value) in enumerate(zip(self.types, values)):
            vtype.validate(value)
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                continue
            if vtype is ValueType.INT:
                parts.append(_I64.pack(value))
            elif vtype is ValueType.FLOAT:
                parts.append(_F64.pack(float(value)))
            elif vtype is ValueType.BOOL:
                parts.append(b"\x01" if value else b"\x00")
            elif vtype is ValueType.TEXT:
                raw = value.encode("utf-8")
                parts.append(_U32.pack(len(raw)) + raw)
            else:  # BLOB
                raw = bytes(value)
                parts.append(_U32.pack(len(raw)) + raw)
        return bytes(bitmap) + b"".join(parts)

    def decode(self, data: bytes) -> list[object]:
        """Deserialize bytes produced by :meth:`encode` back into a row."""
        bitmap = data[: self._bitmap_bytes]
        pos = self._bitmap_bytes
        values: list[object] = []
        for i, vtype in enumerate(self.types):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(None)
                continue
            if vtype is ValueType.INT:
                values.append(_I64.unpack_from(data, pos)[0])
                pos += _I64.size
            elif vtype is ValueType.FLOAT:
                values.append(_F64.unpack_from(data, pos)[0])
                pos += _F64.size
            elif vtype is ValueType.BOOL:
                values.append(data[pos] == 1)
                pos += 1
            else:  # TEXT / BLOB
                (length,) = _U32.unpack_from(data, pos)
                pos += _U32.size
                raw = data[pos:pos + length]
                pos += length
                if vtype is ValueType.TEXT:
                    values.append(raw.decode("utf-8"))
                else:
                    values.append(bytes(raw))
        return values

    def decode_column(self, records: list[bytes], index: int) -> list[object]:
        """Decode one column across ``records``, skipping every other field.

        Skipped fields cost a width computation (or a length unpack for
        variable-width fields) instead of value construction — the lazy
        scan-batch path uses this so a query only pays for the columns it
        actually touches.
        """
        types = self.types
        bitmap_bytes = self._bitmap_bytes
        out: list[object] = []
        for data in records:
            view = memoryview(data)
            pos = bitmap_bytes
            value: object = None
            for i, vtype in enumerate(types):
                if view[i // 8] & (1 << (i % 8)):
                    if i == index:
                        break
                    continue
                if vtype is ValueType.INT:
                    if i == index:
                        value = _I64.unpack_from(view, pos)[0]
                        break
                    pos += _I64.size
                elif vtype is ValueType.FLOAT:
                    if i == index:
                        value = _F64.unpack_from(view, pos)[0]
                        break
                    pos += _F64.size
                elif vtype is ValueType.BOOL:
                    if i == index:
                        value = view[pos] == 1
                        break
                    pos += 1
                else:  # TEXT / BLOB
                    (length,) = _U32.unpack_from(view, pos)
                    pos += _U32.size
                    if i == index:
                        raw = bytes(view[pos:pos + length])
                        value = (
                            raw.decode("utf-8") if vtype is ValueType.TEXT
                            else raw
                        )
                        break
                    pos += length
            out.append(value)
        return out

    def decode_columns(self, records: list[bytes]) -> list[list[object]]:
        """Decode many records straight into column-major lists.

        The batch executor's scan path: values land in per-column lists
        with no intermediate row objects, reading each record through a
        ``memoryview`` so variable-width fields are sliced without copying
        until their final ``bytes``/``str`` is built.
        """
        types = self.types
        bitmap_bytes = self._bitmap_bytes
        cols: list[list[object]] = [[] for _ in types]
        for data in records:
            view = memoryview(data)
            pos = bitmap_bytes
            for i, vtype in enumerate(types):
                if view[i // 8] & (1 << (i % 8)):
                    cols[i].append(None)
                    continue
                if vtype is ValueType.INT:
                    cols[i].append(_I64.unpack_from(view, pos)[0])
                    pos += _I64.size
                elif vtype is ValueType.FLOAT:
                    cols[i].append(_F64.unpack_from(view, pos)[0])
                    pos += _F64.size
                elif vtype is ValueType.BOOL:
                    cols[i].append(view[pos] == 1)
                    pos += 1
                else:  # TEXT / BLOB
                    (length,) = _U32.unpack_from(view, pos)
                    pos += _U32.size
                    raw = bytes(view[pos:pos + length])
                    pos += length
                    cols[i].append(
                        raw.decode("utf-8") if vtype is ValueType.TEXT
                        else raw
                    )
        return cols


class LazyColumn:
    """A scan-batch column that decodes itself on first real access.

    Holds the batch's raw record bytes and a column index; ``values()``
    (or any element access) decodes the column via
    :meth:`RecordCodec.decode_column` and memoizes the list. ``take``
    before forcing just subsets the raw records, so a filter that drops
    most of a batch never decodes the dropped rows at all.
    """

    __slots__ = ("codec", "records", "index", "_values", "_items")

    def __init__(self, codec: RecordCodec, records: list[bytes], index: int):
        self.codec = codec
        self.records = records
        self.index = index
        self._values: list[object] | None = None
        self._items: dict[int, object] = {}

    def values(self) -> list[object]:
        if self._values is None:
            self._values = self.codec.decode_column(self.records, self.index)
        return self._values

    def take(self, indices) -> "LazyColumn | list[object]":
        if self._values is not None:
            return [self._values[i] for i in indices]
        return LazyColumn(
            self.codec, [self.records[i] for i in indices], self.index
        )

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, i):
        if self._values is not None:
            return self._values[i]
        # Single-row access (a row view being built off the batch) decodes
        # just that record rather than forcing the whole column.
        value = self._items.get(i)
        if value is None and i not in self._items:
            value = self.codec.decode_column([self.records[i]], self.index)[0]
            self._items[i] = value
        return value

    def __iter__(self):
        return iter(self.values())

    def __eq__(self, other):
        if isinstance(other, LazyColumn):
            other = other.values()
        return self.values() == other
