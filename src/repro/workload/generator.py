"""Deterministic workload construction.

:func:`build_database` assembles a complete annotated database matching the
paper's experimental setup (§6):

* a **Birds** table with 12 attributes (scientific name, ids across
  systems, description, genus, family, habitat, …),
* a **Synonyms** table in a many-to-one relationship with Birds,
* a Classifier instance **ClassBird1** with labels
  {Disease, Anatomy, Behavior, Other} and a Snippet instance
  **TextSummary1** summarizing long annotations, and
* seeded category-structured annotations at a configurable density
  (the paper sweeps 10→200 annotations per tuple).

Scales are laptop-sized but keep the paper's *ratios* (annotation density,
selectivities, long-annotation fraction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.optimizer.planner import PlannerOptions
from repro.storage.record import ValueType
from repro.workload.vocab import (
    CATEGORIES,
    CLASS_LABELS,
    EPITHETS,
    FAMILIES,
    FILLER_WORDS,
    GENERA,
    HABITATS,
    REGIONS,
    SEED_EXAMPLES,
)

BIRDS_COLUMNS = [
    Column("scientific_name", ValueType.TEXT),
    Column("common_name", ValueType.TEXT),
    Column("ebird_id", ValueType.TEXT),
    Column("aou_id", ValueType.INT),
    Column("description", ValueType.TEXT),
    Column("genus", ValueType.TEXT),
    Column("family", ValueType.TEXT),
    Column("habitat", ValueType.TEXT),
    Column("region", ValueType.TEXT),
    Column("wingspan_cm", ValueType.FLOAT),
    Column("weight_g", ValueType.FLOAT),
    Column("conservation", ValueType.TEXT),
]

SYNONYMS_COLUMNS = [
    Column("bird_id", ValueType.INT),
    Column("synonym", ValueType.TEXT),
    Column("source", ValueType.TEXT),
]


@dataclass
class WorkloadConfig:
    """Knobs for one generated database."""

    num_birds: int = 200
    annotations_per_tuple: int = 25
    synonyms_per_bird: int = 3
    seed: int = 42
    #: fraction of annotations long enough to earn a snippet
    long_fraction: float = 0.12
    snippet_min_chars: int = 240
    snippet_max_chars: int = 120
    #: category mixture (weights over CLASS_LABELS)
    category_weights: tuple[float, ...] = (0.2, 0.25, 0.3, 0.25)
    #: fraction of annotations attached to a single cell (column) instead of
    #: the whole row.  Cell-level annotations make projection-time
    #: elimination count-changing, which disables summary-index access paths
    #: for column-subset projections (see the planner's side condition) —
    #: the paper's query benchmarks therefore run with 0.0.
    cell_fraction: float = 0.25
    #: index construction: "summary_btree" | "baseline" | "both" | "none"
    indexes: str = "summary_btree"
    backward_pointers: bool = True
    with_cluster_instance: bool = False
    buffer_pages: int = 8192
    planner_options: PlannerOptions | None = None
    #: index the Synonyms bird_id column (used by join benchmarks)
    synonym_join_index: bool = True


def generate_annotation(
    rng: random.Random,
    category: str,
    long_form: bool = False,
    min_chars: int = 0,
) -> str:
    """One synthetic annotation: sentences mixing the category's keywords
    with filler, optionally long enough to earn a snippet."""
    keywords = CATEGORIES[category]
    sentences = []
    target = max(min_chars, 260 if long_form else rng.randint(60, 160))
    total = 0
    while total < target:
        words = []
        for _ in range(rng.randint(6, 12)):
            pool = keywords if rng.random() < 0.45 else FILLER_WORDS
            words.append(rng.choice(pool))
        sentence = " ".join(words).capitalize() + "."
        sentences.append(sentence)
        total += len(sentence) + 1
    return " ".join(sentences)


def _bird_row(rng: random.Random, i: int) -> dict[str, object]:
    genus = GENERA[i % len(GENERA)]
    epithet = EPITHETS[(i * 7) % len(EPITHETS)]
    return {
        "scientific_name": f"{genus} {epithet} {i}",
        "common_name": f"{genus}-bird {i}",
        "ebird_id": f"EB{i:06d}",
        "aou_id": 10000 + i,
        "description": generate_annotation(rng, "Other")[:120],
        "genus": genus,
        "family": FAMILIES[i % len(FAMILIES)],
        "habitat": rng.choice(HABITATS),
        "region": rng.choice(REGIONS),
        "wingspan_cm": round(rng.uniform(15.0, 250.0), 1),
        "weight_g": round(rng.uniform(10.0, 12000.0), 1),
        "conservation": rng.choice(["LC", "NT", "VU", "EN"]),
    }


def build_database(config: WorkloadConfig | None = None) -> Database:
    """Generate a fully loaded, summarized, and (optionally) indexed
    database."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    db = Database(buffer_pages=config.buffer_pages,
                  options=config.planner_options)

    db.create_table("birds", BIRDS_COLUMNS)
    db.create_table("synonyms", SYNONYMS_COLUMNS)
    if config.synonym_join_index:
        db.create_index("synonyms", "bird_id")

    db.create_classifier_instance("ClassBird1", CLASS_LABELS, SEED_EXAMPLES)
    db.create_snippet_instance(
        "TextSummary1",
        min_chars=config.snippet_min_chars,
        max_chars=config.snippet_max_chars,
    )
    db.manager.link("birds", "ClassBird1")
    db.manager.add_observer(
        "birds", "ClassBird1", db.statistics.observer_for("birds")
    )
    db.manager.link("birds", "TextSummary1")
    if config.with_cluster_instance:
        db.create_cluster_instance("SimCluster")
        db.manager.link("birds", "SimCluster")

    for i in range(config.num_birds):
        oid = db.insert("birds", _bird_row(rng, i))
        for s in range(config.synonyms_per_bird):
            db.insert(
                "synonyms",
                {
                    "bird_id": oid,
                    "synonym": f"syn-{i}-{s}",
                    "source": rng.choice(["AKN", "DBRC", "legacy"]),
                },
            )
        annotate_bird(db, rng, oid, config)

    if config.indexes in ("summary_btree", "both"):
        db.create_summary_index(
            "birds", "ClassBird1", backward_pointers=config.backward_pointers
        )
    if config.indexes in ("baseline", "both"):
        db.create_baseline_index("birds", "ClassBird1")
    db.analyze("birds")
    db.analyze("synonyms")
    return db


def annotation_batch(
    rng: random.Random, oid: int, config: WorkloadConfig, count: int,
    table: str = "birds",
) -> list[tuple[str, list]]:
    """``count`` synthetic (text, targets) pairs for one tuple."""
    from repro.annotations.annotation import AnnotationTarget

    labels = list(CATEGORIES)
    batch: list[tuple[str, list]] = []
    for _ in range(count):
        category = rng.choices(labels, weights=config.category_weights)[0]
        long_form = rng.random() < config.long_fraction
        text = generate_annotation(
            rng, category, long_form,
            min_chars=config.snippet_min_chars + 20 if long_form else 0,
        )
        columns: tuple[str, ...] = ()
        if rng.random() < config.cell_fraction:
            columns = (rng.choice([c.name for c in BIRDS_COLUMNS]),)
        batch.append((text, [AnnotationTarget(table, oid, columns)]))
    return batch


def annotate_bird(
    db: Database, rng: random.Random, oid: int, config: WorkloadConfig,
    count: int | None = None,
) -> None:
    """Attach ``count`` (default: the configured density) annotations in
    bulk-load mode."""
    n = config.annotations_per_tuple if count is None else count
    db.add_annotations_bulk(annotation_batch(rng, oid, config, n))
