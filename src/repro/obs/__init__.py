"""Engine-wide observability (EXPLAIN ANALYZE + metrics registry).

Two pieces:

* :class:`MetricsRegistry` — named monotonic counters and accumulated
  timers with a snapshot/delta/reset API.  The :class:`~repro.core.database.Database`
  owns one registry; the summary-maintenance subsystem and the index
  structures report their events into it so the paper's access-path
  arguments (Figures 10–13) can be read off any run.
* :class:`PlanProfiler` — per-operator execution profiling behind
  ``EXPLAIN ANALYZE``: every physical operator's iterator is wrapped so
  each ``next()`` charges rows, wall time, and the buffer-pool / disk
  counter deltas to that operator.  Reported numbers are *exclusive*
  (children subtracted), so they sum to the run's totals.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import OperatorStats, PlanProfiler

__all__ = ["MetricsRegistry", "OperatorStats", "PlanProfiler"]
