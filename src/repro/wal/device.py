"""Append-only log devices.

A WAL device models the durability boundary underneath the
:class:`~repro.wal.writer.WALWriter`:

* :meth:`append` buffers bytes the way ``write(2)`` hands them to the OS —
  they are *not* durable yet and are lost on a crash;
* :meth:`sync` is ``fsync(2)``: every appended byte becomes durable;
* :meth:`truncate` discards the whole log and re-bases it at a new LSN
  (the checkpoint protocol — offsets are never reused);
* :meth:`durable` returns exactly the bytes that would survive a crash.

:class:`MemoryWALDevice` is the simulated device the test suites crash at
will; it consults a :class:`~repro.faults.plan.FaultPlan` on every append
and sync (ops ``"append"`` / ``"sync"``), mirroring how
:class:`~repro.faults.disk.FaultyDiskManager` schedules page faults:

* **fail-stop** on append: the record never reaches the OS buffer and the
  device is dead;
* **fail-stop** on sync: nothing pending lands, device dead;
* **torn sync**: a seeded prefix of the pending bytes becomes durable,
  then the device dies — the classic torn log tail;
* **transient** on either: the operation fails once, retries may succeed.

:class:`FileWALDevice` backs the log with a real file (the CLI's
``recover`` verb); it carries a small header recording the base LSN so a
re-opened log knows where its first byte sits in the logical stream.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.errors import InjectedFaultError, TransientIOError, WALError
from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.obs.metrics import MetricsRegistry


class MemoryWALDevice:
    """An in-memory append-only log with explicit durability and faults."""

    def __init__(
        self,
        base_lsn: int = 0,
        plan: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.base_lsn = base_lsn
        self.plan = plan if plan is not None else FaultPlan()
        self.metrics = metrics
        self._durable = bytearray()
        self._pending = bytearray()
        #: Operation counters the fault schedule indexes against (0-based).
        self.append_ops = 0
        self.sync_ops = 0
        #: True once a fail-stop fault fired; the device never recovers.
        self.dead = False
        #: Every fault fired, as ``(kind, op, op_index)``.
        self.injected: list[tuple[str, str, int]] = []

    @classmethod
    def from_durable(cls, data: bytes, base_lsn: int) -> "MemoryWALDevice":
        """Re-open a crashed device over its surviving durable bytes."""
        device = cls(base_lsn=base_lsn)
        device._durable = bytearray(data)
        return device

    # -- bookkeeping --------------------------------------------------------

    def _record(self, fault: Fault, op: str, index: int) -> None:
        self.injected.append((fault.kind, op, index))
        if self.metrics is not None:
            self.metrics.inc("faults.injected")
            self.metrics.inc(f"faults.injected.{fault.kind}")

    def _require_alive(self) -> None:
        if self.dead:
            raise InjectedFaultError("WAL device has fail-stopped")

    # -- sizes --------------------------------------------------------------

    @property
    def durable_len(self) -> int:
        return len(self._durable)

    @property
    def total_len(self) -> int:
        """Durable plus pending bytes (the writer's append position)."""
        return len(self._durable) + len(self._pending)

    @property
    def pending_len(self) -> int:
        return len(self._pending)

    # -- operations ---------------------------------------------------------

    def append(self, data: bytes) -> None:
        """Buffer ``data`` at the log tail (not durable until :meth:`sync`)."""
        self._require_alive()
        index = self.append_ops
        self.append_ops += 1
        fault = self.plan.match("append", index)
        if fault is not None:
            self._record(fault, "append", index)
            if fault.kind == FaultKind.FAIL_STOP:
                self.dead = True
                raise InjectedFaultError(
                    f"injected fail-stop on WAL append #{index}"
                )
            if fault.kind == FaultKind.TRANSIENT:
                raise TransientIOError(
                    f"injected transient error on WAL append #{index}"
                )
        self._pending.extend(data)

    def sync(self) -> None:
        """Make every pending byte durable (fsync)."""
        self._require_alive()
        index = self.sync_ops
        self.sync_ops += 1
        fault = self.plan.match("sync", index)
        if fault is not None:
            self._record(fault, "sync", index)
            if fault.kind == FaultKind.FAIL_STOP:
                self.dead = True
                raise InjectedFaultError(
                    f"injected fail-stop on WAL sync #{index}"
                )
            if fault.kind == FaultKind.TRANSIENT:
                raise TransientIOError(
                    f"injected transient error on WAL sync #{index}"
                )
            if fault.kind == FaultKind.TORN_WRITE:
                torn_at = fault.torn_bytes
                if torn_at is None:
                    torn_at = self.plan.rng.randrange(
                        0, max(1, len(self._pending))
                    )
                torn_at = min(torn_at, len(self._pending))
                self._durable.extend(self._pending[:torn_at])
                self._pending.clear()
                self.dead = True
                raise InjectedFaultError(
                    f"injected torn WAL sync #{index} "
                    f"({torn_at} pending bytes landed)"
                )
        self._durable.extend(self._pending)
        self._pending.clear()

    def durable(self) -> bytes:
        """The bytes that survive a crash right now."""
        return bytes(self._durable)

    def truncate(self, new_base: int) -> None:
        """Discard the whole log and re-base at ``new_base`` (checkpoint)."""
        if new_base < self.base_lsn:
            raise WALError(
                f"cannot truncate to LSN {new_base} below base {self.base_lsn}"
            )
        self._require_alive()
        self.base_lsn = new_base
        self._durable.clear()
        self._pending.clear()

    def discard_after(self, lsn: int) -> None:
        """Drop durable bytes past ``lsn`` (recovery cuts the torn tail so
        future appends extend a clean log)."""
        keep = lsn - self.base_lsn
        if not 0 <= keep <= len(self._durable):
            raise WALError(
                f"discard_after({lsn}) outside durable range "
                f"[{self.base_lsn}, {self.base_lsn + len(self._durable)}]"
            )
        del self._durable[keep:]
        self._pending.clear()


_FILE_MAGIC = b"INSIGHTNOTES-WAL"
_FILE_HEADER = struct.Struct(">HQ")  # version, base_lsn
_FILE_VERSION = 1
FILE_HEADER_SIZE = len(_FILE_MAGIC) + _FILE_HEADER.size


class FileWALDevice:
    """A WAL device over a real file (used by the CLI verbs).

    Bytes are appended with ``write`` + ``flush`` + ``os.fsync`` on
    :meth:`sync`, so the durable/pending split matches the OS's. The file
    starts with a 26-byte header (``INSIGHTNOTES-WAL`` + version + base
    LSN) so a re-opened log self-describes its logical position.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._pending = bytearray()
        if self.path.exists() and self.path.stat().st_size > 0:
            header = self.path.read_bytes()[:FILE_HEADER_SIZE]
            if (
                len(header) < FILE_HEADER_SIZE
                or not header.startswith(_FILE_MAGIC)
            ):
                raise WALError(f"{self.path}: not a WAL file")
            version, self.base_lsn = _FILE_HEADER.unpack_from(
                header, len(_FILE_MAGIC)
            )
            if version != _FILE_VERSION:
                raise WALError(
                    f"{self.path}: WAL version {version} unsupported"
                )
        else:
            self.base_lsn = 0
            self._write_header(0)

    def _write_header(self, base_lsn: int) -> None:
        self.path.write_bytes(
            _FILE_MAGIC + _FILE_HEADER.pack(_FILE_VERSION, base_lsn)
        )
        self.base_lsn = base_lsn

    @property
    def durable_len(self) -> int:
        return self.path.stat().st_size - FILE_HEADER_SIZE

    @property
    def total_len(self) -> int:
        return self.durable_len + len(self._pending)

    @property
    def pending_len(self) -> int:
        return len(self._pending)

    def append(self, data: bytes) -> None:
        self._pending.extend(data)

    def sync(self) -> None:
        if not self._pending:
            return
        with open(self.path, "ab") as fh:
            fh.write(self._pending)
            fh.flush()
            os.fsync(fh.fileno())
        self._pending.clear()

    def durable(self) -> bytes:
        return self.path.read_bytes()[FILE_HEADER_SIZE:]

    def truncate(self, new_base: int) -> None:
        if new_base < self.base_lsn:
            raise WALError(
                f"cannot truncate to LSN {new_base} below base {self.base_lsn}"
            )
        self._pending.clear()
        self._write_header(new_base)

    def discard_after(self, lsn: int) -> None:
        keep = lsn - self.base_lsn
        if not 0 <= keep <= self.durable_len:
            raise WALError(
                f"discard_after({lsn}) outside durable range "
                f"[{self.base_lsn}, {self.base_lsn + self.durable_len}]"
            )
        self._pending.clear()
        with open(self.path, "r+b") as fh:
            fh.truncate(FILE_HEADER_SIZE + keep)
