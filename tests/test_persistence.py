"""Single-file database images: save/load round-trips for data, summary
objects, indexes, and annotation state — with mutations after restore."""

import pytest

from repro import Column, Database, ValueType
from repro.errors import QueryError

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
DISEASE = "$.getSummaryObject('C').getLabelValue('Disease')"


def build() -> Database:
    db = Database()
    db.create_table("t", [Column("name", ValueType.TEXT)])
    db.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    db.create_snippet_instance("S", min_chars=40, max_chars=100)
    db.sql("Alter Table t Add Indexable C")
    db.manager.link("t", "S")
    for i in range(4):
        oid = db.insert("t", {"name": f"n{i}"})
        for _ in range(i):
            db.add_annotation("flu virus infection outbreak noted",
                              table="t", oid=oid)
    db.analyze("t")
    return db


@pytest.fixture()
def image(tmp_path):
    db = build()
    path = tmp_path / "db.indb"
    db.save(path)
    return db, path


class TestRoundTrip:
    def test_data_survives(self, image):
        _db, path = image
        restored = Database.load(path)
        assert restored.sql("Select count(*) n From t").scalar() == 4

    def test_summaries_survive(self, image):
        _db, path = image
        restored = Database.load(path)
        result = restored.sql(
            f"Select name From t r Where r.{DISEASE} >= 2 Order By name"
        )
        assert result.column("name") == ["n2", "n3"]

    def test_summary_index_survives_and_serves_queries(self, image):
        _db, path = image
        restored = Database.load(path)
        assert ("t", "C") in restored.summary_indexes
        restored.options.force_access = "index"
        report = restored.explain(
            f"Select * From t r Where r.{DISEASE} = 3"
        )
        restored.options.force_access = None
        assert "SummaryIndexScan" in report.physical

    def test_zoom_survives(self, image):
        _db, path = image
        restored = Database.load(path)
        assert len(restored.zoom_in("t", 4, "C", "Disease")) == 3

    def test_mutations_after_restore(self, image):
        _db, path = image
        restored = Database.load(path)
        oid = restored.insert("t", {"name": "fresh"})
        restored.add_annotation("flu virus infection outbreak again",
                                table="t", oid=oid)
        result = restored.sql(
            f"Select name From t r Where r.{DISEASE} = 1"
        )
        assert "fresh" in {t.get("name") for t in result.tuples}

    def test_restored_is_independent(self, image):
        db, path = image
        restored = Database.load(path)
        restored.insert("t", {"name": "only-in-restored"})
        assert db.sql("Select count(*) n From t").scalar() == 4
        assert restored.sql("Select count(*) n From t").scalar() == 5

    def test_statistics_survive(self, image):
        _db, path = image
        restored = Database.load(path)
        stats = restored.statistics.table_stats("t")
        assert stats.row_count == 4


class TestImageFormat:
    def test_not_an_image(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a database")
        with pytest.raises(QueryError):
            Database.load(path)

    def test_version_checked(self, tmp_path, image):
        _db, path = image
        data = bytearray(path.read_bytes())
        offset = len(Database._IMAGE_MAGIC)
        data[offset:offset + 2] = (99).to_bytes(2, "big")
        bad = tmp_path / "future.indb"
        bad.write_bytes(bytes(data))
        with pytest.raises(QueryError):
            Database.load(bad)

    def test_udfs_not_persisted_but_registry_intact(self, tmp_path):
        db = build()
        db.register_udf("hot", lambda s: True)
        path = tmp_path / "db.indb"
        db.save(path)
        # the live database keeps its UDFs ...
        assert "hot" in db.manager.udfs
        restored = Database.load(path)
        # ... but the image does not carry them
        assert restored.manager.udfs == {}
        restored.register_udf("hot", lambda s: True)
        result = restored.sql("Select name From t r Where hot(r.$)")
        assert len(result) == 4
