"""Scan operators: the access paths of the engine.

* :class:`SeqScan` — heap scan; reads the SummaryStorage row per tuple only
  when summaries are needed (property 1 of the de-normalized layout: data
  queried in isolation never touches summary pages).
* :class:`IndexScan` — standard B-Tree on a data column.
* :class:`SummaryIndexScan` — the paper's Summary-BTree access path:
  itemized-key probe, then backward pointers straight to the data tuples
  (or conventional pointers through the SummaryStorage, for the Figure 13
  ablation). Emits tuples in ascending label-count order — an *interesting
  order* the optimizer can exploit (Rules 3–6).
* :class:`BaselineIndexScan` — the baseline scheme's path: derived-column
  index -> normalized rows -> OID index -> heap; optionally re-assembling
  summary objects from the normalized replica (Figure 12).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PlanError, ReproError
from repro.query.batch import (
    Batch,
    LazyScanSummaries,
    ScanProvenance,
)
from repro.query.physical.base import ExecContext, PhysicalOperator
from repro.query.tuples import QTuple
from repro.resilience.context import BATCH_ROWS
from repro.summaries.functions import SummarySet


def _make_tuple(
    ctx: ExecContext,
    table_name: str,
    alias: str,
    oid: int,
    values: list[object],
    with_summaries: bool,
    retained: set[str] | None,
    summary_set: SummarySet | None = None,
) -> QTuple:
    table = ctx.catalog.table(table_name)
    columns = [f"{alias}.{c}" for c in table.schema.names] + [f"{alias}.oid"]
    if with_summaries:
        summaries = (
            summary_set
            if summary_set is not None
            else ctx.manager.summary_set_for(table_name, oid)
        )
        if retained is not None:
            summaries.project_to_columns(retained)
    else:
        summaries = SummarySet()
    return QTuple(
        columns,
        list(values) + [oid],
        {alias: summaries},
        {alias: (table_name, oid)},
    )


def _scan_columns(ctx: ExecContext, table_name: str, alias: str) -> list[str]:
    table = ctx.catalog.table(table_name)
    return [f"{alias}.{c}" for c in table.schema.names] + [f"{alias}.oid"]


def _scan_batch(
    ctx: ExecContext,
    table_name: str,
    alias: str,
    columns: list[str],
    oids: list[int],
    cols: list[list[object]],
    with_summaries: bool,
    retained: set[str] | None,
) -> Batch:
    """Assemble one lazy-summary scan batch (shared by every access path:
    summaries stay undecoded until a consumer asks for a row's sets)."""
    return Batch(
        columns,
        cols + [oids],
        LazyScanSummaries(ctx, table_name, alias, oids, with_summaries,
                          retained),
        ScanProvenance(alias, table_name, oids),
    )


def _oid_read_batches(
    ctx: ExecContext,
    table_name: str,
    alias: str,
    oid_iter,
    with_summaries: bool,
    retained: set[str] | None,
) -> Iterator[Batch]:
    """Batches for access paths that produce OIDs and read rows one heap
    lookup at a time (data index, keyword index)."""
    table = ctx.catalog.table(table_name)
    columns = _scan_columns(ctx, table_name, alias)
    width = len(table.schema.names)
    oids: list[int] = []
    cols: list[list[object]] = [[] for _ in range(width)]
    for oid in oid_iter:
        values = table.read(oid)
        oids.append(oid)
        for j in range(width):
            cols[j].append(values[j])
        if len(oids) >= BATCH_ROWS:
            yield _scan_batch(ctx, table_name, alias, columns, oids, cols,
                              with_summaries, retained)
            oids, cols = [], [[] for _ in range(width)]
    if oids:
        yield _scan_batch(ctx, table_name, alias, columns, oids, cols,
                          with_summaries, retained)


class SeqScan(PhysicalOperator):
    """Full heap scan of a user relation."""

    def __init__(
        self,
        ctx: ExecContext,
        table: str,
        alias: str,
        with_summaries: bool = True,
        retained: set[str] | None = None,
    ):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.with_summaries = with_summaries
        self.retained = retained

    def _produce(self) -> Iterator[QTuple]:
        for oid, values in self.ctx.catalog.table(self.table).scan():
            yield _make_tuple(
                self.ctx, self.table, self.alias, oid, values,
                self.with_summaries, self.retained,
            )

    def _produce_batches(self) -> Iterator[Batch]:
        columns = _scan_columns(self.ctx, self.table, self.alias)
        table = self.ctx.catalog.table(self.table)
        for oids, cols in table.scan_batches(BATCH_ROWS):
            yield _scan_batch(
                self.ctx, self.table, self.alias, columns, oids, cols,
                self.with_summaries, self.retained,
            )

    def label(self) -> str:
        tag = "+summaries" if self.with_summaries else ""
        return f"SeqScan({self.table} {self.alias}{tag})"


class IndexScan(PhysicalOperator):
    """Standard B-Tree scan on a data column (equality or range)."""

    def __init__(
        self,
        ctx: ExecContext,
        table: str,
        alias: str,
        column: str,
        lo: object | None,
        hi: object | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        with_summaries: bool = True,
        retained: set[str] | None = None,
    ):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.column = column
        self.lo, self.hi = lo, hi
        self.lo_inclusive, self.hi_inclusive = lo_inclusive, hi_inclusive
        self.with_summaries = with_summaries
        self.retained = retained

    def _produce(self) -> Iterator[QTuple]:
        table = self.ctx.catalog.table(self.table)
        for oid in table.index_range(
            self.column, self.lo, self.hi, self.lo_inclusive, self.hi_inclusive
        ):
            yield _make_tuple(
                self.ctx, self.table, self.alias, oid, table.read(oid),
                self.with_summaries, self.retained,
            )

    def _produce_batches(self) -> Iterator[Batch]:
        table = self.ctx.catalog.table(self.table)
        yield from _oid_read_batches(
            self.ctx, self.table, self.alias,
            table.index_range(
                self.column, self.lo, self.hi,
                self.lo_inclusive, self.hi_inclusive,
            ),
            self.with_summaries, self.retained,
        )

    def label(self) -> str:
        return (
            f"IndexScan({self.table}.{self.column} in "
            f"[{self.lo}, {self.hi}])"
        )


class SummaryIndexScan(PhysicalOperator):
    """Summary-BTree probe on a classifier label (§4.1).

    Produces tuples ordered by the label count (ascending, or descending
    when ``direction='DESC'`` — a buffered reversal of the leaf scan).
    """

    def __init__(
        self,
        ctx: ExecContext,
        table: str,
        alias: str,
        instance: str,
        label: str,
        lo: int | None,
        hi: int | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        with_summaries: bool = True,
        retained: set[str] | None = None,
        direction: str = "ASC",
    ):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.instance = instance
        self.label_name = label
        self.lo, self.hi = lo, hi
        self.lo_inclusive, self.hi_inclusive = lo_inclusive, hi_inclusive
        self.with_summaries = with_summaries
        self.retained = retained
        self.direction = direction

    def _produce(self) -> Iterator[QTuple]:
        index = self.ctx.summary_index(self.table, self.instance)
        if index is None:
            raise PlanError(
                f"no Summary-BTree on {self.table}/{self.instance}"
            )
        table = self.ctx.catalog.table(self.table)
        hits = index.lookup_range(
            self.label_name, self.lo, self.hi, self.lo_inclusive,
            self.hi_inclusive,
        )
        if self.direction == "DESC":
            hits = reversed(list(hits))
        for _count, pointer in hits:
            if index.backward_pointers:
                # Straight to the data tuple in R — no SummaryStorage join.
                try:
                    values = table.read_at(pointer.rid)
                except ReproError:
                    values = table.read(pointer.oid)  # relocated tuple
                yield _make_tuple(
                    self.ctx, self.table, self.alias, pointer.oid, values,
                    self.with_summaries, self.retained,
                )
            else:
                # Conventional pointer: the leaf references the summary row;
                # reaching the data tuple costs the OID-index join with R.
                record = self.ctx.manager.storage_for(self.table).heap.read(
                    pointer.rid
                )
                summaries = SummarySet(
                    self.ctx.manager.storage_for(self.table)._decode(record)
                )
                values = table.read(pointer.oid)
                yield _make_tuple(
                    self.ctx, self.table, self.alias, pointer.oid, values,
                    self.with_summaries, self.retained,
                    summary_set=summaries if self.with_summaries else None,
                )

    def label(self) -> str:
        return (
            f"SummaryIndexScan({self.table}/{self.instance}."
            f"{self.label_name} in [{self.lo}, {self.hi}] {self.direction})"
        )


class BaselineIndexScan(PhysicalOperator):
    """Baseline-scheme probe (Figure 4(c) path).

    ``normalized_propagation=True`` additionally re-assembles the classifier
    object from its normalized primitives instead of reading the
    de-normalized storage — the Figure 12 experiment.
    """

    def __init__(
        self,
        ctx: ExecContext,
        table: str,
        alias: str,
        instance: str,
        label: str,
        lo: int | None,
        hi: int | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
        with_summaries: bool = True,
        retained: set[str] | None = None,
        direction: str = "ASC",
        normalized_propagation: bool = False,
    ):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.instance = instance
        self.label_name = label
        self.lo, self.hi = lo, hi
        self.lo_inclusive, self.hi_inclusive = lo_inclusive, hi_inclusive
        self.with_summaries = with_summaries
        self.retained = retained
        self.direction = direction
        self.normalized_propagation = normalized_propagation

    def _produce(self) -> Iterator[QTuple]:
        index = self.ctx.baseline_index(self.table, self.instance)
        if index is None:
            raise PlanError(f"no baseline index on {self.table}/{self.instance}")
        table = self.ctx.catalog.table(self.table)
        hits = index.lookup_range(
            self.label_name, self.lo, self.hi, self.lo_inclusive,
            self.hi_inclusive,
        )
        if self.direction == "DESC":
            hits = reversed(list(hits))
        for _count, oid in hits:
            values = table.read(oid)  # OID-index hop into R
            summary_set = None
            if self.with_summaries and self.normalized_propagation:
                summary_set = self._reconstruct_set(index, oid)
            yield _make_tuple(
                self.ctx, self.table, self.alias, oid, values,
                self.with_summaries, self.retained, summary_set=summary_set,
            )

    def _reconstruct_set(self, index, oid: int) -> SummarySet:
        """Form the tuple's complete summary set from normalized primitives
        (the Figure 12 propagation path): the classifier comes from the
        baseline index's normalized rows, every snippet instance from its
        normalized replica. Instances with no normalized form at all (e.g.
        Cluster objects, whose group structure the Baseline scheme cannot
        normalize) fall back to the de-normalized storage — paying that
        read on top of the reconstruction work."""
        objects = {}
        reconstructed = {self.instance}
        obj = index.reconstruct_object(oid)
        if obj is not None:
            objects[obj.instance_name] = obj
        for instance in self.ctx.manager.instances_for(self.table):
            replica = self.ctx.normalized_replica(self.table, instance.name)
            if replica is None:
                continue
            reconstructed.add(instance.name)
            snippet = replica.reconstruct(oid)
            if snippet is not None:
                objects[snippet.instance_name] = snippet
        missing = [
            instance.name
            for instance in self.ctx.manager.instances_for(self.table)
            if instance.name not in reconstructed
        ]
        if missing:
            stored = self.ctx.manager.storage_for(self.table).get(oid) or {}
            for name in missing:
                if name in stored:
                    objects[name] = stored[name]
        return SummarySet(objects)

    def label(self) -> str:
        mode = "normalized" if self.normalized_propagation else "denormalized"
        return (
            f"BaselineIndexScan({self.table}/{self.instance}."
            f"{self.label_name} in [{self.lo}, {self.hi}], {mode})"
        )


class KeywordIndexScan(PhysicalOperator):
    """Trigram keyword-index access path (snippet-only search mode).

    Produces the *candidate* tuples whose snippet text may contain every
    keyword; the planner re-applies the original predicate above this
    scan, so lossy trigram matching never changes results.
    """

    def __init__(
        self,
        ctx: ExecContext,
        table: str,
        alias: str,
        instance: str,
        keywords: tuple[str, ...],
        with_summaries: bool = True,
        retained: set[str] | None = None,
    ):
        self.ctx = ctx
        self.table = table
        self.alias = alias
        self.instance = instance
        self.keywords = keywords

        self.with_summaries = with_summaries
        self.retained = retained

    def _produce(self) -> Iterator[QTuple]:
        index = self.ctx.keyword_index(self.table, self.instance)
        if index is None:
            raise PlanError(
                f"no keyword index on {self.table}/{self.instance}"
            )
        table = self.ctx.catalog.table(self.table)
        candidates = index.candidates(list(self.keywords))
        if candidates is None:
            raise PlanError(
                "keyword index unusable for keywords "
                f"{self.keywords!r} (shorter than one trigram)"
            )
        for oid in sorted(candidates):
            yield _make_tuple(
                self.ctx, self.table, self.alias, oid, table.read(oid),
                self.with_summaries, self.retained,
            )

    def _produce_batches(self) -> Iterator[Batch]:
        index = self.ctx.keyword_index(self.table, self.instance)
        if index is None:
            raise PlanError(
                f"no keyword index on {self.table}/{self.instance}"
            )
        candidates = index.candidates(list(self.keywords))
        if candidates is None:
            raise PlanError(
                "keyword index unusable for keywords "
                f"{self.keywords!r} (shorter than one trigram)"
            )
        yield from _oid_read_batches(
            self.ctx, self.table, self.alias, sorted(candidates),
            self.with_summaries, self.retained,
        )

    def label(self) -> str:
        kws = ", ".join(self.keywords)
        return f"KeywordIndexScan({self.table}/{self.instance}: {kws})"
