"""Auditing annotation drift between two database revisions.

The paper's summary-based JOIN scenario (§3.2 and Figure 16 Q2): given
two revisions of the same table, report the records whose annotation
profile changed — e.g. birds that gained disease reports between
curation passes — with a single query joining on the data identifier and
comparing the attached summaries.

Run with::

    python examples/revision_audit.py
"""

from repro.study.dataset import StudyConfig, build_study_database

DISEASE = "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"

print("Building two revisions of the study database (the second revision")
print("gains new disease reports on a handful of birds)...")
db = build_study_database(StudyConfig(num_birds=60, scale=0.08, seed=13))

# -- the summary-based join: same bird, different disease profile ----------
audit = db.sql(
    "Select v1.name, v1.family From birds v1, birds_v2 v2 "
    "Where v1.bird_id = v2.bird_id And "
    f"v1.{DISEASE} <> v2.{DISEASE}"
)
print(f"\n{len(audit)} birds changed their disease-annotation profile:")
for i, t in enumerate(audit.tuples):
    v1_counts = dict(audit.summaries(i)["ClassBird1"])
    print(f"  {t.get('v1.name'):<16} ({t.get('v1.family')}) — "
          f"merged disease count {v1_counts['Disease']}")

# -- drill into one change --------------------------------------------------
name = audit.tuples[0].get("v1.name")
v2 = db.sql(f"Select name From birds_v2 Where name = '{name}'")
table, oid = next(iter(v2.tuples[0].provenance.values()))
print(f"\nNew disease annotations on {name!r} in revision 2:")
for text in db.zoom_in(table, oid, "ClassBird1", "Disease")[-2:]:
    print(f"  - {text[:90]}")

# -- the optimizer's view ----------------------------------------------------
report = db.explain(
    "Select v1.name From birds v1, birds_v2 v2 "
    "Where v1.bird_id = v2.bird_id And "
    f"v1.{DISEASE} <> v2.{DISEASE}"
)
print("\nThe engine plans the data join first and evaluates the")
print("summary-based predicate on the joined pairs (J operator):")
print(report.physical)
