"""Deterministic, seeded fault injection for the storage substrate.

The fault layer lets tests and benchmarks subject the engine to the disk
misbehaviour a real DBMS must survive — fail-stop crashes, transient I/O
errors, torn (partial) page writes, and bit rot — on a deterministic,
seed-reproducible schedule:

* :class:`FaultPlan` holds the schedule: which fault fires at which read or
  write index, with a seeded RNG deciding torn lengths and bit positions.
* :class:`FaultyDiskManager` is a drop-in :class:`~repro.storage.disk
  .DiskManager` that consults the plan on every operation and counts every
  injected fault through the PR-1 :class:`~repro.obs.metrics
  .MetricsRegistry` (``faults.injected.*``).
* :func:`install_faults` / :func:`remove_faults` swap the fault layer in
  and out underneath a live :class:`~repro.core.database.Database` without
  losing any on-disk state.

Detection is the other half of the story: slotted heap pages carry CRC32
checksums verified at buffer-pool read time, and
``Database.check_integrity()`` audits every structure (see
``repro.core.integrity``).
"""

from repro.faults.disk import (
    FaultyDiskManager,
    install_faults,
    installed_faults,
    remove_faults,
)
from repro.faults.network import (
    NETWORK_OPS,
    NetworkFault,
    NetworkFaultKind,
    NetworkFaultPlan,
)
from repro.faults.plan import Fault, FaultKind, FaultPlan

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultyDiskManager",
    "NETWORK_OPS",
    "NetworkFault",
    "NetworkFaultKind",
    "NetworkFaultPlan",
    "install_faults",
    "installed_faults",
    "remove_faults",
]
