"""The O operator's two sort implementations (memory vs external merge)
must order identically, and the external sort's spill behaviour must be
real (counted I/O) and clean (temporary runs dropped)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Column, Database, ValueType
from repro.query.physical.base import ExecContext
from repro.query.physical.transforms import SortOp
from repro.query.ast import ColumnRef
from repro.query.tuples import QTuple


class ListSource:
    """A physical operator that replays a fixed tuple list."""

    def __init__(self, rows):
        self._rows = rows

    @property
    def children(self):
        return []

    def rows(self):
        return iter(self._rows)


def make_ctx() -> ExecContext:
    db = Database()
    return ExecContext(catalog=db.catalog, manager=db.manager)


def make_rows(values):
    return [QTuple(["k", "tag"], [v, f"t{i}"]) for i, v in enumerate(values)]


def sort_values(ctx, rows, method, run_size=4, direction="ASC"):
    op = SortOp(ctx, ListSource(rows),
                [(ColumnRef(None, "k"), direction)],
                method=method, run_size=run_size)
    return [t.get("k") for t in op.rows()]


class TestEquivalence:
    @given(st.lists(st.integers(-1000, 1000), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_mem_and_disk_agree(self, values):
        ctx = make_ctx()
        rows = make_rows(values)
        assert sort_values(ctx, rows, "mem") == sort_values(
            ctx, rows, "disk"
        )

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_disk_sort_is_sorted(self, values):
        ctx = make_ctx()
        assert sort_values(ctx, make_rows(values), "disk") == sorted(values)

    def test_descending(self):
        ctx = make_ctx()
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        assert sort_values(ctx, make_rows(values), "disk",
                           direction="DESC") == sorted(values, reverse=True)

    def test_nulls_sort_first(self):
        ctx = make_ctx()
        rows = make_rows([2, None, 1])
        assert sort_values(ctx, rows, "mem") == [None, 1, 2]
        assert sort_values(ctx, rows, "disk") == [None, 1, 2]


class TestSpillBehaviour:
    def test_disk_sort_performs_real_io(self):
        db = Database()
        ctx = ExecContext(catalog=db.catalog, manager=db.manager)
        rows = make_rows(list(range(50, 0, -1)))
        before = db.disk.stats.snapshot()
        out = sort_values(ctx, rows, "disk", run_size=8)
        delta = db.disk.stats.delta(before)
        assert out == list(range(1, 51))
        # Spilled runs allocate real pages (dirty pages may still sit in
        # the buffer pool, so count allocations rather than flushes).
        assert delta.allocations > 0

    def test_runs_are_dropped_after_merge(self):
        db = Database()
        ctx = ExecContext(catalog=db.catalog, manager=db.manager)
        pages_before = db.disk.num_pages
        rows = make_rows(list(range(40)))
        list(SortOp(ctx, ListSource(rows),
                    [(ColumnRef(None, "k"), "ASC")],
                    method="disk", run_size=8).rows())
        assert db.disk.num_pages == pages_before  # no leaked run pages

    def test_single_run_still_works(self):
        ctx = make_ctx()
        assert sort_values(ctx, make_rows([2, 1]), "disk",
                           run_size=100) == [1, 2]

    def test_empty_input(self):
        ctx = make_ctx()
        assert sort_values(ctx, [], "disk") == []
        assert sort_values(ctx, [], "mem") == []

    def test_unknown_method_rejected(self):
        ctx = make_ctx()
        with pytest.raises(Exception):
            SortOp(ctx, ListSource([]), [], method="quantum")


class TestEngineIntegration:
    def test_forced_disk_sort_matches_mem_in_queries(self):
        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        import random

        rng = random.Random(8)
        for _ in range(120):
            db.insert("t", {"v": rng.randint(0, 1000)})
        db.options.force_sort = "mem"
        via_mem = db.sql("Select v From t Order By v").column("v")
        db.options.force_sort = "disk"
        via_disk = db.sql("Select v From t Order By v").column("v")
        db.options.force_sort = None
        assert via_mem == via_disk == sorted(via_mem)

    def test_sorted_summaries_survive_disk_spill(self):
        # Tuples serialized to spill runs must round-trip their summaries.
        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        db.create_classifier_instance(
            "C", ["A", "B"], [("alpha apple", "A"), ("beta ball", "B")]
        )
        db.manager.link("t", "C")
        for i in range(10):
            oid = db.insert("t", {"v": 10 - i})
            for _ in range(i % 3):
                db.add_annotation("alpha apple pie", table="t", oid=oid)
        db.options.force_sort = "disk"
        db.options.mem_sort_threshold = 0
        result = db.sql("Select v From t Order By v")
        db.options.force_sort = None
        assert len(result) == 10
        # Every *annotated* row (i % 3 != 0 -> v in {9,8,6,5,3,2}) still
        # carries its classifier object after the spill round-trip.
        annotated = {9, 8, 6, 5, 3, 2}
        for i, t in enumerate(result.tuples):
            if t.get("v") in annotated:
                assert "C" in result.summaries(i)
                counts = dict(result.summaries(i)["C"])
                assert counts["A"] >= 1
