"""Typed record (row) serialization.

A :class:`RecordCodec` is built from a list of :class:`ValueType` and packs a
row of Python values into a compact binary record: a null bitmap followed by
fixed-width numerics and length-prefixed variable fields. This is the on-page
format used by heap files and catalog tables.
"""

from __future__ import annotations

import struct
from enum import Enum

from repro.errors import SchemaError

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class ValueType(Enum):
    """Column datatypes supported by the engine."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    BOOL = "bool"
    BLOB = "blob"

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this type."""
        if value is None:
            return
        ok = {
            ValueType.INT: lambda v: isinstance(v, int) and not isinstance(v, bool),
            ValueType.FLOAT: lambda v: isinstance(v, (int, float))
            and not isinstance(v, bool),
            ValueType.TEXT: lambda v: isinstance(v, str),
            ValueType.BOOL: lambda v: isinstance(v, bool),
            ValueType.BLOB: lambda v: isinstance(v, (bytes, bytearray)),
        }[self](value)
        if not ok:
            raise SchemaError(f"value {value!r} is not a valid {self.value}")


class RecordCodec:
    """Packs/unpacks rows described by a fixed sequence of value types."""

    def __init__(self, types: list[ValueType]):
        self.types = list(types)
        self._bitmap_bytes = (len(self.types) + 7) // 8

    def encode(self, values: list[object]) -> bytes:
        """Serialize ``values`` (one per column, ``None`` allowed) to bytes."""
        if len(values) != len(self.types):
            raise SchemaError(
                f"row has {len(values)} values; schema has {len(self.types)}"
            )
        bitmap = bytearray(self._bitmap_bytes)
        parts: list[bytes] = []
        for i, (vtype, value) in enumerate(zip(self.types, values)):
            vtype.validate(value)
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                continue
            if vtype is ValueType.INT:
                parts.append(_I64.pack(value))
            elif vtype is ValueType.FLOAT:
                parts.append(_F64.pack(float(value)))
            elif vtype is ValueType.BOOL:
                parts.append(b"\x01" if value else b"\x00")
            elif vtype is ValueType.TEXT:
                raw = value.encode("utf-8")
                parts.append(_U32.pack(len(raw)) + raw)
            else:  # BLOB
                raw = bytes(value)
                parts.append(_U32.pack(len(raw)) + raw)
        return bytes(bitmap) + b"".join(parts)

    def decode(self, data: bytes) -> list[object]:
        """Deserialize bytes produced by :meth:`encode` back into a row."""
        bitmap = data[: self._bitmap_bytes]
        pos = self._bitmap_bytes
        values: list[object] = []
        for i, vtype in enumerate(self.types):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(None)
                continue
            if vtype is ValueType.INT:
                values.append(_I64.unpack_from(data, pos)[0])
                pos += _I64.size
            elif vtype is ValueType.FLOAT:
                values.append(_F64.unpack_from(data, pos)[0])
                pos += _F64.size
            elif vtype is ValueType.BOOL:
                values.append(data[pos] == 1)
                pos += 1
            else:  # TEXT / BLOB
                (length,) = _U32.unpack_from(data, pos)
                pos += _U32.size
                raw = data[pos:pos + length]
                pos += length
                if vtype is ValueType.TEXT:
                    values.append(raw.decode("utf-8"))
                else:
                    values.append(bytes(raw))
        return values
