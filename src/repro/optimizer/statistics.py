"""Statistics over data columns and annotation summaries (§5.2, Figure 6).

For each summary instance linked to a relation, InsightNotes maintains the
average object size; for each classifier label it additionally keeps
``{Min, Max, NumDistinct, Equi-Width Histogram}`` over the label's count
field. These are the inputs to the cardinality estimates of the
summary-based operators.

Statistics are collected by :meth:`StatisticsCatalog.analyze` and kept fresh
through the same observer interface the indexes use: mutations mark a table
stale and the next optimizer access re-analyzes it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.summaries.maintenance import SummaryManager
from repro.summaries.objects import ClassifierObject

DEFAULT_BUCKETS = 16


@dataclass
class Histogram:
    """Equi-width histogram over a numeric domain."""

    lo: float
    hi: float
    buckets: list[int]

    @classmethod
    def build(cls, values: list[float], num_buckets: int = DEFAULT_BUCKETS) -> "Histogram":
        # Non-finite inputs are dropped, not clamped: a single NaN/inf used
        # to poison lo/hi (and thereby every bucket boundary), silently
        # skewing all later estimates for the column.
        finite = [float(v) for v in values if math.isfinite(v)]
        if not finite:
            return cls(0.0, 0.0, [0] * num_buckets)
        lo, hi = min(finite), max(finite)
        hist = cls(lo, hi, [0] * num_buckets)
        for v in finite:
            hist.buckets[hist._bucket_of(v)] += 1
        return hist

    @property
    def total(self) -> int:
        return sum(self.buckets)

    def _width(self) -> float:
        return (self.hi - self.lo) / len(self.buckets) if self.hi > self.lo else 1.0

    def _bucket_of(self, value: float) -> int:
        if self.hi <= self.lo:
            return 0
        idx = int((value - self.lo) / self._width())
        return min(max(idx, 0), len(self.buckets) - 1)

    def selectivity_eq(self, value: float, ndistinct: int) -> float:
        """Fraction of rows expected to equal ``value``."""
        if self.total == 0:
            return 0.0
        if value < self.lo or value > self.hi:
            return 0.0
        if self.hi == self.lo:
            # One-value domain: exact, not a bucket-spread estimate.
            return 1.0 if value == self.lo else 0.0
        bucket = self.buckets[self._bucket_of(value)]
        per_value = bucket / max(self.total, 1)
        # Assume values spread evenly inside the bucket.
        values_per_bucket = max(ndistinct / len(self.buckets), 1.0)
        return per_value / values_per_bucket

    def selectivity_range(
        self, lo: float | None, hi: float | None
    ) -> float:
        """Fraction of rows expected within [lo, hi]."""
        if self.total == 0:
            return 0.0
        lo = self.lo if lo is None else lo
        hi = self.hi if hi is None else hi
        if hi < self.lo or lo > self.hi or hi < lo:
            return 0.0
        if self.hi == self.lo:
            # One-value domain: the synthetic bucket width used to make a
            # range like [v, v] compute zero overlap and return 0.0 even
            # though every row matches.  The disjointness test above already
            # rejected ranges that miss the value, so this range contains it.
            return 1.0
        width = self._width()
        count = 0.0
        for i, bucket in enumerate(self.buckets):
            b_lo = self.lo + i * width
            b_hi = b_lo + width
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if width > 0:
                count += bucket * min(overlap / width, 1.0)
            elif lo <= b_lo <= hi:
                count += bucket
        return min(count / self.total, 1.0)


@dataclass
class LabelStats:
    """Figure 6's per-classifier-label statistics."""

    min: int
    max: int
    ndistinct: int
    histogram: Histogram

    @classmethod
    def build(cls, counts: list[int]) -> "LabelStats":
        if not counts:
            return cls(0, 0, 0, Histogram.build([]))
        return cls(
            min(counts), max(counts), len(set(counts)),
            Histogram.build([float(c) for c in counts]),
        )


@dataclass
class ColumnStats:
    ndistinct: int
    min: object = None
    max: object = None
    histogram: Histogram | None = None

    @classmethod
    def build(cls, values: list[object]) -> "ColumnStats":
        non_null = [v for v in values if v is not None]
        if not non_null:
            return cls(0)
        numeric = all(isinstance(v, (int, float)) for v in non_null)
        return cls(
            ndistinct=len(set(non_null)),
            min=min(non_null),
            max=max(non_null),
            histogram=(
                Histogram.build([float(v) for v in non_null]) if numeric else None
            ),
        )


@dataclass
class InstanceStats:
    """Per summary instance on one relation."""

    avg_object_size: float
    #: classifier label -> stats on the count field
    labels: dict[str, LabelStats] = field(default_factory=dict)


@dataclass
class TableStats:
    row_count: int
    heap_pages: int
    summary_pages: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    instances: dict[str, InstanceStats] = field(default_factory=dict)


class StatisticsCatalog:
    """Collects and serves statistics; implements the summary-observer
    interface so mutations invalidate affected tables."""

    def __init__(self, catalog: Catalog, manager: SummaryManager):
        self.catalog = catalog
        self.manager = manager
        self._stats: dict[str, TableStats] = {}
        self._stale: set[str] = set()

    # -- observer interface (registered per table/instance) -----------------------

    def observer_for(self, table: str) -> "_StalenessObserver":
        return _StalenessObserver(self, table.lower())

    def mark_stale(self, table: str) -> None:
        self._stale.add(table.lower())

    # -- collection ---------------------------------------------------------------

    def analyze(self, table_name: str) -> TableStats:
        """Full statistics pass over one table and its summaries."""
        table = self.catalog.table(table_name)
        key = table_name.lower()
        rows = [values for _, values in table.scan()]
        columns = {
            col.name: ColumnStats.build(
                [r[i] for r in rows]
            )
            for i, col in enumerate(table.schema.columns)
        }
        storage = self.manager.storage_for(key)
        instances: dict[str, InstanceStats] = {}
        sizes: dict[str, list[int]] = {}
        label_counts: dict[str, dict[str, list[int]]] = {}
        annotated = 0
        for _, objects in storage.scan():
            annotated += 1
            for name, obj in objects.items():
                sizes.setdefault(name, []).append(len(obj.to_bytes()))
                if isinstance(obj, ClassifierObject):
                    per_label = label_counts.setdefault(name, {})
                    for label, count in obj.rep():
                        per_label.setdefault(label, []).append(count)
        # Un-annotated tuples count as zero for every label (the optimizer
        # must see them when estimating e.g. "Provenance = 0").
        missing = max(len(rows) - annotated, 0)
        for name, per_label in label_counts.items():
            for counts in per_label.values():
                counts.extend([0] * missing)
        for name, size_list in sizes.items():
            instances[name] = InstanceStats(
                avg_object_size=sum(size_list) / len(size_list),
                labels={
                    label: LabelStats.build(counts)
                    for label, counts in label_counts.get(name, {}).items()
                },
            )
        stats = TableStats(
            row_count=len(rows),
            heap_pages=max(table.heap.num_pages, 1),
            summary_pages=max(storage.num_pages, 1),
            columns=columns,
            instances=instances,
        )
        self._stats[key] = stats
        self._stale.discard(key)
        return stats

    def table_stats(self, table_name: str) -> TableStats:
        """Stats for a table, re-analyzing when stale or missing."""
        key = table_name.lower()
        if key not in self._stats or key in self._stale:
            return self.analyze(table_name)
        return self._stats[key]

    def label_stats(
        self, table_name: str, instance: str, label: str
    ) -> LabelStats | None:
        stats = self.table_stats(table_name)
        inst = stats.instances.get(instance)
        if inst is None:
            return None
        return inst.labels.get(label)


class _StalenessObserver:
    """Adapter implementing the summary-observer protocol by marking the
    owning table's statistics stale."""

    def __init__(self, stats: StatisticsCatalog, table: str):
        self._stats = stats
        self._table = table

    def on_summary_insert(self, oid, obj) -> None:
        self._stats.mark_stale(self._table)

    def on_summary_update(self, oid, old_counts, new_counts) -> None:
        self._stats.mark_stale(self._table)

    def on_tuple_delete(self, oid, counts) -> None:
        self._stats.mark_stale(self._table)
