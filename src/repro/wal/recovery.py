"""Crash recovery: replay the WAL tail onto a checkpoint image.

Recovery is redo-only and logical: each record re-invokes the same engine
operation that produced it, with the identifiers the original execution
assigned (OIDs, annotation ids) forced so the replayed state is
byte-for-byte the state the crashed engine had acknowledged.

The idempotency rule is LSN-based: records below
``max(checkpoint_lsn, applied_lsn)`` were already folded into the image
(or into a previous replay of this same process) and are skipped, so
running recovery twice over the same log is a no-op. A record whose
re-application raises an engine error is counted and skipped — that
happens only for records of statements that *failed* after being framed
(the original execution raised too, so skipping reproduces it).

**Transactions.** Records with ``txn_id == 0`` are autocommit: one
statement, synced at its own boundary, replayed unconditionally (a torn
tail cuts un-acked statements). Records with a non-zero ``txn_id`` belong
to an explicit BEGIN…COMMIT group appended at commit time
(buffered redo — see ``repro.txn``); they are buffered during the scan
and applied **only when the group's ``TXN_COMMIT`` frame is durable**.
A group the tail cut before its commit frame — the classic
crash-mid-commit — is discarded wholesale: the client was never told the
transaction committed, so recovery must not resurrect any prefix of it.
Aborted transactions never log at all.

The torn tail — trailing bytes that do not form a CRC-valid,
correctly-positioned frame — is truncated from the device, never
replayed: a partially synced frame is the clean end of the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.wal.record import WALRecord, WALRecordType, scan_records


@dataclass
class RecoveryReport:
    """Outcome of one replay pass."""

    checkpoint_lsn: int
    start_lsn: int      #: records below this were skipped as already applied
    end_lsn: int        #: log offset one past the last valid frame
    scanned: int = 0
    replayed: int = 0
    skipped: int = 0
    #: records whose re-application raised (originally-failed statements).
    failed: int = 0
    #: torn-tail bytes truncated from the device.
    torn_bytes: int = 0
    #: explicit transactions whose commit frame was durable (replayed).
    committed_txns: int = 0
    #: records of explicit transactions missing their commit frame —
    #: discarded, never applied (crash-mid-commit groups).
    discarded_txn_records: int = 0
    #: txn ids of the discarded (uncommitted) groups.
    uncommitted_txns: list = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"recovery: {self.replayed} replayed, {self.skipped} skipped, "
            f"{self.failed} failed of {self.scanned} scanned; "
            f"{self.committed_txns} txns committed, "
            f"{self.discarded_txn_records} uncommitted-txn records discarded "
            f"(lsn {self.start_lsn}..{self.end_lsn}, "
            f"torn tail {self.torn_bytes}B)"
        )


def apply_record(db, record: WALRecord) -> None:
    """Re-apply one logical record against a live database.

    DDL goes back through the Database facade (the replay guard keeps it
    from re-logging); DML goes to the owning structure with the original
    identifiers forced.  This is the single redo interpreter: crash
    recovery and buffered-redo commit (``repro.txn.manager``) both apply
    their records through it, so a committed transaction's effect is by
    construction the effect its records replay to.
    """
    rtype, p = record.type, record.payload
    if rtype == WALRecordType.DDL:
        getattr(db, p["method"])(*p["args"], **p["kwargs"])
    elif rtype == WALRecordType.INSERT:
        db.catalog.table(p["table"]).insert(p["values"], oid=p["oid"])
    elif rtype == WALRecordType.DELETE:
        db.manager.on_tuple_delete(p["table"], p["oid"])
        db.catalog.table(p["table"]).delete(p["oid"])
    elif rtype == WALRecordType.UPDATE:
        db.catalog.table(p["table"]).update(p["oid"], p["values"])
        db.statistics.mark_stale(p["table"])
    elif rtype == WALRecordType.ANN_ADD:
        db.manager.add_annotation(p["text"], p["targets"], ann_id=p["ann_id"])
    elif rtype == WALRecordType.ANN_BULK:
        db.manager.add_annotations_bulk(p["items"], first_id=p["first_id"])
    elif rtype == WALRecordType.ANN_DEL:
        db.manager.delete_annotation(p["ann_id"])
    elif rtype in (WALRecordType.TXN_BEGIN, WALRecordType.TXN_COMMIT):
        pass  # group framing, no state of their own
    else:  # pragma: no cover - scan_records only yields known types
        raise ReproError(f"unknown WAL record type {rtype}")


def _committed_plan(records: list[WALRecord], start_lsn: int,
                    report: RecoveryReport) -> list[WALRecord]:
    """Order the records to apply: autocommit records as they appear,
    explicit-txn groups at their commit frame's position — and only when
    that commit frame exists.  Handles interleaved groups (commits
    serialize today, but the log format does not promise contiguity)."""
    groups: dict[int, list[WALRecord]] = {}
    plan: list[WALRecord] = []
    for record in records:
        if record.txn_id == 0:
            plan.append(record)
            continue
        if record.type == WALRecordType.TXN_COMMIT:
            report.committed_txns += 1
            plan.extend(groups.pop(record.txn_id, []))
            plan.append(record)
        else:
            groups.setdefault(record.txn_id, []).append(record)
    for txn_id, orphaned in sorted(groups.items()):
        # No durable commit frame: the crash beat the commit sync. Count
        # only records past the replay watermark — the rest were already
        # folded into the image by an earlier checkpoint.
        live = [r for r in orphaned if r.lsn >= start_lsn]
        if live:
            report.uncommitted_txns.append(txn_id)
            report.discarded_txn_records += len(live)
    return plan


def replay(db, device) -> RecoveryReport:
    """Replay the durable tail of ``device`` onto ``db``.

    Truncates any torn tail from the device so future appends extend a
    clean log, and advances ``db._applied_lsn`` past everything replayed.
    """
    start_lsn = max(db.checkpoint_lsn, db._applied_lsn, device.base_lsn)
    scan = scan_records(device.durable(), device.base_lsn)
    report = RecoveryReport(
        checkpoint_lsn=db.checkpoint_lsn,
        start_lsn=start_lsn,
        end_lsn=scan.end_lsn,
        scanned=len(scan.records),
        torn_bytes=scan.torn_bytes,
    )
    plan = _committed_plan(scan.records, start_lsn, report)
    db._wal_replaying = True
    try:
        for record in plan:
            if record.lsn < start_lsn:
                report.skipped += 1
                continue
            try:
                apply_record(db, record)
                report.replayed += 1
            except ReproError:
                report.failed += 1
    finally:
        db._wal_replaying = False
    if scan.torn_bytes:
        device.discard_after(scan.end_lsn)
    db._applied_lsn = max(db._applied_lsn, scan.end_lsn)
    cache = getattr(db.manager, "cache", None)
    if cache is not None:
        # Replay mutated state through every layer; nothing cached before
        # (or during) recovery may be served after it.
        cache.bump_all("recover")
    if getattr(db, "summary_async", "off") == "coherent":
        # Replayed annotation writes re-marked their tuples pending (the
        # pending set's crash-rebuild path); coherent mode regenerates at
        # statement boundaries, and recovery is one.
        db.manager.drain_pending()
    db.metrics.inc("recovery.runs")
    db.metrics.inc("recovery.records_replayed", report.replayed)
    db.metrics.inc("recovery.records_skipped", report.skipped)
    db.metrics.inc("recovery.records_failed", report.failed)
    db.metrics.inc("recovery.torn_bytes", report.torn_bytes)
    db.metrics.inc("recovery.committed_txns", report.committed_txns)
    db.metrics.inc(
        "recovery.discarded_txn_records", report.discarded_txn_records
    )
    return report
