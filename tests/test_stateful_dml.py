"""Hypothesis stateful test: random DML + annotation churn vs a dict oracle.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` interleaves row
inserts/updates/deletes with annotation adds/deletes against a small-pool
database (so eviction and checksum write-back paths run constantly), and
checks after every step that

* ``db.sql`` returns exactly the oracle's rows (plain and summary-predicate
  queries, through whatever plan the optimizer picks), and
* ``Database.check_integrity()`` holds — heap accounting, checksums,
  B-Tree invariants, Summary-BTree backward pointers, the lot.

Example counts honour the conftest Hypothesis profile; the scheduled CI job
raises them via ``HYPOTHESIS_PROFILE=ci-slow`` and the env knobs below.
"""

from __future__ import annotations

import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings, strategies as st  # noqa: E402
from hypothesis.stateful import (  # noqa: E402
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.catalog.schema import Column  # noqa: E402
from repro.core.database import Database  # noqa: E402
from repro.storage.record import ValueType  # noqa: E402

LABELS = ["alpha", "beta", "gamma"]
SEED_EXAMPLES = [
    ("apple alpha fruit orchard", "alpha"),
    ("bear beta animal forest", "beta"),
    ("gravel gamma rock quarry", "gamma"),
]
#: Annotation corpus: texts the seeded classifier labels deterministically.
TEXTS = [
    "apple alpha fruit",
    "orchard apple fruit alpha",
    "bear beta forest",
    "animal bear beta",
    "gravel gamma quarry",
    "rock gravel gamma",
]


class DMLMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.db = Database(buffer_pages=32)
        self.db.create_table(
            "t", [Column("name", ValueType.TEXT), Column("v", ValueType.INT)]
        )
        self.db.create_index("t", "v")
        self.db.create_classifier_instance("C", LABELS, SEED_EXAMPLES)
        self.db.sql("Alter Table t Add Indexable C")
        self.instance = self.db.manager.instance("C")
        self.rows: dict[int, tuple[str, int]] = {}  # oid -> (name, v)
        self.anns: dict[int, tuple[int, str]] = {}  # ann_id -> (oid, label)
        self.summarized: set[int] = set()  # oids owning a summary row
        self.counter = 0
        self.steps = 0

    # -- helpers -------------------------------------------------------------

    def _pick(self, pool, index: int):
        keys = sorted(pool)
        return keys[index % len(keys)] if keys else None

    def _label_counts(self, oid: int) -> dict[str, int]:
        counts = dict.fromkeys(LABELS, 0)
        for ann_oid, label in self.anns.values():
            if ann_oid == oid:
                counts[label] += 1
        return counts

    # -- rules ---------------------------------------------------------------

    @rule(v=st.integers(min_value=0, max_value=5))
    def insert_row(self, v):
        self.counter += 1
        name = f"r{self.counter}"
        oid = self.db.insert("t", [name, v])
        assert oid not in self.rows
        self.rows[oid] = (name, v)

    @rule(index=st.integers(min_value=0), v=st.integers(min_value=0, max_value=5))
    def update_row(self, index, v):
        oid = self._pick(self.rows, index)
        if oid is None:
            return
        self.db.catalog.table("t").update(oid, {"v": v})
        self.rows[oid] = (self.rows[oid][0], v)

    @rule(index=st.integers(min_value=0))
    def delete_row(self, index):
        oid = self._pick(self.rows, index)
        if oid is None:
            return
        self.db.delete_tuple("t", oid)
        del self.rows[oid]
        self.summarized.discard(oid)
        self.anns = {
            ann_id: (ann_oid, label)
            for ann_id, (ann_oid, label) in self.anns.items()
            if ann_oid != oid
        }

    @rule(index=st.integers(min_value=0),
          text=st.sampled_from(TEXTS))
    def add_annotation(self, index, text):
        oid = self._pick(self.rows, index)
        if oid is None:
            return
        # The oracle's label is whatever the (training-stable) classifier
        # says right now — the same call the maintenance path makes.
        label = self.instance.classify(text)
        ann = self.db.add_annotation(text, table="t", oid=oid)
        self.anns[ann.ann_id] = (oid, label)
        self.summarized.add(oid)

    @rule(index=st.integers(min_value=0))
    def delete_annotation(self, index):
        ann_id = self._pick(self.anns, index)
        if ann_id is None:
            return
        self.db.delete_annotation(ann_id)
        oid = self.anns.pop(ann_id)[0]
        if all(ann_oid != oid for ann_oid, _ in self.anns.values()):
            # Deleting a tuple's last annotation drops its storage row:
            # it summarizes like a never-annotated tuple from here on.
            self.summarized.discard(oid)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def sql_matches_oracle(self):
        result = self.db.sql("Select name, v From t")
        got = sorted(zip(result.column("name"), result.column("v")))
        assert got == sorted(self.rows.values())
        # Secondary-index path agrees with the oracle too.
        for v in {v for _, v in self.rows.values()}:
            via_index = self.db.sql(f"Select name From t Where v = {v}")
            expected = sorted(n for n, val in self.rows.values() if val == v)
            assert sorted(via_index.column("name")) == expected

    @invariant()
    def summary_queries_match_oracle(self):
        counts = {oid: self._label_counts(oid) for oid in self.summarized}
        for label in LABELS:
            for op, matcher in (
                ("> 0", lambda c: c > 0),
                ("= 0", lambda c: c == 0),
                ("= 1", lambda c: c == 1),
                ("= 2", lambda c: c == 2),
            ):
                result = self.db.sql(
                    "Select name From t r Where r.$.getSummaryObject('C')"
                    f".getLabelValue('{label}') {op}"
                )
                expected = sorted(
                    self.rows[oid][0]
                    for oid, c in counts.items()
                    if matcher(c[label])
                )
                assert sorted(result.column("name")) == expected, (
                    f"label {label} {op}"
                )

    @invariant()
    def storage_reads_match_oracle(self):
        """Summary sets read through the live path (and through the cache,
        when one is enabled) agree with the oracle's label counts."""
        storage = self.db.manager.storage_for("t")
        for oid in self.summarized:
            expected = self._label_counts(oid)
            objects = storage.get(oid)
            got = dict.fromkeys(LABELS, 0)
            if objects and "C" in objects:
                got.update(dict(objects["C"].rep()))
            assert got == expected, f"summary set of oid {oid} is stale"

    @invariant()
    def integrity_holds(self):
        # Full audit every few steps (it re-scans everything); always on
        # the final step via teardown below.
        self.steps += 1
        if self.steps % 5 == 0:
            report = self.db.check_integrity()
            assert report.ok, str(report)

    def teardown(self):
        report = self.db.check_integrity()
        assert report.ok, str(report)


class CachedDMLMachine(DMLMachine):
    """The same workload and oracle with a deliberately tiny summary cache
    enabled, plus clear/resize churn rules: every invariant read now runs
    through lookup / observer-invalidate / LRU-evict paths, so a single
    stale entry surfaces as an oracle divergence."""

    def __init__(self):
        super().__init__()
        self.db.manager.cache.resize(8192)

    @rule()
    def clear_cache(self):
        self.db.manager.cache.clear()

    @rule(capacity=st.sampled_from([0, 2048, 8192, 1 << 16]))
    def resize_cache(self, capacity):
        # capacity 0 legitimately disables the cache for a while; a later
        # resize re-enables it cold.
        self.db.manager.cache.resize(capacity)

    @invariant()
    def cache_stays_bounded(self):
        cache = self.db.manager.cache
        assert cache.used_bytes <= max(cache.capacity_bytes, 0)


_SETTINGS = settings(
    max_examples=int(os.environ.get("REPRO_STATEFUL_EXAMPLES", "12")),
    stateful_step_count=int(os.environ.get("REPRO_STATEFUL_STEPS", "25")),
    deadline=None,
)

TestDMLMachine = DMLMachine.TestCase
TestDMLMachine.settings = _SETTINGS
TestCachedDMLMachine = CachedDMLMachine.TestCase
TestCachedDMLMachine.settings = _SETTINGS
