"""Annotation value objects."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SummaryError


@dataclass(frozen=True)
class AnnotationTarget:
    """One attachment point of an annotation.

    ``columns`` is the tuple of column names the annotation covers within
    the tuple; an empty tuple means the annotation covers the whole row (and
    therefore survives any projection of that row).
    """

    table: str
    oid: int
    columns: tuple[str, ...] = ()

    def covers_any(self, retained_columns: set[str]) -> bool:
        """True when this target still applies after projecting to
        ``retained_columns``."""
        if not self.columns:
            return True  # row-level annotations survive every projection
        return any(c in retained_columns for c in self.columns)


@dataclass
class Annotation:
    """A raw annotation: free text plus one or more attachment targets."""

    ann_id: int
    text: str
    targets: list[AnnotationTarget] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.targets:
            raise SummaryError("an annotation needs at least one target")

    def targets_on(self, table: str) -> list[AnnotationTarget]:
        """Targets of this annotation that attach to ``table``."""
        return [t for t in self.targets if t.table.lower() == table.lower()]

    def columns_on(self, table: str, oid: int) -> tuple[str, ...]:
        """Columns this annotation covers on one specific tuple.

        Multiple targets on the same tuple are merged; any row-level target
        makes the whole attachment row-level.
        """
        columns: set[str] = set()
        for target in self.targets:
            if target.table.lower() == table.lower() and target.oid == oid:
                if not target.columns:
                    return ()
                columns.update(target.columns)
        return tuple(sorted(columns))
