"""Table schemas: named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.storage.record import RecordCodec, ValueType


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    type: ValueType
    nullable: bool = True


@dataclass
class Schema:
    """An ordered list of columns with by-name lookup."""

    columns: list[Column]
    _by_name: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        object.__setattr__(self, "_by_name", {n: i for i, n in enumerate(names)})

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Ordinal position of column ``name``."""
        if name not in self._by_name:
            raise SchemaError(f"no column named {name!r}")
        return self._by_name[name]

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def codec(self) -> RecordCodec:
        """Record codec matching this schema's column types."""
        return RecordCodec([c.type for c in self.columns])

    def validate_row(self, values: list[object]) -> None:
        """Type/null-check a full row of values."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values; schema has {len(self.columns)}"
            )
        for col, value in zip(self.columns, values):
            if value is None and not col.nullable:
                raise SchemaError(f"column {col.name!r} is not nullable")
            col.type.validate(value)

    def row_from_dict(self, row: dict[str, object]) -> list[object]:
        """Order a ``{name: value}`` mapping into a positional row."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns: {sorted(unknown)}")
        return [row.get(c.name) for c in self.columns]

    def dict_from_row(self, values: list[object]) -> dict[str, object]:
        return dict(zip(self.names, values))

    def project(self, names: list[str]) -> "Schema":
        """A new schema containing only ``names`` (in the given order)."""
        return Schema([self.column(n) for n in names])
