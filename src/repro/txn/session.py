"""Sessions: the per-caller execution surface of the concurrent engine.

A :class:`Session` owns what one caller is allowed to hold at a time —
its table locks (the session object itself is the lock owner) and at most
one open transaction — and dispatches parsed statements against the
shared :class:`~repro.core.database.Database`.  Every path into the
engine funnels through one: ``Database.sql`` routes through a per-thread
default session (locking only when ``REPRO_LOCKS`` is set, so the
single-caller surface stays zero-overhead), and each server connection
gets its own locking session.

Concurrency protocol (strict two-phase locking at table granularity):

* SELECT / EXPLAIN / ZOOM take **shared** locks on the tables they read
  (ZOOM also on the annotation resource); concurrent readers proceed.
* INSERT / UPDATE / DELETE / ANNOTATE take **exclusive** locks on their
  table (DELETE and ANNOTATE also on the annotation resource — tuple
  deletes cascade into the shared annotation store).  Multi-resource
  acquisitions go in sorted order to keep lock graphs shallow.
* Autocommit statements release their locks at statement end.  Inside a
  ``BEGIN`` … ``COMMIT``/``ABORT`` transaction, locks are held to the
  transaction boundary and DML is *buffered* as redo ops
  (:class:`~repro.txn.manager.Transaction`) — reads inside the
  transaction see committed state only (no read-your-writes; the
  concurrency battery's oracle models exactly these semantics).
* A lock wait that times out (:class:`~repro.errors.LockTimeoutError`)
  names this session the deadlock victim: its open transaction is
  auto-aborted and all its locks released, so the other side proceeds.
* DDL inside a transaction is rejected — DDL self-logs at statement
  scope and cannot be buffered.
"""

from __future__ import annotations

from itertools import count

from repro.annotations.annotation import AnnotationTarget
from repro.errors import (
    LockTimeoutError,
    ReadOnlyReplicaError,
    TransactionError,
)
from repro.query.ast import (
    AbortStmt,
    AlterTableSummary,
    AnnotateStmt,
    BeginStmt,
    CommitStmt,
    CreateTableStmt,
    DeleteStmt,
    ExplainStmt,
    InsertStmt,
    SelectStmt,
    UpdateStmt,
    ZoomIn,
)
from repro.query.parser import parse_sql
from repro.resilience import ExecutionContext
from repro.txn.locks import ANNOTATION_RESOURCE
from repro.wal.record import WALRecordType

_session_ids = count(1)


class Session:
    """One caller's handle on the database: locks + transaction state."""

    def __init__(self, db, locking: bool = True, name: str | None = None):
        self.db = db
        #: when False, lock acquisition is skipped entirely — the
        #: single-caller fast path (and the pre-concurrency behaviour).
        self.locking = locking
        self.name = name or f"session-{next(_session_ids)}"
        self.txn = None
        #: ExecutionContext of the statement currently inside
        #: :meth:`execute`; what :meth:`cancel` cancels.
        self._ctx: ExecutionContext | None = None
        self.closed = False

    def __repr__(self) -> str:  # lock diagnostics name the owner
        return f"<Session {self.name}>"

    @property
    def in_txn(self) -> bool:
        return self.txn is not None

    # -- entry points --------------------------------------------------------

    def execute(self, query: str, timeout: float | None = None):
        """Parse and run one statement under a fresh
        :class:`ExecutionContext` (deadline + cooperative cancellation),
        like :meth:`Database.execute` but per-session: the context is
        installed in the engine's *thread-local* slot, so concurrent
        sessions on worker threads each see their own deadline."""
        db = self.db
        effective = timeout if timeout is not None else db.statement_timeout
        ctx = ExecutionContext(timeout=effective, metrics=db.metrics)
        previous = db._exec_ctx
        db._exec_ctx = ctx
        self._ctx = ctx
        try:
            return self.execute_stmt(parse_sql(query))
        finally:
            self._ctx = None
            db._exec_ctx = previous

    def cancel(self) -> bool:
        """Cancel the statement currently inside :meth:`execute` (e.g. the
        server noticing the client hung up); returns False when idle.  The
        statement observes the flag at its next batch boundary or lock-wait
        slice."""
        ctx = self._ctx
        if ctx is None:
            return False
        ctx.cancel()
        return True

    def execute_stmt(self, stmt):
        """Run one parsed statement with session semantics (locks, txn
        buffering).  ``Database.sql`` lands here via the default session."""
        if self.closed:
            raise TransactionError("session is closed")
        try:
            return self._run_stmt(stmt)
        except LockTimeoutError:
            # Deadlock victim: roll back so our locks stop blocking the
            # winner. The caller sees the timeout error; the transaction
            # is gone (standard victim semantics).
            if self.txn is not None:
                txn, self.txn = self.txn, None
                self.db.txn_manager.abort(txn)
            raise
        finally:
            if self.txn is None and self.locking:
                self.db.lock_manager.release_all(self)

    def close(self) -> None:
        """Abort any open transaction and release every lock."""
        if self.closed:
            return
        self.closed = True
        if self.txn is not None:
            txn, self.txn = self.txn, None
            self.db.txn_manager.abort(txn)
        if self.locking:
            self.db.lock_manager.release_all(self)

    # -- locking -------------------------------------------------------------

    def _lock(self, resources, exclusive: bool) -> None:
        if not self.locking:
            return
        lm = self.db.lock_manager
        ctx = self.db._exec_ctx
        acquire = lm.acquire_exclusive if exclusive else lm.acquire_shared
        for resource in sorted({r.lower() for r in resources}):
            acquire(self, resource, ctx=ctx)

    # -- dispatch ------------------------------------------------------------

    #: statement classes a read-only replica rejects up front. BEGIN is
    #: included so a would-be writer fails fast instead of buffering DML
    #: that could only ever die at COMMIT.
    _MUTATING_STMTS = (
        BeginStmt, CreateTableStmt, AlterTableSummary, InsertStmt,
        UpdateStmt, DeleteStmt, AnnotateStmt,
    )

    def _run_stmt(self, stmt):
        db = self.db
        if getattr(db, "read_only", False) and isinstance(
            stmt, self._MUTATING_STMTS
        ):
            raise ReadOnlyReplicaError(
                "replica is read-only: route writes to the primary, "
                "or promote this replica first"
            )
        if isinstance(stmt, BeginStmt):
            return self._begin()
        if isinstance(stmt, CommitStmt):
            return self._commit()
        if isinstance(stmt, AbortStmt):
            return self._abort()
        if isinstance(stmt, (SelectStmt, ExplainStmt)):
            target = stmt.query if isinstance(stmt, ExplainStmt) else stmt
            self._lock((t.name for t in target.tables), exclusive=False)
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, ZoomIn):
            self._lock([stmt.table, ANNOTATION_RESOURCE], exclusive=False)
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, (CreateTableStmt, AlterTableSummary)):
            if self.txn is not None:
                raise TransactionError(
                    "DDL is not allowed inside a transaction; "
                    "COMMIT or ABORT first"
                )
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, InsertStmt):
            self._lock([stmt.table], exclusive=True)
            if self.txn is not None:
                return self._buffer_insert(stmt)
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, UpdateStmt):
            self._lock([stmt.table], exclusive=True)
            if self.txn is not None:
                return self._buffer_update(stmt)
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, DeleteStmt):
            # Tuple deletes cascade into the shared annotation store.
            self._lock([stmt.table, ANNOTATION_RESOURCE], exclusive=True)
            if self.txn is not None:
                return self._buffer_delete(stmt)
            return db._dispatch_stmt(stmt)
        if isinstance(stmt, AnnotateStmt):
            self._lock([stmt.table, ANNOTATION_RESOURCE], exclusive=True)
            if self.txn is not None:
                return self._buffer_annotate(stmt)
            annotation = db.add_annotation(
                stmt.text, table=stmt.table, oid=stmt.oid,
                columns=stmt.columns,
            )
            return annotation.ann_id
        return db._dispatch_stmt(stmt)

    # -- transaction control -------------------------------------------------

    def _begin(self):
        if self.txn is not None:
            raise TransactionError(
                f"transaction {self.txn.txn_id} already in progress"
            )
        self.txn = self.db.txn_manager.begin()
        return None

    def _commit(self):
        if self.txn is None:
            raise TransactionError("COMMIT outside a transaction")
        txn, self.txn = self.txn, None
        # txn is already detached: whether commit succeeds or raises, the
        # finally in execute_stmt releases this session's locks.
        self.db.txn_manager.commit(txn)
        return None

    def _abort(self):
        if self.txn is None:
            raise TransactionError("ABORT outside a transaction")
        txn, self.txn = self.txn, None
        self.db.txn_manager.abort(txn)
        return None

    # -- buffered DML (inside a transaction) ---------------------------------

    def _buffer_insert(self, stmt: InsertStmt):
        db, txn = self.db, self.txn
        tbl = db.catalog.table(stmt.table)
        for row in stmt.rows:
            row_in = (
                dict(zip(stmt.columns, row))
                if stmt.columns is not None else row
            )
            # Canonicalize now so a malformed row fails this statement,
            # not the eventual COMMIT.
            values = tbl.canonical_row(row_in)
            oid = txn.reserve_oid(tbl)
            txn.add_op(
                WALRecordType.INSERT,
                {"table": tbl.name, "oid": oid, "values": values},
            )
        txn.written_tables.add(tbl.name.lower())
        return None

    def _buffer_update(self, stmt: UpdateStmt):
        db, txn = self.db, self.txn
        key = stmt.table.lower()
        updates = [
            (oid, assigned)
            for oid, assigned in db._update_plan(stmt)
            if (key, oid) not in txn.deleted
        ]
        for oid, assigned in updates:
            txn.add_op(
                WALRecordType.UPDATE,
                {"table": stmt.table, "oid": oid, "values": assigned},
            )
        if updates:
            txn.written_tables.add(key)
        return len(updates)

    def _buffer_delete(self, stmt: DeleteStmt):
        db, txn = self.db, self.txn
        key = stmt.table.lower()
        oids = [
            oid
            for oid in db._matching_oids(stmt.table, stmt.alias, stmt.where)
            if (key, oid) not in txn.deleted
        ]
        for oid in oids:
            txn.add_op(WALRecordType.DELETE, {"table": stmt.table, "oid": oid})
            txn.deleted.add((key, oid))
        if oids:
            txn.written_tables.add(key)
        return len(oids)

    def _buffer_annotate(self, stmt: AnnotateStmt):
        db, txn = self.db, self.txn
        targets = [AnnotationTarget(stmt.table, stmt.oid, tuple(stmt.columns))]
        # Pre-assign the annotation id: sound under the held exclusive
        # annotation-resource lock (same argument as OID reservation).
        ann_id = db.manager.annotations.next_id + txn.ann_adds
        txn.ann_adds += 1
        txn.add_op(
            WALRecordType.ANN_ADD,
            {"text": stmt.text, "targets": targets, "ann_id": ann_id},
        )
        txn.written_tables.add(stmt.table.lower())
        return ann_id
