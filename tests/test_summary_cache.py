"""The versioned summary-set cache (``repro.cache``).

Three layers of coverage:

* unit tests of :class:`SummaryCache` itself — LRU byte bounds, the
  admission guard, epochs, precise invalidation, clear/resize, stats;
* integration through the engine — read-through equality with the
  uncached path, copy isolation, observer-driven invalidation on every
  annotation mutation, recover/repair/load epoch bumps, EXPLAIN ANALYZE
  counters, and the ``\\cache`` REPL command;
* the hot-path regressions that ride along: summary rows that grow across
  a page boundary (and back) keep the OID index consistent even under
  buffer-pool pressure.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cache import SummaryCache
from repro.catalog.schema import Column
from repro.cli import execute_line
from repro.core.database import Database
from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.record import ValueType
from repro.summaries.objects import SnippetObject
from repro.summaries.storage import SummaryStorage
from repro.wal.device import MemoryWALDevice


# ---------------------------------------------------------------------------
# Unit: the cache data structure
# ---------------------------------------------------------------------------

class TestSummaryCacheUnit:
    def test_disabled_by_default(self):
        cache = SummaryCache()
        assert not cache.enabled
        assert cache.store("t", 1, {"a": 1}, 10) is False
        hit, _ = cache.lookup("t", 1)
        assert not hit

    def test_store_then_hit(self):
        cache = SummaryCache(capacity_bytes=10_000)
        assert cache.store("t", 1, "value", 10)
        hit, value = cache.lookup("t", 1)
        assert hit and value == "value"
        assert cache.hits == 1 and cache.misses == 0

    def test_negative_entry(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 5, None, 0)
        hit, value = cache.lookup("t", 5)
        assert hit and value is None

    def test_kinds_are_separate(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "set-value", 10, kind="set")
        cache.store("t", 1, ("text",), 10, kind="texts")
        assert cache.lookup("t", 1, kind="set") == (True, "set-value")
        assert cache.lookup("t", 1, kind="texts") == (True, ("text",))

    def test_lru_eviction_by_bytes(self):
        cache = SummaryCache(capacity_bytes=10_000, max_entry_fraction=1.0)
        # Three entries of ~4000 effective bytes each: the third insert
        # must evict the least-recently-used first entry.
        cache.store("t", 1, "a", 4000)
        cache.store("t", 2, "b", 4000)
        cache.lookup("t", 1)  # touch 1 so 2 becomes LRU
        cache.store("t", 3, "c", 4000)
        assert cache.evictions == 1
        assert cache.lookup("t", 2)[0] is False
        assert cache.lookup("t", 1)[0] is True
        assert cache.lookup("t", 3)[0] is True
        assert cache.used_bytes <= cache.capacity_bytes

    def test_admission_guard_rejects_oversized(self):
        cache = SummaryCache(capacity_bytes=10_000)  # max entry = 1250
        assert cache.store("t", 1, "huge", 5_000) is False
        assert cache.rejections == 1
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_restore_replaces_entry_bytes(self):
        cache = SummaryCache(capacity_bytes=10_000, max_entry_fraction=1.0)
        cache.store("t", 1, "a", 1000)
        cache.store("t", 1, "b", 2000)
        assert len(cache) == 1
        assert cache.lookup("t", 1) == (True, "b")
        # 2000 + overhead, not 3000 + 2*overhead.
        assert cache.used_bytes < 2500

    def test_precise_invalidation(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "a", 10)
        cache.store("t", 1, ("x",), 10, kind="texts")
        cache.store("t", 2, "b", 10)
        cache.invalidate("t", 1)
        assert cache.lookup("t", 1)[0] is False
        assert cache.lookup("t", 1, kind="texts")[0] is False
        assert cache.lookup("t", 2)[0] is True
        assert cache.invalidations == 2

    def test_epoch_bump_stales_only_that_table(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "a", 10)
        cache.store("u", 1, "b", 10)
        cache.bump_epoch("t")
        assert cache.lookup("t", 1)[0] is False  # stale: epoch moved on
        assert cache.lookup("u", 1)[0] is True
        # The stale entry was reaped on lookup, not left occupying bytes.
        assert len(cache) == 1

    def test_bump_all(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "a", 10)
        cache.store("u", 2, "b", 10)
        cache.bump_all("recover")
        assert cache.lookup("t", 1)[0] is False
        assert cache.lookup("u", 2)[0] is False

    def test_store_after_bump_is_fresh(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "old", 10)
        cache.bump_epoch("t")
        cache.store("t", 1, "new", 10)
        assert cache.lookup("t", 1) == (True, "new")

    def test_clear_and_resize(self):
        cache = SummaryCache(capacity_bytes=10_000, max_entry_fraction=1.0)
        for oid in range(5):
            cache.store("t", oid, "v", 1000)
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0
        for oid in range(5):
            cache.store("t", oid, "v", 1000)
        cache.resize(2200)  # room for two ~1064-byte entries
        assert len(cache) == 2
        assert cache.used_bytes <= 2200
        cache.resize(0)
        assert not cache.enabled and len(cache) == 0
        assert cache.store("t", 9, "v", 10) is False

    def test_stats_shape(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "v", 10)
        cache.lookup("t", 1)
        cache.lookup("t", 2)
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["hit_rate"] == 0.5
        assert s["entries"] == 1 and s["capacity_bytes"] == 10_000

    def test_pickle_starts_cold_but_keeps_config(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "v", 10)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.capacity_bytes == 10_000 and clone.enabled
        assert len(clone) == 0 and clone.used_bytes == 0
        assert clone.epoch("t") == 0

    def test_metrics_mirrored_into_registry(self):
        cache = SummaryCache(capacity_bytes=10_000)
        cache.store("t", 1, "v", 10)
        cache.lookup("t", 1)
        cache.lookup("t", 2)
        cache.invalidate("t", 1)
        assert cache.metrics.get("cache.stores") == 1
        assert cache.metrics.get("cache.hits") == 1
        assert cache.metrics.get("cache.misses") == 1
        assert cache.metrics.get("cache.invalidations") == 1


# ---------------------------------------------------------------------------
# Integration: the cache in front of SummaryStorage / SummaryManager
# ---------------------------------------------------------------------------

TEXTS = {
    "alpha": "apple alpha fruit",
    "beta": "bear beta animal",
}


def build_db(cache_bytes: int = 1 << 20, buffer_pages: int = 64) -> Database:
    db = Database(buffer_pages=buffer_pages, cache_bytes=cache_bytes)
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    db.create_classifier_instance(
        "C", ["alpha", "beta"],
        [(TEXTS["alpha"], "alpha"), (TEXTS["beta"], "beta")],
    )
    db.sql("ALTER TABLE t ADD INDEXABLE C")
    for i in range(12):
        oid = db.insert("t", [f"r{i}", i])  # OIDs run 1..12
        db.add_annotation(TEXTS["alpha" if oid % 2 == 0 else "beta"],
                          table="t", oid=oid)
    return db


def set_dict(objects) -> dict:
    """Comparable form of a summary set (``obj_id`` is an in-memory
    identity counter, fresh per decode/copy — not part of the value)."""
    out = {}
    for name, obj in objects.items():
        d = dict(obj.to_dict())
        d.pop("obj_id", None)
        out[name] = d
    return out


def obj_dict(obj) -> dict:
    d = dict(obj.to_dict())
    d.pop("obj_id", None)
    return d


def label_count(db: Database, oid: int, label: str) -> int:
    objects = db.manager.storage_for("t").get(oid)
    if objects is None:
        return 0
    return dict(objects["C"].rep()).get(label, 0)


class TestReadThrough:
    def test_repeated_get_hits_and_equals_uncached(self):
        db = build_db()
        cache = db.manager.cache
        storage = db.manager.storage_for("t")
        first = storage.get(1)
        hits0 = cache.hits
        second = storage.get(1)
        assert cache.hits > hits0
        assert set_dict(first) == set_dict(second)
        # And both equal a direct uncached decode.
        uncached = build_db(cache_bytes=0).manager.storage_for("t").get(1)
        assert set_dict(second) == set_dict(uncached)

    def test_hits_return_independent_copies(self):
        db = build_db()
        storage = db.manager.storage_for("t")
        storage.get(1)  # prime
        a = storage.get(1)
        a["C"].label_elements.clear()  # caller-side mutation
        b = storage.get(1)
        assert b["C"].label_elements, "cached entry was poisoned by a caller"

    def test_negative_caching_for_unannotated(self):
        db = build_db()
        oid = db.insert("t", ["bare", 99])
        storage = db.manager.storage_for("t")
        assert storage.get(oid) is None
        hits0 = db.manager.cache.hits
        assert storage.get(oid) is None
        assert db.manager.cache.hits > hits0
        # ...and the negative entry dies the moment the row appears.
        db.add_annotation(TEXTS["alpha"], table="t", oid=oid)
        assert storage.get(oid) is not None

    def test_invalidation_on_annotation_add_delete_and_tuple_delete(self):
        db = build_db()
        assert label_count(db, 2, "alpha") == 1  # primes the cache
        ann = db.add_annotation(TEXTS["alpha"], table="t", oid=2)
        assert label_count(db, 2, "alpha") == 2
        db.delete_annotation(ann.ann_id)
        assert label_count(db, 2, "alpha") == 1
        db.delete_tuple("t", 2)
        assert db.manager.storage_for("t").get(2) is None

    def test_raw_texts_memoized_and_invalidated(self):
        db = build_db()
        assert db.manager.raw_texts_for("t", 2) == [TEXTS["alpha"]]
        hits0 = db.manager.cache.hits
        assert db.manager.raw_texts_for("t", 2) == [TEXTS["alpha"]]
        assert db.manager.cache.hits > hits0
        ann = db.add_annotation(TEXTS["beta"], table="t", oid=2)
        assert sorted(db.manager.raw_texts_for("t", 2)) == \
               sorted([TEXTS["alpha"], TEXTS["beta"]])
        db.delete_annotation(ann.ann_id)
        assert db.manager.raw_texts_for("t", 2) == [TEXTS["alpha"]]

    def test_query_results_identical_cache_on_off(self):
        q = ("SELECT t.name FROM t "
             "WHERE t.$.getSummaryObject('C').getLabelValue('alpha') >= 1")
        rows_on = [tuple(r.values) for r in build_db().sql(q)]
        rows_off = [tuple(r.values) for r in build_db(cache_bytes=0).sql(q)]
        assert sorted(rows_on) == sorted(rows_off)
        assert rows_on  # not vacuously equal

    def test_disabled_cache_stores_nothing(self):
        db = build_db(cache_bytes=0)
        db.manager.storage_for("t").get(1)
        assert len(db.manager.cache) == 0
        assert db.manager.cache.hits == 0


class TestEpochBumps:
    def test_repair_bumps_epochs(self):
        db = build_db()
        db.manager.storage_for("t").get(1)
        epoch0 = db.manager.cache.epoch("t")
        # Delete a heap tuple behind the manager's back: its summary row
        # becomes an orphan, the audit fails, and repair runs for real
        # (a clean audit early-returns without touching the cache).
        db.catalog.table("t").delete(1)
        report = db.repair()
        assert report.converged
        assert db.manager.cache.epoch("t") > epoch0
        assert db.metrics.get("cache.epoch_bumps.repair") >= 1

    def test_recover_bumps_epochs(self, monkeypatch):
        # Recovery builds its database from the env default.
        monkeypatch.setenv("REPRO_CACHE_BYTES", str(1 << 20))
        db = Database(buffer_pages=64)
        db.attach_wal()
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        db.create_classifier_instance(
            "C", ["alpha", "beta"],
            [(TEXTS["alpha"], "alpha"), (TEXTS["beta"], "beta")],
        )
        db.sql("ALTER TABLE t ADD INDEXABLE C")
        oid = db.insert("t", ["r0", 0])
        db.add_annotation(TEXTS["alpha"], table="t", oid=oid)
        crashed = MemoryWALDevice.from_durable(db.wal.device.durable(), 0)
        recovered, _report = Database.recover(None, crashed, verify=True)
        assert recovered.metrics.get("recovery.runs") == 1
        assert recovered.manager.cache.enabled
        # Replay leaves no live entries (every replayed write invalidates
        # what the read-modify-write just cached), so the bump can be a
        # no-op — but it must leave its trace counter: the hook ran.
        assert "cache.epoch_bumps.recover" in recovered.metrics_snapshot()
        # Post-recovery reads are correct through the (bumped) cache.
        assert label_count(recovered, oid, "alpha") == 1
        assert label_count(recovered, oid, "alpha") == 1  # warm read

    def test_saved_image_loads_cold_with_config(self, tmp_path):
        db = build_db()
        db.manager.storage_for("t").get(1)
        assert len(db.manager.cache) > 0
        path = tmp_path / "img.db"
        db.save(path)
        loaded = Database.load(path, verify=True)
        cache = loaded.manager.cache
        assert cache.enabled and cache.capacity_bytes == 1 << 20
        assert len(cache) == 0
        # Loaded database serves correct (re-read) summary sets.
        assert label_count(loaded, 2, "alpha") == 1

    def test_pickled_clone_diverges_safely(self):
        """A pickled clone must not share cache entries with the original:
        a write in the clone may not surface stale reads, even though the
        original's storage rows never changed."""
        db = build_db()
        assert label_count(db, 2, "alpha") == 1
        clone = pickle.loads(pickle.dumps(db))
        clone.add_annotation(TEXTS["alpha"], table="t", oid=2)
        assert label_count(clone, 2, "alpha") == 2
        assert label_count(db, 2, "alpha") == 1


class TestObservability:
    def test_metrics_snapshot_has_cache_counters(self):
        db = build_db()
        db.manager.storage_for("t").get(1)
        db.manager.storage_for("t").get(1)
        snap = db.metrics_snapshot()
        assert snap["cache.hits"] >= 1
        assert snap["cache.misses"] >= 1
        assert snap["cache.entries"] >= 1
        assert snap["cache.capacity_bytes"] == 1 << 20
        assert snap["cache.used_bytes"] > 0

    def test_explain_analyze_reports_cache_deltas(self):
        db = build_db()
        q = ("SELECT t.name FROM t "
             "WHERE t.$.getSummaryObject('C').getLabelValue('alpha') >= 1")
        db.sql(q)  # warm
        report = db.explain(q, analyze=True)
        metrics = report.execution["metrics"]
        assert metrics.get("cache.hits", 0) > 0
        assert "cache=" in report.analyzed
        ops = report.execution["operators"]
        assert sum(e["self_cache_hits"] for e in ops) == \
               metrics.get("cache.hits", 0)

    def test_analyze_render_unchanged_when_cache_off(self):
        db = build_db(cache_bytes=0)
        report = db.explain("SELECT t.name FROM t", analyze=True)
        assert "cache=" not in report.analyzed

    def test_cli_cache_command(self):
        db = build_db()
        db.manager.storage_for("t").get(1)
        db.manager.storage_for("t").get(1)
        out = execute_line(db, "\\cache")
        assert "enabled" in out and "hits=" in out
        assert execute_line(db, "\\cache clear") == "cache cleared"
        assert len(db.manager.cache) == 0
        out = execute_line(db, "\\cache resize 0")
        assert "disabled" in out
        out = execute_line(db, "\\cache resize 2048")
        assert "2048" in out and "enabled" in out
        assert "usage" in execute_line(db, "\\cache resize nope")
        assert "usage" in execute_line(db, "\\cache bogus")

    def test_help_mentions_cache(self):
        db = Database(buffer_pages=8)
        assert "\\cache" in execute_line(db, "\\help")


class TestCacheUnderPressure:
    def test_tiny_cache_evicts_but_stays_correct(self):
        db = build_db(cache_bytes=2048)
        plain = build_db(cache_bytes=0)
        oids = range(1, 13)
        expected = {oid: label_count(plain, oid, "alpha") for oid in oids}
        for _sweep in range(3):
            for oid in oids:
                assert label_count(db, oid, "alpha") == expected[oid]
        assert db.manager.cache.used_bytes <= 2048

    def test_oversized_sets_bypass_cache(self):
        db = build_db(cache_bytes=4096)
        # ~120 annotations make oid 2's encoded set far larger than the
        # 512-byte admission limit (capacity/8).
        for _ in range(120):
            db.add_annotation(TEXTS["alpha"], table="t", oid=2)
        count = label_count(db, 2, "alpha")
        assert count == 121
        assert db.manager.cache.rejections > 0
        assert label_count(db, 2, "alpha") == 121  # still correct, uncached


# ---------------------------------------------------------------------------
# Hot-path regressions: summary rows moving across page boundaries
# ---------------------------------------------------------------------------

def make_snippet_object(oid: int, ann_ids: range) -> SnippetObject:
    obj = SnippetObject(instance_name="S", tuple_id=oid)
    for ann_id in ann_ids:
        obj.add_annotation(ann_id, (), f"snippet text {ann_id} " + "x" * 40)
    return obj


class TestStorageRowMoves:
    def grow_shrink_roundtrip(self, buffer_pages: int) -> None:
        disk = DiskManager()
        pool = BufferPool(disk, capacity=buffer_pages)
        storage = SummaryStorage("t", pool)
        for oid in range(6):
            storage.put(oid, {"S": make_snippet_object(oid, range(2))})
        baseline = {oid: obj_dict(storage.get(oid)["S"]) for oid in range(6)}
        # Grow OID 3 far past one page: the row moves to an overflow chain
        # and its RID changes; the OID index must follow with no dangling
        # or duplicate entries.
        big = make_snippet_object(3, range(400))
        storage.put(3, {"S": big})
        assert obj_dict(storage.get(3)["S"]) == obj_dict(big)
        # Shrink it back inline: the row moves again.
        small = make_snippet_object(3, range(2))
        storage.put(3, {"S": small})
        assert obj_dict(storage.get(3)["S"]) == obj_dict(small)
        # Neighbors are untouched, the index maps every live row exactly
        # once, and a full scan agrees with point reads.
        for oid in range(6):
            assert obj_dict(storage.get(oid)["S"]) == baseline[oid]
        scanned = dict(storage.scan())
        assert sorted(scanned) == list(range(6))
        assert len(list(storage.oid_index.items())) == 6

    def test_grow_shrink_roundtrip(self):
        self.grow_shrink_roundtrip(buffer_pages=64)

    def test_grow_shrink_roundtrip_under_buffer_pressure(self):
        """Regression: with a pool too small to hold the row's overflow
        chain, allocating the chain inside ``HeapFile.update`` used to
        evict the very heap page being updated — the write then landed on
        an orphaned frame view and ``mark_dirty`` raised
        ``BufferPoolError: page … is not resident``, leaving the old
        overflow chain freed but the slot not rewritten."""
        self.grow_shrink_roundtrip(buffer_pages=4)

    def test_grow_shrink_through_engine_passes_integrity(self):
        db = Database(buffer_pages=8, cache_bytes=1 << 20)
        db.create_table("t", [Column("name", ValueType.TEXT)])
        db.create_snippet_instance("S", min_chars=0, max_chars=400)
        db.sql("ALTER TABLE t ADD S")
        oid = db.insert("t", ["r0"])
        for i in range(120):
            db.add_annotation(f"note {i} " + "y" * 60, table="t", oid=oid)
            if i in (2, 60, 119):
                db.check_integrity(raise_on_error=True)
        objects = db.manager.storage_for("t").get(oid)
        assert len(objects["S"].all_annotation_ids()) == 120
        db.check_integrity(raise_on_error=True)

    def test_delete_with_overflow_chain_under_pressure(self):
        disk = DiskManager()
        pool = BufferPool(disk, capacity=4)
        storage = SummaryStorage("t", pool)
        storage.put(0, {"S": make_snippet_object(0, range(400))})
        storage.put(1, {"S": make_snippet_object(1, range(2))})
        try:
            storage.delete(0)
        except BufferPoolError as exc:  # pragma: no cover - the regression
            pytest.fail(f"delete under buffer pressure raised {exc}")
        assert storage.get(0) is None
        assert storage.get(1) is not None
