"""Network fault schedules for the query server.

The serving-layer sibling of :class:`~repro.faults.plan.FaultPlan`: a
:class:`NetworkFaultPlan` maps (network operation, operation index) to a
:class:`NetworkFault`, and the :class:`~repro.server.server.QueryServer`
consults it at its three I/O points — ``accept`` (a connection was
admitted), ``read`` (one request frame is about to be read), ``write``
(one response frame is about to be written).  Indexes are 0-based and
counted per operation by the server, so "reset the 3rd response write"
is ``plan.reset_write(at=2)``; ``period`` makes a fault recur and
``times`` caps its total firings, exactly like the disk plans.

Four fault kinds model the ways a network actually betrays a server:

* ``reset``    — the peer (or a middlebox) tears the connection down;
  the server sees a hard connection loss at that point.
* ``stall``    — the operation hangs for ``stall_seconds`` before
  proceeding; drives idle/response-timeout handling.
* ``partial_frame`` — only a seeded prefix of the response frame
  reaches the wire before the connection drops; the client must treat
  the half-frame as an error, never as a short success.
* ``garble``   — seeded bytes of the frame are corrupted in flight;
  the frame checksum (``repro.server.protocol``) must catch it.

Everything random (prefix lengths, corrupted byte positions) comes from
one ``random.Random(seed)``, so a failing chaos schedule is reproducible
from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import StorageError


class NetworkFaultKind:
    """The four injected network fault classes."""

    #: The connection is torn down at this operation (RST / hangup).
    RESET = "reset"
    #: The operation hangs for ``stall_seconds`` before proceeding.
    STALL = "stall"
    #: Only a prefix of the frame reaches the wire, then the
    #: connection drops (write only).
    PARTIAL_FRAME = "partial_frame"
    #: Seeded bytes of the frame are corrupted in flight.
    GARBLE = "garble"

    ALL = (RESET, STALL, PARTIAL_FRAME, GARBLE)


#: Server I/O points a network fault can target.
NETWORK_OPS = ("accept", "read", "write")


@dataclass(frozen=True)
class NetworkFault:
    """One scheduled network fault.

    ``op`` is one of :data:`NETWORK_OPS`; ``at`` is the 0-based
    operation index at which the fault fires; a non-None ``period``
    makes it recur every ``period`` operations after ``at``; ``times``
    caps total firings (None = unlimited).
    """

    kind: str
    op: str
    at: int
    period: int | None = None
    #: Stalls: seconds the operation hangs before proceeding.
    stall_seconds: float = 0.05
    #: Partial frames: bytes of the frame that reach the wire
    #: (None = seeded from the plan's rng at injection time).
    partial_bytes: int | None = None
    #: Garbles: number of byte positions to corrupt (positions seeded).
    garble_bytes: int = 4
    times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in NetworkFaultKind.ALL:
            raise StorageError(f"unknown network fault kind {self.kind!r}")
        if self.op not in NETWORK_OPS:
            raise StorageError(
                f"network fault op must be one of {NETWORK_OPS}, "
                f"not {self.op!r}"
            )
        if self.kind == NetworkFaultKind.PARTIAL_FRAME and self.op != "write":
            raise StorageError("partial-frame faults apply to writes only")
        if self.kind == NetworkFaultKind.GARBLE and self.op == "accept":
            raise StorageError("garble faults apply to reads and writes")
        if self.at < 0 or (self.period is not None and self.period < 1):
            raise StorageError(
                f"bad fault schedule: at={self.at} period={self.period}"
            )
        if self.times is not None and self.times < 1:
            raise StorageError(f"bad fault budget: times={self.times}")
        if self.stall_seconds < 0:
            raise StorageError(
                f"bad stall duration: {self.stall_seconds}"
            )

    def fires_at(self, index: int) -> bool:
        if index == self.at:
            return True
        if self.period is None:
            return False
        return index > self.at and (index - self.at) % self.period == 0


class NetworkFaultPlan:
    """A deterministic, seeded schedule of network faults."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults: list[NetworkFault] = []
        #: remaining firing budget per fault position (lazy; the
        #: NetworkFault itself is frozen).
        self._budget: dict[int, int] = {}

    def schedule(self, fault: NetworkFault) -> "NetworkFaultPlan":
        self.faults.append(fault)
        return self

    # -- builder shorthands (all chainable) ----------------------------------

    def reset_accept(self, at: int, period: int | None = None,
                     times: int | None = None) -> "NetworkFaultPlan":
        """Tear down the ``at``-th admitted connection immediately."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.RESET, "accept", at, period, times=times))

    def reset_read(self, at: int, period: int | None = None,
                   times: int | None = None) -> "NetworkFaultPlan":
        """Connection loss before the ``at``-th request frame is read."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.RESET, "read", at, period, times=times))

    def reset_write(self, at: int, period: int | None = None,
                    times: int | None = None) -> "NetworkFaultPlan":
        """Connection loss before the ``at``-th response frame is sent."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.RESET, "write", at, period, times=times))

    def stall_read(self, at: int, seconds: float = 0.05,
                   period: int | None = None,
                   times: int | None = None) -> "NetworkFaultPlan":
        """Hang the ``at``-th request read for ``seconds``."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.STALL, "read", at, period,
            stall_seconds=seconds, times=times))

    def stall_write(self, at: int, seconds: float = 0.05,
                    period: int | None = None,
                    times: int | None = None) -> "NetworkFaultPlan":
        """Hang the ``at``-th response write for ``seconds``."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.STALL, "write", at, period,
            stall_seconds=seconds, times=times))

    def partial_write(self, at: int, partial_bytes: int | None = None,
                      period: int | None = None,
                      times: int | None = None) -> "NetworkFaultPlan":
        """Send only a prefix of the ``at``-th response frame, then drop
        the connection (prefix length seeded when not given)."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.PARTIAL_FRAME, "write", at, period,
            partial_bytes=partial_bytes, times=times))

    def garble_read(self, at: int, garble_bytes: int = 4,
                    period: int | None = None,
                    times: int | None = None) -> "NetworkFaultPlan":
        """Corrupt seeded bytes of the ``at``-th request frame."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.GARBLE, "read", at, period,
            garble_bytes=garble_bytes, times=times))

    def garble_write(self, at: int, garble_bytes: int = 4,
                     period: int | None = None,
                     times: int | None = None) -> "NetworkFaultPlan":
        """Corrupt seeded bytes of the ``at``-th response frame."""
        return self.schedule(NetworkFault(
            NetworkFaultKind.GARBLE, "write", at, period,
            garble_bytes=garble_bytes, times=times))

    # -- matching ------------------------------------------------------------

    def match(self, op: str, index: int) -> NetworkFault | None:
        """First scheduled fault firing for the ``index``-th ``op``
        (pure lookup; budgets are not consulted)."""
        for fault in self.faults:
            if fault.op == op and fault.fires_at(index):
                return fault
        return None

    def consume(self, op: str, index: int) -> NetworkFault | None:
        """Like :meth:`match`, but honours and decrements firing
        budgets; the decrement happens before the caller acts on the
        fault, so accounting is exception-safe (same contract as
        :meth:`FaultPlan.consume`)."""
        for position, fault in enumerate(self.faults):
            if fault.op != op or not fault.fires_at(index):
                continue
            if fault.times is not None:
                remaining = self._budget.get(position, fault.times)
                if remaining <= 0:
                    continue
                self._budget[position] = remaining - 1
            return fault
        return None

    def garble(self, data: bytes, count: int) -> bytes:
        """Corrupt ``count`` seeded byte positions of ``data`` (each
        XORed with a seeded non-zero mask, so the byte always changes)."""
        if not data:
            return data
        corrupted = bytearray(data)
        for _ in range(count):
            position = self.rng.randrange(len(corrupted))
            corrupted[position] ^= self.rng.randrange(1, 256)
        return bytes(corrupted)

    def partial_length(self, frame_len: int, fault: NetworkFault) -> int:
        """Bytes of a ``frame_len``-byte frame that reach the wire for
        ``fault`` (the scheduled prefix, else a seeded proper prefix)."""
        if fault.partial_bytes is not None:
            return max(0, min(fault.partial_bytes, frame_len - 1))
        if frame_len <= 1:
            return 0
        return self.rng.randrange(1, frame_len)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkFaultPlan(seed={self.seed}, faults={self.faults!r})"
