"""Unit + property tests for summary objects and their algebra.

The merge/projection semantics here are the heart of §2.2 (Example 1 /
Figure 3): counts derive from element sets, common annotations are never
double-counted, cluster groups combine when overlapping, and representatives
are re-elected when projected away.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SummaryError
from repro.summaries.objects import (
    ClassifierObject,
    ClusterGroup,
    ClusterObject,
    SnippetObject,
    SummaryObject,
    SummaryType,
)

LABELS = ["Provenance", "Comment", "Question"]


def classifier(tuple_id=1, instance="ClassBird2"):
    return ClassifierObject(instance_name=instance, tuple_id=tuple_id,
                            labels=list(LABELS))


class TestClassifierObject:
    def test_rep_in_declared_label_order(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ())
        obj.add_annotation(2, "Provenance", ())
        assert obj.rep() == [("Provenance", 1), ("Comment", 1), ("Question", 0)]

    def test_get_label_name_and_value(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ())
        obj.add_annotation(2, "Comment", ())
        assert obj.get_label_name(1) == "Comment"
        assert obj.get_label_value(1) == 2
        assert obj.get_label_value("Comment") == 2
        assert obj.get_label_value("Question") == 0

    def test_get_label_errors(self):
        obj = classifier()
        with pytest.raises(SummaryError):
            obj.get_label_name(9)
        with pytest.raises(SummaryError):
            obj.get_label_value("NoSuchLabel")

    def test_unknown_label_add_rejected(self):
        with pytest.raises(SummaryError):
            classifier().add_annotation(1, "Bogus", ())

    def test_get_size_is_number_of_labels(self):
        assert classifier().get_size() == 3

    def test_summary_type_and_name(self):
        obj = classifier()
        assert obj.get_summary_type() == "Classifier"
        assert obj.get_summary_name() == "ClassBird2"

    def test_merge_deduplicates_common_annotations(self):
        # Figure 3: 10 + 17 comments with 5 common must give 22, not 27.
        left = classifier(tuple_id=1)
        for ann in range(1, 11):  # 1..10
            left.add_annotation(ann, "Comment", ())
        right = classifier(tuple_id=2)
        for ann in range(6, 23):  # 6..22 => 5 common (6..10)
            right.add_annotation(ann, "Comment", ())
        left.merge(right)
        assert left.get_label_value("Comment") == 22

    def test_merge_keeps_disjoint_labels(self):
        left = classifier()
        left.add_annotation(1, "Provenance", ())
        right = classifier(tuple_id=2)
        right.add_annotation(2, "Question", ())
        left.merge(right)
        assert left.rep() == [("Provenance", 1), ("Comment", 0), ("Question", 1)]

    def test_merge_type_mismatch_rejected(self):
        with pytest.raises(SummaryError):
            classifier().merge(SnippetObject(instance_name="x", tuple_id=1))

    def test_remove_annotations_decrements(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ())
        obj.add_annotation(2, "Comment", ())
        obj.remove_annotations({1})
        assert obj.get_label_value("Comment") == 1
        assert 1 not in obj.all_annotation_ids()

    def test_projection_drops_only_projected_out_columns(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ("c", "d"))   # only on dropped cols
        obj.add_annotation(2, "Comment", ("a",))       # on retained col
        obj.add_annotation(3, "Comment", ())           # row-level
        obj.project_to_columns({"a", "b"})
        assert obj.get_label_value("Comment") == 2
        assert obj.all_annotation_ids() == {2, 3}

    def test_copy_is_independent(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ())
        dup = obj.copy()
        dup.add_annotation(2, "Comment", ())
        assert obj.get_label_value("Comment") == 1
        assert dup.get_label_value("Comment") == 2

    def test_serialization_roundtrip(self):
        obj = classifier()
        obj.add_annotation(1, "Comment", ("a",))
        obj.add_annotation(2, "Question", ())
        back = SummaryObject.from_bytes(obj.to_bytes())
        assert isinstance(back, ClassifierObject)
        assert back.rep() == obj.rep()
        assert back.ann_targets == obj.ann_targets
        assert back.elements() == obj.elements()


class TestSnippetObject:
    def make(self):
        obj = SnippetObject(instance_name="TextSummary1", tuple_id=1)
        obj.add_annotation(1, (), "Experiment E measured wing development")
        obj.add_annotation(2, ("c",), "Wikipedia article about hormone levels")
        obj.add_annotation(3, (), None)  # short annotation: no snippet
        return obj

    def test_rep_and_size(self):
        obj = self.make()
        assert obj.get_size() == 2
        assert "Experiment" in obj.get_snippet(0)

    def test_get_snippet_out_of_range(self):
        with pytest.raises(SummaryError):
            self.make().get_snippet(5)

    def test_all_annotation_ids_includes_short_ones(self):
        assert self.make().all_annotation_ids() == {1, 2, 3}

    def test_contains_single_within_one_snippet(self):
        obj = self.make()
        assert obj.contains_single(["wikipedia", "hormone"])
        assert not obj.contains_single(["wikipedia", "wing"])  # spans two

    def test_contains_union_spans_snippets(self):
        obj = self.make()
        assert obj.contains_union(["wikipedia", "wing"])
        assert not obj.contains_union(["nonexistentword"])

    def test_contains_with_raw_texts(self):
        obj = self.make()
        raws = ["the raw note mentions migration and hormone"]
        assert obj.contains_single(["migration", "hormone"], raw_texts=raws)

    def test_projection_drops_snippet_of_projected_annotation(self):
        obj = self.make()
        obj.project_to_columns({"a"})
        assert obj.get_size() == 1  # wikipedia snippet (on column c) dropped
        assert obj.all_annotation_ids() == {1, 3}

    def test_merge_union_and_dedup(self):
        a = self.make()
        b = SnippetObject(instance_name="TextSummary1", tuple_id=2)
        b.add_annotation(2, (), "Wikipedia article about hormone levels")
        b.add_annotation(9, (), "A new long article snippet")
        a.merge(b)
        assert a.get_size() == 3  # ann 2 deduplicated
        assert a.all_annotation_ids() == {1, 2, 3, 9}

    def test_serialization_roundtrip(self):
        obj = self.make()
        back = SummaryObject.from_bytes(obj.to_bytes())
        assert isinstance(back, SnippetObject)
        assert back.rep() == obj.rep()
        assert back.all_annotation_ids() == obj.all_annotation_ids()


def group(rep, members, prefix="ann"):
    return ClusterGroup(rep, set(members),
                        {m: f"{prefix}-{m} text" for m in members})


def cluster(groups, tuple_id=1):
    obj = ClusterObject(instance_name="SimCluster", tuple_id=tuple_id,
                        groups=groups)
    for g in groups:
        for m in g.members:
            obj.ann_targets.setdefault(m, ())
    return obj


class TestClusterObject:
    def test_rep_sorted_by_size(self):
        obj = cluster([group(1, [1, 2]), group(5, [5, 6, 7])])
        assert obj.rep() == [("ann-5 text", 3), ("ann-1 text", 2)]
        assert obj.get_size() == 2

    def test_get_group_size_and_representative(self):
        obj = cluster([group(1, [1, 2])])
        assert obj.get_group_size(0) == 2
        assert obj.get_representative(0) == "ann-1 text"
        with pytest.raises(SummaryError):
            obj.get_group_size(4)

    def test_remove_reelects_representative(self):
        # Figure 3: when A2's representative is dropped, A5 takes over.
        obj = cluster([group(2, [2, 5, 8])])
        obj.remove_annotations({2})
        assert obj.groups[0].rep_ann_id == 5
        assert obj.rep() == [("ann-5 text", 2)]

    def test_remove_drops_empty_groups(self):
        obj = cluster([group(1, [1]), group(2, [2, 3])])
        obj.remove_annotations({1})
        assert obj.get_size() == 1

    def test_merge_combines_overlapping_groups(self):
        # Figure 3: groups represented by A1 and B5 share annotations and
        # combine; A5 and B7 stay separate.
        left = cluster([group(1, [1, 10, 11]), group(5, [5])])
        right = cluster([group(20, [10, 20]), group(7, [7])], tuple_id=2)
        left.merge(right)
        sizes = sorted(g.size for g in left.groups)
        assert sizes == [1, 1, 4]  # {1,10,11,20} + {5} + {7}
        combined = max(left.groups, key=lambda g: g.size)
        assert combined.members == {1, 10, 11, 20}
        assert combined.rep_ann_id == 1  # larger side keeps representative

    def test_merge_chains_multiple_overlaps(self):
        # An incoming group can bridge two existing groups.
        left = cluster([group(1, [1, 2]), group(5, [5, 6])])
        right = cluster([group(2, [2, 5])], tuple_id=2)
        left.merge(right)
        assert len(left.groups) == 1
        assert left.groups[0].members == {1, 2, 5, 6}

    def test_merge_disjoint_propagates_separately(self):
        left = cluster([group(1, [1])])
        right = cluster([group(2, [2])], tuple_id=2)
        left.merge(right)
        assert len(left.groups) == 2

    def test_merge_no_double_count_members(self):
        left = cluster([group(1, [1, 2, 3])])
        right = cluster([group(1, [1, 2, 3])], tuple_id=2)
        left.merge(right)
        assert len(left.groups) == 1
        assert left.groups[0].size == 3

    def test_serialization_roundtrip(self):
        obj = cluster([group(1, [1, 2]), group(5, [5])])
        back = SummaryObject.from_bytes(obj.to_bytes())
        assert isinstance(back, ClusterObject)
        assert back.rep() == obj.rep()
        assert back.elements() == obj.elements()


class TestMergeProperties:
    """Algebraic properties the propagation proofs of [22] rely on."""

    @given(
        st.sets(st.integers(1, 40), max_size=15),
        st.sets(st.integers(1, 40), max_size=15),
    )
    @settings(max_examples=50)
    def test_classifier_merge_commutative_counts(self, left_ids, right_ids):
        def build(ids, tid):
            obj = classifier(tuple_id=tid)
            for a in ids:
                obj.add_annotation(a, LABELS[a % 3], ())
            return obj

        ab = build(left_ids, 1)
        ab.merge(build(right_ids, 2))
        ba = build(right_ids, 2)
        ba.merge(build(left_ids, 1))
        assert dict(ab.rep()) == dict(ba.rep())

    @given(
        st.sets(st.integers(1, 30), max_size=12),
        st.sets(st.integers(1, 30), max_size=12),
    )
    @settings(max_examples=50)
    def test_classifier_merge_is_union(self, left_ids, right_ids):
        def build(ids, tid):
            obj = classifier(tuple_id=tid)
            for a in ids:
                obj.add_annotation(a, "Comment", ())
            return obj

        merged = build(left_ids, 1)
        merged.merge(build(right_ids, 2))
        assert merged.get_label_value("Comment") == len(left_ids | right_ids)

    @given(st.sets(st.integers(1, 30), min_size=1, max_size=12),
           st.sets(st.integers(1, 30), max_size=6))
    @settings(max_examples=50)
    def test_classifier_remove_then_ids_consistent(self, ids, doomed):
        obj = classifier()
        for a in ids:
            obj.add_annotation(a, LABELS[a % 3], ())
        obj.remove_annotations(set(doomed))
        assert obj.all_annotation_ids() == ids - doomed
        assert sum(c for _, c in obj.rep()) == len(ids - doomed)

    @given(
        st.lists(st.sets(st.integers(1, 25), min_size=1, max_size=6),
                 min_size=1, max_size=4),
        st.lists(st.sets(st.integers(1, 25), min_size=1, max_size=6),
                 min_size=1, max_size=4),
    )
    @settings(max_examples=50)
    def test_cluster_merge_members_are_union_and_disjoint(self, left, right):
        def disjointify(groupsets):
            seen: set[int] = set()
            out = []
            for s in groupsets:
                s = s - seen
                if s:
                    out.append(group(min(s), s))
                    seen |= s
            return out

        lobj = cluster(disjointify(left))
        robj = cluster(disjointify(right), tuple_id=2)
        expect = set().union(*[g.members for g in lobj.groups]) | set().union(
            *[g.members for g in robj.groups]
        )
        lobj.merge(robj)
        got_groups = [g.members for g in lobj.groups]
        # Union preserved and groups pairwise disjoint afterwards.
        assert set().union(*got_groups) == expect
        assert sum(len(g) for g in got_groups) == len(expect)
        # Representatives always members of their group.
        for g in lobj.groups:
            assert g.rep_ann_id in g.members


class TestSummaryTypeEnum:
    def test_values_match_paper_names(self):
        assert SummaryType.CLASSIFIER.value == "Classifier"
        assert SummaryType.SNIPPET.value == "Snippet"
        assert SummaryType.CLUSTER.value == "Cluster"
