"""WAL overhead — cost of crash safety on the DML path (no paper figure).

Every mutating statement now appends one logical record to the WAL and
fsyncs it before acknowledging (``repro.wal``).  This bench measures what
that buys back in overhead: the same mixed DML churn — annotation
inserts, tuple inserts, updates, deletes — timed per statement against an
identical database with logging off vs. on (in-memory log device, so the
numbers isolate the engine-side cost: record encoding, LSN stamping,
log-before-data ordering — not a disk's fsync latency).

Acceptance target: < 15% per-statement slowdown at the small preset.
"""

import random
import time

import pytest

from repro.bench import FigureTable, fresh_database
from repro.wal.device import MemoryWALDevice
from repro.workload.generator import WorkloadConfig, annotation_batch

STATEMENTS = 120


def _avg_statement_ms(db, config, rng) -> float:
    """Average wall time of STATEMENTS mixed DML statements."""
    oids = [oid for oid, _ in db.catalog.table("birds").scan()]
    started = time.perf_counter()
    for i in range(STATEMENTS):
        action = i % 4
        if action in (0, 1):  # annotation insert (the dominant write)
            oid = rng.choice(oids)
            [(text, targets)] = annotation_batch(rng, oid, config, 1)
            db.manager.add_annotation(text, targets)
        elif action == 2:
            oid = db.insert(
                "birds", {"scientific_name": f"churn bird {i}"}
            )
            oids.append(oid)
        else:
            victim = oids.pop(rng.randrange(len(oids)))
            db.delete_tuple("birds", victim)
    return (time.perf_counter() - started) / STATEMENTS * 1e3


@pytest.mark.benchmark(group="wal-overhead")
@pytest.mark.parametrize("density", [10, 50, 200])
def test_wal_overhead(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    config = WorkloadConfig(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree",
    )

    def run_all():
        results = []
        for wal_on in (False, True):
            db = fresh_database(
                num_birds=config.num_birds,
                annotations_per_tuple=config.annotations_per_tuple,
                indexes="summary_btree",
            )
            if wal_on:
                db.attach_wal(MemoryWALDevice())
            results.append(_avg_statement_ms(db, config, random.Random(7)))
        return tuple(results)

    off_ms, on_ms = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = figure_writer.setdefault(
        "wal_overhead",
        FigureTable(
            "WAL overhead — mixed DML, avg per statement", unit="ms"
        ),
    )
    x = preset.label(density)
    table.add("WAL off", x, off_ms)
    table.add("WAL on", x, on_ms)
    if density == max(d for d in (10, 50, 200) if d in preset.densities):
        overhead = table.mean_ratio("WAL on", "WAL off") - 1
        table.note(
            f"WAL adds {overhead:.0%} per-statement overhead"
            "  [target: < 15%]"
        )
