"""Optimizer tests: statistics, selectivity, transformation rules (§5.1),
and plan selection."""

import pytest

from repro import Column, Database, PlannerOptions, ValueType
from repro.optimizer.cost import (
    Estimator,
    match_indexable_data_pred,
    match_indexable_summary_pred,
)
from repro.optimizer.rules import RuleContext, apply_rules
from repro.optimizer.statistics import Histogram, LabelStats
from repro.query.logical import (
    LogicalJoin,
    LogicalSummaryJoin,
    LogicalSummarySelect,
)
from repro.query.parser import parse_sql

SEED = [
    ("infection avian flu disease symptoms", "Disease"),
    ("outbreak illness disease infected", "Disease"),
    ("wing beak plumage anatomy", "Anatomy"),
    ("wingspan bone anatomy measurement", "Anatomy"),
    ("migration nesting behavior", "Behavior"),
    ("feeding eating behavior flock", "Behavior"),
    ("note comment misc", "Other"),
]

DISEASE_TEXT = "observed avian flu infection disease symptoms"


def build_db(synonyms_have_instance=False):
    db = Database()
    db.create_table(
        "birds",
        [Column("name", ValueType.TEXT), Column("family", ValueType.TEXT)],
    )
    db.create_table(
        "synonyms",
        [Column("bird_name", ValueType.TEXT), Column("syn", ValueType.TEXT)],
    )
    db.create_index("synonyms", "bird_name")
    db.create_classifier_instance(
        "ClassBird1", ["Disease", "Anatomy", "Behavior", "Other"], SEED
    )
    db.create_snippet_instance("TextSummary1", min_chars=60, max_chars=50)
    db.sql("Alter Table birds Add Indexable ClassBird1")
    db.sql("Alter Table birds Add TextSummary1")
    db.sql("Alter Table synonyms Add TextSummary1")
    if synonyms_have_instance:
        db.manager.link("synonyms", "ClassBird1")
    for i in range(30):
        oid = db.insert("birds", {"name": f"b{i}", "family": f"f{i % 3}"})
        for _ in range(i % 7):
            db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.insert("synonyms", {"bird_name": f"b{i}", "syn": f"s{i}"})
    db.analyze("birds")
    db.analyze("synonyms")
    return db


class TestHistogram:
    def test_build_and_total(self):
        hist = Histogram.build([1.0, 2.0, 3.0, 4.0, 5.0], num_buckets=4)
        assert hist.total == 5

    def test_selectivity_eq_in_domain(self):
        hist = Histogram.build([float(i % 10) for i in range(100)])
        sel = hist.selectivity_eq(5.0, ndistinct=10)
        assert 0.0 < sel <= 1.0

    def test_selectivity_eq_out_of_domain(self):
        hist = Histogram.build([1.0, 2.0])
        assert hist.selectivity_eq(99.0, ndistinct=2) == 0.0

    def test_selectivity_range_full(self):
        hist = Histogram.build([float(i) for i in range(50)])
        assert hist.selectivity_range(None, None) == pytest.approx(1.0)

    def test_selectivity_range_half(self):
        hist = Histogram.build([float(i) for i in range(100)])
        sel = hist.selectivity_range(0, 49)
        assert 0.3 < sel < 0.7

    def test_empty_histogram(self):
        hist = Histogram.build([])
        assert hist.selectivity_eq(1.0, 1) == 0.0
        assert hist.selectivity_range(0, 10) == 0.0

    def test_label_stats_build(self):
        stats = LabelStats.build([1, 2, 2, 3, 8])
        assert stats.min == 1
        assert stats.max == 8
        assert stats.ndistinct == 4


class TestStatisticsCatalog:
    def test_analyze_collects_label_stats(self):
        db = build_db()
        stats = db.statistics.table_stats("birds")
        assert stats.row_count == 30
        disease = stats.instances["ClassBird1"].labels["Disease"]
        assert disease.max == 6
        assert disease.min == 0

    def test_avg_object_size_positive(self):
        db = build_db()
        stats = db.statistics.table_stats("birds")
        assert stats.instances["ClassBird1"].avg_object_size > 0

    def test_staleness_triggers_reanalyze(self):
        db = build_db()
        before = db.statistics.table_stats("birds")
        oid = db.insert("birds", {"name": "new", "family": "f0"})
        for _ in range(9):
            db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        after = db.statistics.table_stats("birds")
        assert after.instances["ClassBird1"].labels["Disease"].max == 9
        assert before is not after

    def test_column_stats(self):
        db = build_db()
        stats = db.statistics.table_stats("birds")
        assert stats.columns["family"].ndistinct == 3


class TestPredicateMatching:
    def test_match_summary_pred(self):
        stmt = parse_sql(
            "Select * From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5"
        )
        matched = match_indexable_summary_pred(stmt.where)
        assert matched is not None
        assert (matched.instance, matched.label, matched.op, matched.constant) == (
            "ClassBird1", "Disease", ">", 5,
        )
        assert matched.bounds() == (5, None, False, True)

    def test_match_flipped_comparison(self):
        stmt = parse_sql(
            "Select * From birds r Where "
            "5 < r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        matched = match_indexable_summary_pred(stmt.where)
        assert matched is not None and matched.op == ">"

    def test_no_match_for_keyword_predicate(self):
        stmt = parse_sql(
            "Select * From birds r Where "
            "r.$.getSummaryObject('TextSummary1').containsUnion('x')"
        )
        assert match_indexable_summary_pred(stmt.where) is None

    def test_match_data_pred(self):
        stmt = parse_sql("Select * From birds Where family = 'f1'")
        matched = match_indexable_data_pred(stmt.where)
        assert matched is not None
        assert matched.column == "family"


def bind(db, sql):
    stmt = parse_sql(sql)
    return db.planner.binder.bind(stmt)


def plan_labels(plan):
    return [node.label() for node in plan.walk_plan()]


class TestRules:
    Q_EXAMPLE4 = (
        "Select r.name, s.syn From birds r, synonyms s "
        "Where r.name = s.bird_name And "
        "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5 "
        "Order By r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
    )

    def test_rule2_pushes_selection_below_join(self):
        # Case II of Example 4: synonyms does NOT have ClassBird1, so the S
        # operator can be pushed below the join.
        db = build_db(synonyms_have_instance=False)
        logical, info = bind(db, self.Q_EXAMPLE4)
        variants = apply_rules(logical, db.manager, info)
        assert len(variants) > 1
        pushed = [
            v for v in variants
            if any(
                isinstance(n, LogicalJoin)
                and isinstance(n.left, LogicalSummarySelect)
                for n in v.walk_plan()
            )
        ]
        assert pushed

    def test_rule2_blocked_when_both_sides_have_instance(self):
        # Case I of Example 4: synonyms also links ClassBird1 -> no pushdown.
        db = build_db(synonyms_have_instance=True)
        logical, info = bind(db, self.Q_EXAMPLE4)
        variants = apply_rules(logical, db.manager, info)
        pushed = [
            v for v in variants
            if any(
                isinstance(n, LogicalJoin)
                and isinstance(n.left, LogicalSummarySelect)
                for n in v.walk_plan()
            )
        ]
        assert not pushed

    def test_rule11_switches_join_order(self):
        db = build_db()
        # T is a replica of birds joined on a data column; J(R, S) is a
        # summary join on keywords.
        db.create_table("t_rep", [Column("name", ValueType.TEXT)])
        db.create_index("t_rep", "name")
        for i in range(30):
            db.insert("t_rep", {"name": f"b{i}"})
        sql = (
            "Select r.name From birds r, synonyms s, t_rep t "
            "Where r.name = t.name And "
            "r.$.getSummaryObject('TextSummary1').containsUnion('disease')"
        )
        # The summary predicate references only r -> it binds as a summary
        # SELECT; craft a genuine summary JOIN instead:
        sql = (
            "Select r.name From birds r, synonyms s, t_rep t "
            "Where r.name = t.name And "
            "r.$.getSummaryObject('TextSummary1').getSize() = "
            "s.$.getSummaryObject('TextSummary1').getSize()"
        )
        logical, info = bind(db, sql)
        # Initial shape: J(r, s) first (FROM order), then join with t.
        assert any(isinstance(n, LogicalSummaryJoin) for n in logical.walk_plan())
        variants = apply_rules(logical, db.manager, info)
        switched = [
            v for v in variants
            if isinstance(v_top := _top_join(v), LogicalSummaryJoin)
            and isinstance(v_top.left, LogicalJoin)
        ]
        assert switched, "Rule 11 should offer J((r JOIN t), s)"

    def test_structural_filter_pushed_both_sides(self):
        db = build_db()
        sql = (
            "Select r.name, s.syn From birds r, synonyms s "
            "Where r.name = s.bird_name "
            "FILTER SUMMARIES getSummaryType() = 'Classifier'"
        )
        logical, info = bind(db, sql)
        variants = apply_rules(logical, db.manager, info)
        both_sides = [
            v for v in variants
            if sum("SummaryFilter" in lbl for lbl in plan_labels(v)) == 2
        ]
        assert both_sides


def _top_join(plan):
    """First join node under the top-of-plan unary operators."""
    node = plan
    while node.children and len(node.children) == 1:
        node = node.children[0]
    return node


class TestPlanSelection:
    def test_index_chosen_for_selective_predicate(self):
        db = build_db()
        # Scale data so that the index clearly wins.
        for i in range(300):
            oid = db.insert("birds", {"name": f"x{i}", "family": "f9"})
            db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.analyze("birds")
        report = db.explain(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 6"
        )
        assert "SummaryIndexScan" in report.physical

    def test_no_index_when_disabled(self):
        db = build_db()
        db.options.enable_summary_indexes = False
        report = db.explain(
            "Select name From birds r Where "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 6"
        )
        assert "SummaryIndexScan" not in report.physical

    def test_rules_disabled_keeps_initial_plan(self):
        db = build_db()
        db.options.enable_rules = False
        report = db.explain(
            "Select r.name From birds r, synonyms s "
            "Where r.name = s.bird_name And "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5"
        )
        # With rules off the S operator stays above the join.
        lines = report.logical.splitlines()
        s_line = next(i for i, l in enumerate(lines) if "SummarySelect" in l)
        join_line = next(i for i, l in enumerate(lines) if "Join" in l)
        assert s_line < join_line

    def test_forced_join_method(self):
        db = build_db()
        db.options.force_join = "nloop"
        report = db.explain(
            "Select r.name From birds r, synonyms s Where r.name = s.bird_name"
        )
        assert "NestedLoopJoin" in report.physical
        db.options.force_join = "index"
        report2 = db.explain(
            "Select r.name From birds r, synonyms s Where r.name = s.bird_name"
        )
        assert "IndexNestedLoopJoin" in report2.physical

    def test_forced_sort_method(self):
        db = build_db()
        db.options.force_sort = "disk"
        db.options.enable_summary_indexes = False
        report = db.explain(
            "Select name From birds r Order By "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
        )
        assert "Sort[O:disk]" in report.physical or "disk" in report.physical

    def test_optimized_beats_unoptimized_cost(self):
        db = build_db()
        query = (
            "Select r.name From birds r, synonyms s "
            "Where r.name = s.bird_name And "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 5 "
            "Order By r.$.getSummaryObject('ClassBird1')."
            "getLabelValue('Disease')"
        )
        optimized = db.explain(query).estimated_cost
        db.options.enable_rules = False
        db.options.enable_summary_indexes = False
        db.options.force_join = "nloop"
        baseline = db.explain(query).estimated_cost
        assert optimized < baseline

    def test_equivalent_plans_same_results(self):
        """Plan-equivalence integration check: optimization must never
        change answers."""
        db = build_db()
        query = (
            "Select r.name From birds r, synonyms s "
            "Where r.name = s.bird_name And "
            "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 3 "
            "Order By r.name"
        )
        fast = db.sql(query).column("r.name")
        db.options.enable_rules = False
        db.options.enable_summary_indexes = False
        db.options.force_join = "nloop"
        slow = db.sql(query).column("r.name")
        assert fast == slow
