"""Text utilities shared by the mining algorithms.

Tokenization is deliberately simple (lowercase word extraction with a small
stop-word list) — the paper's annotations are short free-text notes, and the
downstream algorithms only need stable, deterministic features.
"""

from __future__ import annotations

import re
import zlib

import numpy as np

_WORD_RE = re.compile(r"[a-zA-Z][a-zA-Z']+")
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")

STOP_WORDS = frozenset(
    """a an and are as at be been but by for from had has have in is it its
    of on or that the their this to was were which will with not no they we
    you i he she his her our your these those there then than very can could
    would should may might must also into over under about after before
    during between both each few more most other some such only own same so
    too just once here when where why how all any nor if while do does did
    doing am being""".split()
)


def tokenize(text: str, drop_stop_words: bool = True) -> list[str]:
    """Lowercase word tokens of ``text``, optionally stop-word filtered."""
    tokens = [m.group(0).lower() for m in _WORD_RE.finditer(text)]
    if drop_stop_words:
        tokens = [t for t in tokens if t not in STOP_WORDS]
    return tokens


def sentences(text: str) -> list[str]:
    """Split ``text`` into sentences on terminal punctuation."""
    parts = [s.strip() for s in _SENTENCE_RE.split(text)]
    return [s for s in parts if s]


def _token_bucket(token: str, dim: int) -> int:
    """Stable hash bucket for ``token`` (crc32 so runs are reproducible)."""
    return zlib.crc32(token.encode("utf-8")) % dim


def hashed_tf_vector(tokens: list[str], dim: int = 64) -> np.ndarray:
    """Hashed term-frequency vector (the "hashing trick").

    Used by CluStream to embed annotation texts in a fixed-dimension space
    without maintaining a vocabulary.
    """
    vec = np.zeros(dim, dtype=np.float64)
    for token in tokens:
        vec[_token_bucket(token, dim)] += 1.0
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec /= norm
    return vec
