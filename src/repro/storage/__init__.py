"""Paged storage substrate: simulated disk, slotted pages, buffer pool,
record serialization, and heap files.

This package stands in for the PostgreSQL storage layer that the paper's
prototype runs on. Page I/Os are counted at the disk boundary so benchmarks
can report access-path costs that are robust to interpreter noise.
"""

from repro.storage.disk import DiskManager, IOStats
from repro.storage.page import PAGE_SIZE, SlottedPage
from repro.storage.buffer import BufferPool
from repro.storage.record import RecordCodec, ValueType
from repro.storage.heapfile import HeapFile, RID

__all__ = [
    "DiskManager",
    "IOStats",
    "PAGE_SIZE",
    "SlottedPage",
    "BufferPool",
    "RecordCodec",
    "ValueType",
    "HeapFile",
    "RID",
]
