"""Ablation — J implementation choices: block nested-loop vs index-based.

§5.2: "InsightNotes supports only two implementation choices for the J
operator, which are either a block nested-loop join, or an index-based
join"; §8 lists richer operator implementations as future work.  This
bench compares the two on a label-equality summary join where the inner
relation carries a Summary-BTree: the index variant probes per outer row
instead of evaluating the predicate on every pair.
"""

import random

import pytest

from repro.bench import FigureTable, fresh_database
from repro.bench.queries import CLASS_EXPR
from repro.workload.generator import WorkloadConfig, annotation_batch

_DBS: dict[tuple[int, int], object] = {}

QUERY = (
    "Select r.common_name, s.synonym From birds r, synonyms s "
    f"Where r.{CLASS_EXPR}('Disease') = s.{CLASS_EXPR}('Disease')"
)


def _joined_db(preset, density):
    key = (preset.num_birds, density)
    if key in _DBS:
        return _DBS[key]
    db = fresh_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", cell_fraction=0.0,
    )
    # Synonyms carries ClassBird1 too, with its own Summary-BTree — the
    # inner side the index-based J probes.
    db.manager.link("synonyms", "ClassBird1")
    rng = random.Random(77)
    config = WorkloadConfig(cell_fraction=0.0)
    for oid, _values in list(db.catalog.table("synonyms").scan()):
        db.add_annotations_bulk(
            annotation_batch(rng, oid, config, max(1, density // 5),
                             table="synonyms")
        )
    db.create_summary_index("synonyms", "ClassBird1")
    db.analyze("birds")
    db.analyze("synonyms")
    _DBS[key] = db
    return db


@pytest.mark.benchmark(group="ablation-summary-join")
@pytest.mark.parametrize("impl", ["J-NLoop", "J-Index"])
@pytest.mark.parametrize("density", [10, 50, 200])
def test_join_implementations(
    benchmark, case, impl, density, preset, figure_writer
):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = _joined_db(preset, density)
    db.options.force_join = "nloop" if impl == "J-NLoop" else "index"
    try:
        m = case(db, lambda: db.sql(QUERY), rounds=1)
    finally:
        db.options.force_join = None

    table = figure_writer.setdefault(
        "ablation_summary_join",
        FigureTable(
            "Ablation — J operator: block nested-loop vs Summary-BTree "
            "index probes",
            unit="ms",
        ),
    )
    table.add_measurement(impl, preset.label(density), m)
    active = [d for d in (10, 50, 200) if d in preset.densities]
    if len(table.cells) == 2 * len(active):
        table.note_ratio("J-NLoop", "J-Index",
                         "index probes beat pair evaluation")
