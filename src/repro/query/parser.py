"""Recursive-descent parser for the SQL subset.

Grammar sketch::

    statement   := select | explain | alter | zoom | create | insert
    explain     := EXPLAIN [ANALYZE] select
    select      := SELECT [DISTINCT] items FROM tables [WHERE expr]
                   [GROUP BY exprs] [ORDER BY expr [ASC|DESC], ...]
                   [LIMIT n]
    items       := item (',' item)*          item := '*' | expr [AS ident]
    tables      := tableref (',' tableref)* | tableref (JOIN tableref ON expr)*
    expr        := or_expr
    primary     := literal | columnref | summary_expr | agg | '(' expr ')'
    summary_expr:= [alias '.'] '$' ('.' ident '(' args ')')+

    alter       := ALTER TABLE ident (ADD [INDEXABLE] | DROP) ident
    zoom        := ZOOM IN ident number ident [string | number]
    annotate    := ANNOTATE ident number ['(' ident (',' ident)* ')'] string
    txn         := BEGIN [TRANSACTION] | COMMIT | ABORT | ROLLBACK
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.query.ast import (
    AbortStmt,
    AnnotateStmt,
    BeginStmt,
    CommitStmt,
    DeleteStmt,
    UpdateStmt,
    UdfCall,
    AggCall,
    ObjectFunc,
    AlterTableSummary,
    And,
    ColumnRef,
    Comparison,
    CreateTableStmt,
    ExplainStmt,
    Expr,
    FuncCall,
    InsertStmt,
    Literal,
    Not,
    Or,
    SelectItem,
    SelectStmt,
    Star,
    SummaryExpr,
    TableRef,
    ZoomIn,
)
from repro.query.lexer import Token, tokenize

_AGG_FUNCS = {"count", "sum", "avg", "min", "max"}


class Parser:
    def __init__(self, sql: str):
        self.tokens = tokenize(sql)
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, kind: str, value: object = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, got {got.value!r} at {got.pos}")
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in words

    # -- entry point ----------------------------------------------------------------

    def parse(self):
        token = self.peek()
        if token.kind != "keyword":
            raise ParseError(f"unexpected {token.value!r} at {token.pos}")
        stmt = {
            "select": self.parse_select,
            "alter": self.parse_alter,
            "zoom": self.parse_zoom,
            "create": self.parse_create,
            "insert": self.parse_insert,
            "delete": self.parse_delete,
            "update": self.parse_update,
            "explain": self.parse_explain,
            "annotate": self.parse_annotate,
            "begin": self.parse_begin,
            "commit": self.parse_commit,
            "abort": self.parse_abort,
            "rollback": self.parse_abort,
        }.get(token.value)
        if stmt is None:
            raise ParseError(f"unsupported statement {token.value!r}")
        result = stmt()
        self.accept("punct", ";")
        self.expect("eof")
        return result

    # -- EXPLAIN [ANALYZE] -------------------------------------------------------------

    def parse_explain(self) -> ExplainStmt:
        self.expect("keyword", "explain")
        analyze = self.accept("keyword", "analyze") is not None
        if not self.at_keyword("select"):
            got = self.peek()
            raise ParseError(
                f"EXPLAIN supports SELECT statements only, got {got.value!r}"
            )
        return ExplainStmt(self.parse_select(), analyze=analyze)

    # -- SELECT -----------------------------------------------------------------------

    def parse_select(self) -> SelectStmt:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        items = self.parse_select_items()
        self.expect("keyword", "from")
        tables = [self.parse_table_ref()]
        where_parts: list[Expr] = []
        while True:
            if self.accept("punct", ","):
                tables.append(self.parse_table_ref())
            elif self.at_keyword("join"):
                self.next()
                tables.append(self.parse_table_ref())
                self.expect("keyword", "on")
                where_parts.append(self.parse_expr())
            else:
                break
        if self.accept("keyword", "where"):
            where_parts.append(self.parse_expr())
        where: Expr | None = None
        if len(where_parts) == 1:
            where = where_parts[0]
        elif where_parts:
            where = And(tuple(where_parts))
        summary_filter = None
        if self.at_keyword("filter"):
            self.next()
            self.expect("keyword", "summaries")
            summary_filter = self.parse_expr()
        group_by: list[Expr] = []
        if self.at_keyword("group"):
            self.next()
            self.expect("keyword", "by")
            group_by.append(self.parse_expr())
            while self.accept("punct", ","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept("keyword", "having"):
            having = self.parse_expr()
        order_by: list[tuple[Expr, str]] = []
        if self.at_keyword("order"):
            self.next()
            self.expect("keyword", "by")
            order_by.append(self.parse_order_item())
            while self.accept("punct", ","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept("keyword", "limit"):
            limit = int(self.expect("number").value)
        return SelectStmt(
            items, tables, where, group_by, having=having,
            order_by=order_by, limit=limit,
            summary_filter=summary_filter, distinct=distinct,
        )

    def parse_select_items(self) -> list:
        items: list = [self.parse_select_item()]
        while self.accept("punct", ","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        if self.accept("punct", "*"):
            return Star(None)
        # alias.* form
        if (
            self.peek().kind == "ident"
            and self.peek(1).kind == "punct" and self.peek(1).value == "."
            and self.peek(2).kind == "punct" and self.peek(2).value == "*"
        ):
            alias = self.next().value
            self.next()
            self.next()
            return Star(str(alias))
        expr = self.parse_expr()
        alias = None
        if self.accept("keyword", "as"):
            alias = str(self.expect("ident").value)
        elif self.peek().kind == "ident":
            alias = str(self.next().value)
        return SelectItem(expr, alias)

    def parse_delete(self) -> DeleteStmt:
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        ref = self.parse_table_ref()
        where = None
        if self.accept("keyword", "where"):
            where = self.parse_expr()
        alias = ref.alias if ref.alias != ref.name else None
        return DeleteStmt(ref.name, alias=alias, where=where)

    def parse_update(self) -> UpdateStmt:
        self.expect("keyword", "update")
        ref = self.parse_table_ref()
        self.expect("keyword", "set")
        assignments = [self.parse_assignment()]
        while self.accept("punct", ","):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept("keyword", "where"):
            where = self.parse_expr()
        alias = ref.alias if ref.alias != ref.name else None
        return UpdateStmt(ref.name, tuple(assignments), alias=alias,
                          where=where)

    def parse_assignment(self) -> tuple[str, Expr]:
        column = str(self.expect("ident").value)
        token = self.next()
        if not (token.kind == "op" and token.value == "="):
            raise ParseError(f"expected '=' in SET, got {token.value!r}")
        return column, self.parse_expr()

    def parse_table_ref(self) -> TableRef:
        name = str(self.expect("ident").value)
        alias = name
        if self.accept("keyword", "as"):
            alias = str(self.expect("ident").value)
        elif self.peek().kind == "ident":
            alias = str(self.next().value)
        return TableRef(name, alias)

    def parse_order_item(self) -> tuple[Expr, str]:
        expr = self.parse_expr()
        direction = "ASC"
        if self.accept("keyword", "desc"):
            direction = "DESC"
        elif self.accept("keyword", "asc"):
            direction = "ASC"
        return expr, direction

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        items = [self.parse_and()]
        while self.accept("keyword", "or"):
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def parse_and(self) -> Expr:
        items = [self.parse_not()]
        while self.accept("keyword", "and"):
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(tuple(items))

    def parse_not(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_primary()
        token = self.peek()
        if token.kind == "op":
            op = str(self.next().value)
            right = self.parse_primary()
            return Comparison(op, left, right)
        if token.kind == "keyword" and token.value == "like":
            self.next()
            right = self.parse_primary()
            return Comparison("LIKE", left, right)
        if token.kind == "keyword" and token.value == "in":
            self.next()
            self.expect("punct", "[")
            lo = self.parse_primary()
            self.expect("punct", ",")
            hi = self.parse_primary()
            self.expect("punct", "]")
            # "expr IN [x, y]" sugar for a closed range (Figure 11's query).
            return And((Comparison(">=", left, lo), Comparison("<=", left, hi)))
        return left

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            return Literal(self.next().value)
        if token.kind == "string":
            return Literal(self.next().value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            self.next()
            return Literal(token.value == "true")
        if token.kind == "keyword" and token.value == "null":
            self.next()
            return Literal(None)
        if token.kind == "punct" and token.value == "(":
            self.next()
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if token.kind == "keyword" and token.value in _AGG_FUNCS:
            return self.parse_agg()
        if token.kind == "dollar":
            return self.parse_summary_chain(None)
        if token.kind == "ident":
            name = str(self.next().value)
            if self.peek().kind == "punct" and self.peek().value == "(":
                return self._parse_call(name)
            if self.peek().kind == "punct" and self.peek().value == ".":
                if self.peek(1).kind == "dollar":
                    self.next()  # '.'
                    return self.parse_summary_chain(name)
                self.next()  # '.'
                column = str(self.expect("ident").value)
                return ColumnRef(name, column)
            return ColumnRef(None, name)
        raise ParseError(f"unexpected {token.value!r} at {token.pos}")

    def parse_agg(self) -> AggCall:
        func = str(self.next().value).upper()
        self.expect("punct", "(")
        if self.accept("punct", "*"):
            self.expect("punct", ")")
            return AggCall(func, None)
        arg = self.parse_expr()
        self.expect("punct", ")")
        return AggCall(func, arg)

    def parse_summary_chain(self, alias: str | None) -> SummaryExpr:
        self.expect("dollar")
        chain: list[FuncCall] = []
        while self.peek().kind == "punct" and self.peek().value == ".":
            self.next()
            name_token = self.next()
            if name_token.kind not in ("ident", "keyword"):
                raise ParseError(
                    f"expected function name after '.', got {name_token.value!r}"
                )
            name = str(name_token.value)
            self.expect("punct", "(")
            args: list[object] = []
            if not (self.peek().kind == "punct" and self.peek().value == ")"):
                args.append(self.parse_call_arg())
                while self.accept("punct", ","):
                    args.append(self.parse_call_arg())
            self.expect("punct", ")")
            chain.append(FuncCall(name, tuple(args)))
        # An empty chain is the bare summary-set reference ``alias.$`` —
        # only meaningful as a UDF argument (validated by the binder).
        return SummaryExpr(alias, tuple(chain))

    def _parse_call(self, name: str) -> Expr:
        """``name(...)`` — an ObjectFunc when every argument is a bare
        literal (the FILTER SUMMARIES form), a UdfCall when any argument
        is an expression such as ``r.$`` (§3.2 black-box UDFs)."""
        self.expect("punct", "(")
        exprs: list[Expr] = []
        literal_only = True
        if not (self.peek().kind == "punct" and self.peek().value == ")"):
            while True:
                arg = self.parse_expr()
                exprs.append(arg)
                if not isinstance(arg, Literal):
                    literal_only = False
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        if literal_only:
            return ObjectFunc(name, tuple(e.value for e in exprs))
        return UdfCall(name, tuple(exprs))

    def parse_call_arg(self) -> object:
        token = self.next()
        if token.kind in ("number", "string"):
            return token.value
        raise ParseError(
            f"summary-function arguments must be literals, got {token.value!r}"
        )

    # -- DDL / commands --------------------------------------------------------------------

    def parse_alter(self) -> AlterTableSummary:
        self.expect("keyword", "alter")
        self.expect("keyword", "table")
        table = str(self.expect("ident").value)
        if self.accept("keyword", "add"):
            indexable = self.accept("keyword", "indexable") is not None
            instance = str(self.expect("ident").value)
            return AlterTableSummary(table, "add", instance, indexable)
        self.expect("keyword", "drop")
        instance = str(self.expect("ident").value)
        return AlterTableSummary(table, "drop", instance)

    def parse_zoom(self) -> ZoomIn:
        self.expect("keyword", "zoom")
        self.expect("keyword", "in")
        table = str(self.expect("ident").value)
        oid = int(self.expect("number").value)
        instance = str(self.expect("ident").value)
        selector: str | int | None = None
        token = self.peek()
        if token.kind == "string":
            selector = str(self.next().value)
        elif token.kind == "number":
            selector = int(self.next().value)
        elif token.kind == "ident":
            selector = str(self.next().value)
        return ZoomIn(table, oid, instance, selector)

    def parse_create(self) -> CreateTableStmt:
        self.expect("keyword", "create")
        self.expect("keyword", "table")
        name = str(self.expect("ident").value)
        self.expect("punct", "(")
        columns: list[tuple[str, str]] = []
        while True:
            col = str(self.expect("ident").value)
            type_token = self.next()
            if type_token.kind != "keyword" or type_token.value not in (
                "int", "float", "text", "bool",
            ):
                raise ParseError(f"unknown column type {type_token.value!r}")
            columns.append((col, str(type_token.value)))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ")")
        return CreateTableStmt(name, columns)

    def parse_insert(self) -> InsertStmt:
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        table = str(self.expect("ident").value)
        columns = None
        if self.accept("punct", "("):
            columns = [str(self.expect("ident").value)]
            while self.accept("punct", ","):
                columns.append(str(self.expect("ident").value))
            self.expect("punct", ")")
        self.expect("keyword", "values")
        rows: list[list[object]] = []
        while True:
            self.expect("punct", "(")
            row: list[object] = [self.parse_value()]
            while self.accept("punct", ","):
                row.append(self.parse_value())
            self.expect("punct", ")")
            rows.append(row)
            if not self.accept("punct", ","):
                break
        return InsertStmt(table, columns, rows)

    def parse_annotate(self) -> AnnotateStmt:
        self.expect("keyword", "annotate")
        table = str(self.expect("ident").value)
        oid = int(self.expect("number").value)
        columns: list[str] = []
        if self.accept("punct", "("):
            columns.append(str(self.expect("ident").value))
            while self.accept("punct", ","):
                columns.append(str(self.expect("ident").value))
            self.expect("punct", ")")
        text = str(self.expect("string").value)
        return AnnotateStmt(table, oid, text, tuple(columns))

    # -- transactions ----------------------------------------------------------------------

    def parse_begin(self) -> BeginStmt:
        self.expect("keyword", "begin")
        self.accept("keyword", "transaction")
        return BeginStmt()

    def parse_commit(self) -> CommitStmt:
        self.expect("keyword", "commit")
        self.accept("keyword", "transaction")
        return CommitStmt()

    def parse_abort(self) -> AbortStmt:
        self.next()  # ABORT or ROLLBACK
        self.accept("keyword", "transaction")
        return AbortStmt()

    def parse_value(self) -> object:
        token = self.next()
        if token.kind in ("number", "string"):
            return token.value
        if token.kind == "keyword" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind == "keyword" and token.value == "null":
            return None
        raise ParseError(f"expected a literal, got {token.value!r}")


def parse_sql(sql: str):
    """Parse one SQL statement into its AST."""
    return Parser(sql).parse()
