"""Fault schedules.

A :class:`FaultPlan` maps (operation kind, operation index) to a
:class:`Fault`. Indexes are 0-based and counted per operation kind by the
:class:`~repro.faults.disk.FaultyDiskManager` — "fail the 3rd write" is
``plan.fail_write(at=2)``. A fault may recur with a ``period`` (fire at
``at``, ``at + period``, ``at + 2*period``, …), which is how the
fuzz-under-fault suites sprinkle transient errors through a query's reads.

Everything random (torn-write lengths, bit-flip positions) comes from one
``random.Random(seed)``, so a failing schedule is reproducible from its
seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import StorageError


class FaultKind:
    """The four injected fault classes."""

    #: The operation fails and the disk is dead from then on (crash).
    FAIL_STOP = "fail_stop"
    #: The operation fails once; the disk stays usable (retryable).
    TRANSIENT = "transient"
    #: Only a prefix of the page reaches disk; the rest keeps its old bytes.
    TORN_WRITE = "torn_write"
    #: One or more bits of the page are silently inverted.
    BIT_FLIP = "bit_flip"

    ALL = (FAIL_STOP, TRANSIENT, TORN_WRITE, BIT_FLIP)


#: Operations a fault can target: page reads/writes on the disk manager,
#: and record appends / fsyncs on a WAL device (``repro.wal.device``).
FAULT_OPS = ("read", "write", "append", "sync")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``op`` is one of :data:`FAULT_OPS`; ``at`` is the 0-based operation
    index at which the fault fires; a non-None ``period`` makes it recur
    every ``period`` operations after ``at``.
    """

    kind: str
    op: str
    at: int
    period: int | None = None
    #: Torn writes: bytes of the new image that reach disk (None = seeded).
    torn_bytes: int | None = None
    #: Bit flips: number of bits to invert (positions are seeded).
    bits: int = 1
    #: Torn writes: whether the disk fail-stops after the partial write
    #: (crash semantics). False models silent firmware-level tearing.
    crash: bool = True
    #: Firing budget: total times this fault may fire (None = unlimited).
    #: Consumed through :meth:`FaultPlan.consume` — the decrement happens
    #: *before* the caller raises, so a raised fault can never be
    #: re-counted against the budget (exception safety).
    times: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise StorageError(f"unknown fault kind {self.kind!r}")
        if self.op not in FAULT_OPS:
            raise StorageError(
                f"fault op must be one of {FAULT_OPS}, not {self.op!r}"
            )
        if self.kind == FaultKind.TORN_WRITE and self.op not in ("write", "sync"):
            raise StorageError("torn faults apply to writes and syncs only")
        if self.kind == FaultKind.BIT_FLIP and self.op in ("append", "sync"):
            raise StorageError(
                "bit flips target pages; frame the WAL fault as a torn sync"
            )
        if self.at < 0 or (self.period is not None and self.period < 1):
            raise StorageError(f"bad fault schedule: at={self.at} period={self.period}")
        if self.times is not None and self.times < 1:
            raise StorageError(f"bad fault budget: times={self.times}")

    def fires_at(self, index: int) -> bool:
        if index == self.at:
            return True
        if self.period is None:
            return False
        return index > self.at and (index - self.at) % self.period == 0


class FaultPlan:
    """A deterministic, seeded schedule of disk faults."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)
        self.faults: list[Fault] = []
        #: remaining firing budget per fault position (populated lazily for
        #: faults scheduled with ``times=``; Fault itself is frozen).
        self._budget: dict[int, int] = {}

    def schedule(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    # -- builder shorthands (all chainable) ---------------------------------

    def fail_read(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th read (0-based)."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "read", at))

    def fail_write(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th write (0-based)."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "write", at))

    def transient_read(self, at: int, period: int | None = None,
                       times: int | None = None) -> "FaultPlan":
        """Transient error on the ``at``-th read, recurring every ``period``;
        ``times`` caps the total number of firings."""
        return self.schedule(
            Fault(FaultKind.TRANSIENT, "read", at, period, times=times)
        )

    def transient_write(self, at: int, period: int | None = None,
                        times: int | None = None) -> "FaultPlan":
        return self.schedule(
            Fault(FaultKind.TRANSIENT, "write", at, period, times=times)
        )

    def torn_write(
        self, at: int, torn_bytes: int | None = None, crash: bool = True
    ) -> "FaultPlan":
        """Tear the ``at``-th write: only a prefix of the page lands."""
        return self.schedule(
            Fault(FaultKind.TORN_WRITE, "write", at, torn_bytes=torn_bytes,
                  crash=crash)
        )

    def bit_flip_write(self, at: int, bits: int = 1) -> "FaultPlan":
        """Silently invert ``bits`` seeded bit positions of the ``at``-th write."""
        return self.schedule(Fault(FaultKind.BIT_FLIP, "write", at, bits=bits))

    def bit_flip_read(self, at: int, bits: int = 1) -> "FaultPlan":
        """Corrupt the copy returned by the ``at``-th read (transient rot)."""
        return self.schedule(Fault(FaultKind.BIT_FLIP, "read", at, bits=bits))

    # -- WAL-device faults (repro.wal.device) --------------------------------

    def fail_append(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th WAL record append (0-based)."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "append", at))

    def fail_sync(self, at: int) -> "FaultPlan":
        """Fail-stop on the ``at``-th WAL fsync: nothing pending lands."""
        return self.schedule(Fault(FaultKind.FAIL_STOP, "sync", at))

    def transient_sync(self, at: int, period: int | None = None) -> "FaultPlan":
        """Transient error on the ``at``-th fsync; a retry may succeed."""
        return self.schedule(Fault(FaultKind.TRANSIENT, "sync", at, period))

    def torn_sync(self, at: int, torn_bytes: int | None = None) -> "FaultPlan":
        """Tear the ``at``-th fsync: a prefix of the pending bytes becomes
        durable, then the device fail-stops (power loss mid-fsync)."""
        return self.schedule(
            Fault(FaultKind.TORN_WRITE, "sync", at, torn_bytes=torn_bytes)
        )

    # -- matching -----------------------------------------------------------

    def match(self, op: str, index: int) -> Fault | None:
        """First scheduled fault firing for the ``index``-th ``op``.

        Pure lookup: budgets (``times=``) are not consulted or decremented.
        The injecting disk managers use :meth:`consume` instead.
        """
        for fault in self.faults:
            if fault.op == op and fault.fires_at(index):
                return fault
        return None

    def consume(self, op: str, index: int) -> Fault | None:
        """Like :meth:`match`, but honours and decrements firing budgets.

        The budget decrement happens here — *before* the caller raises the
        injected error — so the accounting is exception-safe: a fault that
        fires is charged exactly once no matter how the raise propagates.
        Exhausted faults stop matching (later scheduled faults may still
        fire for the same operation index).
        """
        for position, fault in enumerate(self.faults):
            if fault.op != op or not fault.fires_at(index):
                continue
            if fault.times is not None:
                remaining = self._budget.get(position, fault.times)
                if remaining <= 0:
                    continue
                self._budget[position] = remaining - 1
            return fault
        return None

    def remaining(self, position: int) -> int | None:
        """Remaining firing budget of the ``position``-th scheduled fault
        (None for unbudgeted faults)."""
        fault = self.faults[position]
        if fault.times is None:
            return None
        return self._budget.get(position, fault.times)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, faults={self.faults!r})"
