"""Execution resilience: retry + circuit breaker, deadlines/cancellation,
and degraded-mode planning (DESIGN.md §5e).

The layer threads through the whole stack:

* :class:`DiskGuard` (``pool.guard``) wraps every page I/O crossing the
  pool↔disk boundary in a seeded bounded-backoff :class:`RetryPolicy`
  and a per-device :class:`CircuitBreaker`;
* :class:`ExecutionContext` carries one statement's deadline and cancel
  flag, checked at batch boundaries in every physical operator;
* :class:`AccessPathHealth` records quarantined derived access paths so
  the planner degrades onto heap scans instead of failing.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
)
from repro.resilience.context import BATCH_ROWS, ExecutionContext
from repro.resilience.guard import DiskGuard
from repro.resilience.health import PATH_KINDS, AccessPathHealth
from repro.resilience.retry import RetryPolicy, is_transient

__all__ = [
    "AccessPathHealth",
    "BATCH_ROWS",
    "CLOSED",
    "CircuitBreaker",
    "DiskGuard",
    "ExecutionContext",
    "HALF_OPEN",
    "OPEN",
    "PATH_KINDS",
    "RetryPolicy",
    "STATE_CODES",
    "is_transient",
]
