"""Multi-level (hierarchical) summarization — the paper's stated future
work (§8: "enable multi-level (hierarchical) summarization, and extend the
querying mechanisms over the multi-level model").

A :class:`LabelTree` arranges a classifier instance's labels into a
hierarchy: the leaves are the Naive-Bayes classes every annotation is
assigned to, inner nodes are roll-up categories.  Example::

    tree = LabelTree({
        "Health":  {"Disease": {}, "Injury": {}},
        "Ecology": {"Behavior": {}, "Habitat": {}},
        "Other":   {},
    })

A :class:`HierarchicalClassifierInstance` stores exactly what a flat
classifier stores — leaf-label counts in the summary objects, leaf keys in
the Summary-BTree — so storage, maintenance, and index structures are
untouched.  The hierarchy changes the *query surface*:

* ``getLabelValue('Health')`` in any predicate/sort resolves an inner node
  by summing its subtree's leaf counts (dispatched through the instance
  registry at evaluation time),
* ``ZOOM IN`` on an inner node unions the children's raw annotations —
  zooming one level at a time walks the hierarchy down to the raw text,
* the Summary-BTree remains valid for *leaf* predicates only; the planner
  checks leaf membership before matching an index (an inner-node predicate
  silently falls back to a scan).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SummaryError
from repro.summaries.instances import ClassifierInstance
from repro.summaries.objects import ClassifierObject


class LabelTree:
    """An immutable multi-level label hierarchy.

    Built from nested dicts (``{} `` marks a leaf).  Node names must be
    unique across the whole tree — they share one namespace in queries.
    """

    def __init__(self, spec: dict[str, dict]):
        if not spec:
            raise SummaryError("label tree needs at least one node")
        self._children: dict[str, list[str]] = {}
        self._parent: dict[str, str | None] = {}
        self._roots: list[str] = []
        self._walk_spec(spec, None)

    def _walk_spec(self, spec: dict[str, dict], parent: str | None) -> None:
        for name, sub in spec.items():
            if name in self._parent:
                raise SummaryError(f"duplicate label {name!r} in hierarchy")
            self._parent[name] = parent
            self._children[name] = []
            if parent is None:
                self._roots.append(name)
            else:
                self._children[parent].append(name)
            if sub:
                self._walk_spec(sub, name)

    # -- structure -------------------------------------------------------------

    @property
    def roots(self) -> list[str]:
        return list(self._roots)

    def nodes(self) -> list[str]:
        return list(self._parent)

    def leaves(self, node: str | None = None) -> list[str]:
        """Leaf labels under ``node`` (whole tree when None), in spec
        order — these are the classifier's actual classes."""
        starts = [node] if node is not None else self._roots
        out: list[str] = []
        stack = list(reversed(starts))
        while stack:
            current = stack.pop()
            children = self._children.get(current)
            if children is None:
                raise SummaryError(f"no label {current!r} in hierarchy")
            if not children:
                out.append(current)
            else:
                stack.extend(reversed(children))
        return out

    def children(self, node: str) -> list[str]:
        if node not in self._children:
            raise SummaryError(f"no label {node!r} in hierarchy")
        return list(self._children[node])

    def parent(self, node: str) -> str | None:
        if node not in self._parent:
            raise SummaryError(f"no label {node!r} in hierarchy")
        return self._parent[node]

    def is_leaf(self, node: str) -> bool:
        return node in self._children and not self._children[node]

    def __contains__(self, node: str) -> bool:
        return node in self._parent

    def level_of(self, node: str) -> int:
        """Depth from the root level (roots are level 0)."""
        depth = 0
        current = self.parent(node)
        while current is not None:
            depth += 1
            current = self._parent[current]
        return depth

    def path_to(self, node: str) -> list[str]:
        """Root-to-node path, e.g. ['Health', 'Disease']."""
        path = [node]
        current = self.parent(node)
        while current is not None:
            path.append(current)
            current = self._parent[current]
        return list(reversed(path))

    def to_spec(self) -> dict[str, dict]:
        """The nested-dict form the tree was built from."""

        def build(name: str) -> dict:
            return {c: build(c) for c in self._children[name]}

        return {r: build(r) for r in self._roots}


@dataclass
class HierarchicalClassifierInstance(ClassifierInstance):
    """A classifier instance whose labels form a multi-level hierarchy.

    The Naive Bayes model classifies to *leaves*; every non-leaf query
    surface (predicates, sorts, zooms) rolls leaf counts/elements up the
    tree at evaluation time.
    """

    tree: LabelTree = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.tree is None:
            raise SummaryError(
                f"hierarchical instance {self.name!r} needs a LabelTree"
            )
        if not self.labels:
            self.labels = self.tree.leaves()
        elif self.labels != self.tree.leaves():
            raise SummaryError(
                "labels must be the hierarchy's leaves, in order"
            )
        super().__post_init__()

    # -- roll-up query surface ---------------------------------------------------

    def resolve_value(self, obj: ClassifierObject, node: str) -> int:
        """Count for any hierarchy node: a leaf's stored count, or the sum
        over an inner node's subtree leaves."""
        if self.tree.is_leaf(node) if node in self.tree else False:
            return obj.get_label_value(node)
        if node not in self.tree:
            raise SummaryError(
                f"no label {node!r} in hierarchical instance {self.name!r}"
            )
        return sum(obj.get_label_value(leaf) for leaf in self.tree.leaves(node))

    def resolve_elements(self, obj: ClassifierObject, node: str) -> list[int]:
        """Contributing annotation ids for any node (zoom-in support)."""
        if node not in self.tree:
            raise SummaryError(
                f"no label {node!r} in hierarchical instance {self.name!r}"
            )
        ids: set[int] = set()
        for leaf in self.tree.leaves(node):
            ids |= obj.label_elements.get(leaf, set())
        return sorted(ids)

    def rollup(self, obj: ClassifierObject, level: int = 0) -> list[tuple[str, int]]:
        """Rep[]-style view at one hierarchy level: [(node, count)] for
        every node whose depth is ``level`` (deeper leaves attach to their
        closest ancestor at or above the level)."""
        out: list[tuple[str, int]] = []
        frontier = [(r, 0) for r in self.tree.roots]
        while frontier:
            node, depth = frontier.pop(0)
            if depth == level or self.tree.is_leaf(node):
                out.append((node, self.resolve_value(obj, node)))
            else:
                frontier.extend(
                    (c, depth + 1) for c in self.tree.children(node)
                )
        return out
