"""System catalog: the registry of user tables and their metadata."""

from __future__ import annotations

from repro.catalog.schema import Schema
from repro.catalog.table import Table
from repro.errors import CatalogError
from repro.storage.buffer import BufferPool


class Catalog:
    """Registry of tables sharing one buffer pool."""

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema) -> Table:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema, self.pool)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        table = self._tables.pop(key)
        table.heap.drop()

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]
