"""Self-healing repair of annotation indexes and derived structures.

The repair contract that makes this possible is a data-layout property the
engine has maintained all along: the **heaps are authoritative** and every
index is *derived* from them —

* a user table's rows live in its heap; the OID index is the only holder
  of OID assignments (so it is pruned/salvaged, not conjured), and every
  secondary index is a pure function of (heap, OID index);
* summary rows are self-describing (each serialized object carries its
  ``tuple_id``), so a SummaryStorage's OID index *is* fully rebuildable;
* the Summary-BTree (keys *and* backward pointers), the baseline
  normalized replica, the trigram keyword index, the normalized snippet
  replicas, and the optimizer statistics are all pure functions of the
  de-normalized summary storage + the annotation store.

:class:`RepairManager` runs the pipeline::

    audit -> salvage pages -> reindex heaps -> clean summary storage
          -> rebuild derived structures -> re-analyze -> audit again

and reports whether the second audit **converged** (came back clean).
A database whose first audit is already clean is returned untouched.

What repair *cannot* restore: records on quarantined (CRC-failing,
non-resident) pages, heap records whose OID mapping was lost, and
annotations that vanished from the store — those are removed and counted,
never guessed at. Crash-consistency is the WAL's job
(:mod:`repro.wal`); repair's job is converging to a *consistent* state
after media corruption, at the cost of the damaged data itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.integrity import IntegrityChecker, IntegrityReport
from repro.errors import ReproError
from repro.storage.page import SlottedPage, stamp_checksum, verify_checksum


@dataclass(frozen=True)
class RepairAction:
    """One repair step that was actually taken."""

    #: Which structure ("page 12", "table birds", "summary index …").
    location: str
    #: Action class ("heal-page", "quarantine-page", "reindex",
    #: "rebuild", "drop-orphan-row", "strip-dangling-elements", …).
    action: str
    #: Human-readable specifics.
    detail: str

    def __str__(self) -> str:
        return f"[{self.location}] {self.action}: {self.detail}"


@dataclass
class RepairReport:
    """Outcome of one :meth:`RepairManager.run`."""

    before: IntegrityReport
    after: IntegrityReport | None = None
    actions: list[RepairAction] = field(default_factory=list)
    healed_pages: list[int] = field(default_factory=list)
    quarantined_pages: list[int] = field(default_factory=list)
    #: OID-index entries dropped because their record is gone/undecodable.
    pruned_entries: int = 0
    #: heap records removed (unmapped, undecodable, duplicate, orphaned).
    salvaged_records: int = 0
    #: derived structures rebuilt from scratch.
    structures_rebuilt: int = 0

    @property
    def converged(self) -> bool:
        """True when the closing audit (or, for a database that needed no
        repair, the opening one) found zero violations."""
        return self.after.ok if self.after is not None else self.before.ok

    @property
    def clean_before(self) -> bool:
        return self.before.ok

    def __str__(self) -> str:
        if self.clean_before:
            return "repair: nothing to do (database is clean)"
        status = "converged" if self.converged else "NOT converged"
        lines = [
            f"repair: {status} — {len(self.before.violations)} violation(s) "
            f"before, "
            f"{len(self.after.violations) if self.after else 0} after; "
            f"{len(self.healed_pages)} page(s) healed, "
            f"{len(self.quarantined_pages)} quarantined, "
            f"{self.pruned_entries} index entries pruned, "
            f"{self.salvaged_records} records salvaged, "
            f"{self.structures_rebuilt} structures rebuilt"
        ]
        lines.extend(str(a) for a in self.actions)
        if self.after is not None and not self.after.ok:
            lines.append("-- remaining violations --")
            lines.extend(str(v) for v in self.after.violations)
        return "\n".join(lines)


class RepairManager:
    """Runs the salvage-and-rebuild pipeline against one live Database."""

    def __init__(self, db):
        self.db = db

    def run(self) -> RepairReport:
        report = RepairReport(before=IntegrityChecker(self.db).run())
        if report.before.ok:
            return report
        self._salvage_pages(report)
        self._reindex_tables(report)
        self._repair_storages(report)
        self._rebuild_derived(report)
        self._refresh_statistics(report)
        cache = getattr(self.db.manager, "cache", None)
        if cache is not None:
            # Repair rewrites storage rows directly (and may quarantine the
            # pages under them): stale every cached summary set.
            cache.bump_all("repair")
        report.after = IntegrityChecker(self.db).run()
        health = getattr(self.db, "health", None)
        if health is not None and report.converged:
            # Every derived structure was just rebuilt from the
            # authoritative heaps and the closing audit came back clean:
            # un-quarantine everything so the planner stops degrading.
            health.restore_all()
        return report

    # -- phase 1: physical salvage -------------------------------------------

    def _salvage_pages(self, report: RepairReport) -> None:
        """Heal or quarantine every checksum-failing heap page.

        A page whose on-disk image fails its CRC but which is still
        resident in the pool is *healed*: the in-memory frame is the last
        good copy, so it is written back (through the pool when dirty, so
        log-before-data still holds). A non-resident corrupt page has no
        good copy anywhere — it is *quarantined*: replaced by a fresh
        empty slotted page, and its records are gone (the reindex phase
        prunes every pointer that led into it).
        """
        pool, disk = self.db.pool, self.db.disk
        guard = getattr(pool, "guard", None)
        for page_id in sorted(pool.protected_pages):
            if guard is None:
                data = disk.read_page(page_id)
            else:
                # Retried like any pool read: a transient device error
                # during salvage must not quarantine a healthy page.
                data = guard.read_page(disk, page_id)
            if not any(data) or verify_checksum(data):
                continue
            frame = pool._frames.get(page_id)
            if frame is not None:
                if frame.dirty:
                    pool.flush_page(page_id)
                else:
                    stamp_checksum(frame.data)
                    if guard is None:
                        disk.write_page(page_id, frame.data)
                    else:
                        guard.write_page(disk, page_id, frame.data)
                report.healed_pages.append(page_id)
                report.actions.append(RepairAction(
                    f"page {page_id}", "heal-page",
                    "rewrote corrupt on-disk image from the resident frame",
                ))
            else:
                fresh = SlottedPage(page_size=disk.page_size)
                stamp_checksum(fresh.data)
                if guard is None:
                    disk.write_page(page_id, fresh.data)
                else:
                    guard.write_page(disk, page_id, fresh.data)
                report.quarantined_pages.append(page_id)
                report.actions.append(RepairAction(
                    f"page {page_id}", "quarantine-page",
                    "no clean copy exists; replaced with an empty page "
                    "(its records are lost)",
                ))

    # -- phase 2: heap + OID-index pairs ---------------------------------------

    def _reindex_tables(self, report: RepairReport) -> None:
        tables = [(f"table {name}", table)
                  for name, table in self.db.catalog._tables.items()]
        tables.append(("annotation store", self.db.manager.annotations._table))
        # Reindexing can prune or salvage annotation rows underneath the
        # store's raw-text cache.
        self.db.manager.annotations.invalidate_texts()
        for location, table in tables:
            stats = table.reindex()
            report.pruned_entries += stats["pruned"]
            report.salvaged_records += stats["salvaged"]
            report.structures_rebuilt += 1
            if stats["pruned"] or stats["salvaged"]:
                report.actions.append(RepairAction(
                    location, "reindex",
                    f"kept {stats['kept']} rows, pruned {stats['pruned']} "
                    f"index entries, salvaged {stats['salvaged']} records",
                ))

    # -- phase 3: summary storage ------------------------------------------------

    def _repair_storages(self, report: RepairReport) -> None:
        """Make every SummaryStorage internally consistent and consistent
        with its data table and the annotation store: rebuild the OID
        index from the self-describing rows, drop orphan rows (their data
        tuple is gone), and strip Elements[][] references to annotations
        that no longer exist."""
        manager = self.db.manager
        known_anns = {ann.ann_id for ann in manager.annotations.scan()}
        for table_name, storage in manager._storages.items():
            location = f"summary storage {table_name}"
            stats = storage.rebuild_oid_index()
            report.salvaged_records += stats["salvaged"]
            report.structures_rebuilt += 1
            if stats["salvaged"]:
                report.actions.append(RepairAction(
                    location, "rebuild-oid-index",
                    f"kept {stats['kept']} rows, salvaged "
                    f"{stats['salvaged']}",
                ))
            table_oids = None
            if self.db.catalog.has_table(table_name):
                table = self.db.catalog.table(table_name)
                table_oids = {oid for oid, _ in table.scan()}
            orphans = 0
            stripped = 0
            for oid, objects in list(storage.scan()):
                if table_oids is not None and oid not in table_oids:
                    storage.delete(oid)
                    for name in objects:
                        manager._clusterers.pop((table_name, oid, name), None)
                    orphans += 1
                    continue
                changed = False
                for obj in objects.values():
                    missing = obj.all_annotation_ids() - known_anns
                    if missing:
                        obj.remove_annotations(missing)
                        stripped += len(missing)
                        changed = True
                if changed:
                    storage.put(oid, objects)
            report.salvaged_records += orphans
            if orphans:
                report.actions.append(RepairAction(
                    location, "drop-orphan-rows",
                    f"removed {orphans} summary row(s) whose data tuple "
                    "is gone",
                ))
            if stripped:
                report.actions.append(RepairAction(
                    location, "strip-dangling-elements",
                    f"removed {stripped} reference(s) to missing "
                    "annotations",
                ))

    # -- phase 4: derived structures ---------------------------------------------

    def _rebuild_derived(self, report: RepairReport) -> None:
        db = self.db
        jobs = [
            (f"summary index {t}.{i}", idx, lambda idx=idx: idx.rebuild())
            for (t, i), idx in db.summary_indexes.items()
        ]
        jobs += [
            (f"baseline index {t}.{i}", idx,
             lambda idx=idx, t=t: idx.rebuild(db.manager.storage_for(t)))
            for (t, i), idx in db.baseline_indexes.items()
        ]
        jobs += [
            (f"keyword index {t}.{i}", idx,
             lambda idx=idx, t=t: idx.rebuild(db.manager.storage_for(t)))
            for (t, i), idx in db.keyword_indexes.items()
        ]
        jobs += [
            (f"replica {t}.{i}", idx,
             lambda idx=idx, t=t: idx.rebuild(db.manager.storage_for(t)))
            for (t, i), idx in db.normalized_replicas.items()
        ]
        for location, _index, rebuild in jobs:
            entries = rebuild()
            report.structures_rebuilt += 1
            report.actions.append(RepairAction(
                location, "rebuild",
                f"re-derived from summary storage ({entries} entries)",
            ))

    # -- phase 5: statistics -------------------------------------------------------

    def _refresh_statistics(self, report: RepairReport) -> None:
        for name in self.db.catalog.table_names():
            try:
                self.db.statistics.analyze(name)
            except ReproError:
                self.db.statistics.mark_stale(name)
