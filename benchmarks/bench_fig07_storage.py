"""Figure 7 — storage overhead of the two indexing schemes.

Paper: the Baseline scheme replicates the summary objects in normalized
form (≈2× storage); the Summary-BTree scheme indexes the de-normalized
storage directly, saving up to 65%, and the overhead stays flat as the
raw-annotation count grows (summary size is density-independent).
"""

import pytest

from repro.bench import FigureTable, cached_database

PAGE_KB = 8  # DiskManager's 8 KiB pages


def _schemes(db):
    """Pages each scheme adds on top of the shared de-normalized
    R_SummaryStorage (the paper's "storage overhead" y-axis): the
    Summary-BTree adds only its index nodes; the Baseline adds a full
    normalized replica of the classifier primitives plus its B-Trees."""
    summary_index = db.summary_indexes[("birds", "ClassBird1")]
    baseline_index = db.baseline_indexes[("birds", "ClassBird1")]
    return {
        "Summary-BTree": summary_index.pages_used(),
        "Baseline": baseline_index.pages_used(),
    }


@pytest.mark.benchmark(group="fig07-storage")
@pytest.mark.parametrize("density", [10, 25, 50, 100, 200])
def test_storage_overhead(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both",
    )
    pages = benchmark.pedantic(lambda: _schemes(db), rounds=1, iterations=1)

    table = figure_writer.setdefault(
        "fig07_storage",
        FigureTable("Figure 7 — storage overhead", unit="KB"),
    )
    x = preset.label(density)
    for scheme, page_count in pages.items():
        table.add(scheme, x, page_count * PAGE_KB)
    if density == max(d for d in preset.densities):
        saved = 1 - table.mean_ratio("Summary-BTree", "Baseline")
        table.note(
            f"Summary-BTree scheme saves {saved:.0%} of Baseline storage"
            "  [paper: up to 65%]"
        )
        first, last = table.x_order[0], table.x_order[-1]
        drift = (
            table.value("Summary-BTree", last)
            / max(table.value("Summary-BTree", first), 1e-9)
        )
        table.note(
            f"Summary-BTree storage grows only {drift:.2f}x across the "
            "sweep  [paper: almost fixed]"
        )
