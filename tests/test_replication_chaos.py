"""Replication chaos battery: crash the primary everywhere, storm the
link, and check the replica lands on exactly the right bytes.

Three escalating layers:

* **The crash matrix** — the primary is killed at *every* WAL append and
  fsync index of the mixed crash-matrix workload (plus torn syncs).  The
  surviving durable bytes are the stream a replica would have received,
  so feeding them to a :class:`~repro.replication.applier.WALApplier`
  must converge to a state **identical to a crash-recovered primary**
  over the same bytes, and inside the acked-prefix oracle window.  This
  is the strongest statement the design makes: replication *is* recovery,
  continuously.
* **The seeded network storm** — a real primary + replica pair with the
  full :class:`~repro.faults.network.NetworkFaultPlan` storm (resets,
  stalls, garbled and partial frames) injected on the primary's sockets
  while writes flow.  The link must reconnect-and-resume through it,
  applying every record exactly once, and the replica must converge to
  the primary's state with its health endpoint still answering.
* **The live kill** — the primary's WAL device fail-stops mid-ingest
  under a real served pair; the replica must converge to exactly the
  durable prefix (byte-compared against a recovered primary), promote,
  and take writes.

A failing seed reproduces from ``REPRO_FAULT_SEED`` alone, same as the
server chaos battery.
"""

from __future__ import annotations

import time

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import InjectedFaultError
from repro.faults import FaultPlan
from repro.replication import ReplicationEndpoint, WALApplier
from repro.resilience import RetryPolicy
from repro.server import QueryClient
from repro.storage.record import ValueType
from repro.wal.device import MemoryWALDevice
from tests.test_crash_matrix import (
    crash_run,
    db_state,
    oracle_states,
    recover_state,
    wal_script,
)
from tests.test_network_chaos import SEEDS, chaos_plan
from tests.test_replication import ReplicaHarness, table_rows
from tests.test_server import ServerHarness, wait_for


# ---------------------------------------------------------------------------
# layer 1: the full crash matrix, replayed through the applier
# ---------------------------------------------------------------------------

class TestPrimaryCrashMatrix:
    """Kill the primary at every WAL I/O index; the durable bytes fed to
    a fresh applier must equal a recovered primary, record for record."""

    @classmethod
    def setup_class(cls):
        cls.oracle = oracle_states()
        probe = MemoryWALDevice()
        db = Database(buffer_pages=32)
        db.attach_wal(probe)
        for statement in wal_script():
            statement(db)
        cls.total_appends = probe.append_ops
        cls.total_syncs = probe.sync_ops
        assert cls.total_appends >= len(wal_script())

    def check(self, device, acked, *, chunk: int | None = None):
        stream = device.durable()
        replica = WALApplier(Database(buffer_pages=32), 0)
        if chunk is None:
            replica.feed(stream)
        else:
            # Chunked delivery with a reconnect every third poll — the
            # shape a flaky link actually produces (including its
            # window-doubling when a frame outgrows the poll budget).
            polls = 0
            window = chunk
            while replica.fetch_lsn < len(stream):
                polls += 1
                if polls % 3 == 0:
                    replica.reset_to_ack()
                fed = replica.feed(
                    stream[replica.fetch_lsn:replica.fetch_lsn + window]
                )
                if fed.parsed_bytes == 0:
                    if replica.fetch_lsn + window >= len(stream):
                        break  # torn tail: nothing more can ever parse
                    window *= 2
                else:
                    window = chunk
        recovered, report = recover_state(device)
        state = db_state(replica.db)
        assert state == recovered, (
            f"replica diverges from recovered primary after {acked} acked "
            f"statements ({report.replayed} replayed, "
            f"{report.torn_bytes} torn bytes)"
        )
        allowed = self.oracle[acked:min(acked + 2, len(self.oracle))]
        assert state in allowed, (
            f"replica outside the acked-prefix window after {acked} acked"
        )

    def test_replica_equals_recovery_at_every_append_crash(self):
        for at in range(self.total_appends):
            device, acked = crash_run(FaultPlan().fail_append(at=at))
            assert device.dead, f"append fault #{at} never fired"
            self.check(device, acked)

    def test_replica_equals_recovery_at_every_sync_crash(self):
        for at in range(self.total_syncs):
            device, acked = crash_run(FaultPlan().fail_sync(at=at))
            assert device.dead, f"sync fault #{at} never fired"
            self.check(device, acked)

    def test_replica_equals_recovery_at_every_torn_sync(self):
        """Torn tails: the device dies mid-record, so the stream ends in
        garbage; the applier must stop exactly where recovery stops."""
        for at in range(self.total_syncs):
            device, acked = crash_run(FaultPlan().torn_sync(at=at))
            assert device.dead, f"torn sync #{at} never fired"
            self.check(device, acked)

    def test_chunked_delivery_with_reconnects_same_matrix(self):
        """Every third sync-crash stream, re-delivered in 97-byte polls
        with periodic reconnect rewinds: same convergence."""
        for at in range(0, self.total_syncs, 3):
            device, acked = crash_run(FaultPlan().torn_sync(at=at))
            self.check(device, acked, chunk=97)


# ---------------------------------------------------------------------------
# layer 2: the seeded network storm over a live pair
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
class TestReplicationStorm:
    def test_link_converges_through_storm(self, seed):
        db = Database(buffer_pages=32)
        db.attach_wal(MemoryWALDevice())
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        h = ServerHarness(db, workers=2, max_connections=32,
                          network_faults=chaos_plan(seed))
        ReplicationEndpoint(h.server).install()
        rh = ReplicaHarness(
            h.port,
            retry=RetryPolicy(max_attempts=6, base_delay=0.005,
                              max_delay=0.05, seed=seed),
        )
        try:
            # Ingest while the storm rages over the replication sockets.
            for i in range(60):
                db.insert("t", [f"s{i}", i])
                if i % 20 == 10:
                    time.sleep(0.02)
            assert rh.replica.wait_ready(30), "bootstrap never survived"
            assert wait_for(
                lambda: rh.replica.link.wait_caught_up(2.0), timeout=60
            ), f"replica never caught up (seed {seed}): " \
               f"{rh.replica.link.health()}"

            # Converged to the primary's state...
            assert table_rows(rh.replica.db) == table_rows(db)
            # ...with every record applied exactly once: 60 unique
            # names, despite any number of reconnect overlaps.
            names = [v[0] for _, v in table_rows(rh.replica.db)]
            assert len(names) == len(set(names)) == 60
            # The replica's own (fault-free) port still answers health
            # with live repl lag fields.
            with QueryClient(port=rh.port, response_timeout=5.0) as c:
                repl = c.health()["repl"]
            assert repl["role"] == "replica" and repl["bootstrapped"]
            assert repl["lag_bytes"] == 0
        finally:
            rh.stop()
            h.stop()
        # The storm genuinely hit the wire.
        assert db.metrics.get("server.faults.injected") > 0


# ---------------------------------------------------------------------------
# layer 3: fail-stop the primary's log mid-ingest under a served pair
# ---------------------------------------------------------------------------

class TestLiveKillAndPromote:
    """The primary's WAL device dies at a chosen append/sync index while
    a replica streams; the replica must land on exactly the durable
    prefix, promote, and take writes.  (The byte-exhaustive version of
    this matrix is TestPrimaryCrashMatrix; here a sampled set of crash
    points exercises the full server + link path.)"""

    def _run_once(self, plan):
        db = Database(buffer_pages=32)
        device = MemoryWALDevice(plan=plan)
        db.attach_wal(device)
        db.create_table("t", [Column("name", ValueType.TEXT),
                              Column("v", ValueType.INT)])
        h = ServerHarness(db, workers=2)
        ReplicationEndpoint(h.server).install()
        rh = ReplicaHarness(h.port)
        try:
            assert rh.replica.wait_ready(10)
            acked = []
            try:
                for i in range(30):
                    db.insert("t", [f"r{i}", i])
                    acked.append(f"r{i}")
            except InjectedFaultError:
                pass
            assert device.dead, "the fault never fired"

            # The primary is dead for writes but its stream endpoint
            # still serves the durable prefix: the replica converges.
            assert rh.replica.link.wait_caught_up(15), \
                rh.replica.link.health()
            survivor = MemoryWALDevice.from_durable(
                device.durable(), base_lsn=device.base_lsn
            )
            recovered, _ = Database.recover(None, survivor, verify=True)
            assert table_rows(rh.replica.db) == table_rows(recovered), \
                "replica diverges from a recovered primary"
            # Every write the client was told happened is on the replica
            # (the crashing one may round up to durable, never beyond).
            names = {v[0] for _, v in table_rows(rh.replica.db)}
            missing = [n for n in acked if n not in names]
            assert missing == [], f"acked writes lost: {missing}"

            # Failover: promote and write through the new primary.
            with QueryClient(port=rh.port, response_timeout=10.0) as c:
                assert c.request({"op": "promote"})["promoted"] is True
                c.execute("Insert Into t Values ('post-promote', 99)")
                found = c.execute(
                    "Select * From t r Where r.name = 'post-promote'"
                )
                assert found["row_count"] == 1
        finally:
            rh.stop()
            h.stop()

    def test_append_crash_points(self):
        # Index 0 is the CREATE TABLE frame (pre-serve); sample the
        # ingest phase: first, early, middle, and final append.
        for at in (1, 2, 7, 16, 30):
            self._run_once(FaultPlan().fail_append(at=at))

    def test_sync_crash_points(self):
        # Sync 0 is CREATE TABLE, sync 1 the bootstrap snapshot's WAL
        # flush (killing that just means no replica ever attaches);
        # sample the ingest-phase syncs.
        for at in (2, 10, 26):
            self._run_once(FaultPlan().fail_sync(at=at))

    def test_torn_sync_crash_point(self):
        """The log tears mid-record: the replica must stop at the last
        whole frame, exactly like recovery truncates the torn tail."""
        self._run_once(FaultPlan().torn_sync(at=12))
