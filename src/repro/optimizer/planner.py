"""Plan enumeration, access-path selection, and physical lowering (§5).

For each SELECT the planner:

1. binds the statement to an initial logical plan (binder),
2. explores the §5.1 rule space into a pool of equivalent logical plans,
3. lowers every candidate to a physical plan — choosing between sequential
   scan / data B-Tree / Summary-BTree (or baseline) access paths, block
   nested-loop / index nested-loop joins, and memory / disk sorts — while
   tracking *interesting orders* produced by Summary-BTree scans (Rules
   3–6: a sort on an indexed label riding an order-preserving pipeline is
   eliminated), and
4. executes the cheapest plan under the §5.2 cost model.

``PlannerOptions`` exposes the ablation knobs the paper's experiments flip:
rules on/off (Figures 14–15), index scheme (Figures 10–12), propagation
on/off and pointer style (Figure 13), and forced join/sort algorithms
(Figure 14's four configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.query.ast import (
    ExplainStmt,
    Expr,
    FuncCall,
    Literal,
    SelectStmt,
    SummaryExpr,
)
from repro.query.binder import Binder, BindInfo
from repro.query.eval import EvalContext
from repro.query.logical import (
    LogicalDistinct,
    LogicalGroup,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalSummaryFilter,
    LogicalSummaryJoin,
    LogicalSummarySelect,
    aliases_in,
    conjoin,
    split_conjuncts,
    summary_exprs_in,
)
from repro.query.ast import ColumnRef, Comparison, ObjectFunc
from repro.query.physical import (
    BaselineIndexScan,
    DistinctOp,
    ExecContext,
    FilterOp,
    GroupOp,
    IndexNestedLoopJoin,
    IndexScan,
    KeywordIndexScan,
    SummaryIndexNestedLoopJoin,
    LimitOp,
    NestedLoopJoin,
    PhysicalOperator,
    ProjectOp,
    SeqScan,
    SortOp,
    SummaryFilterOp,
    SummaryIndexScan,
    SummarySelectOp,
)
from repro.optimizer.cost import (
    CPU_EVAL,
    CPU_ROW,
    INDEX_DESCENT,
    IO_COST,
    RAW_SEARCH_ROW,
    CPU_MERGE_BYTE,
    Estimator,
    match_indexable_data_pred,
    match_indexable_summary_pred,
    match_keyword_pred,
    match_summary_join_pred,
    summary_read_discount,
)
from repro.optimizer.rules import apply_rules
from repro.optimizer.statistics import StatisticsCatalog


@dataclass
class PlannerOptions:
    """Optimizer ablation knobs (see module docstring)."""

    enable_rules: bool = True
    enable_summary_indexes: bool = True
    enable_data_indexes: bool = True
    force_join: str | None = None  # "nloop" | "index"
    force_sort: str | None = None  # "mem" | "disk"
    index_scheme: str = "summary_btree"  # "summary_btree" | "baseline" | "none"
    #: "index" pins access-path choice to an index whenever one matches the
    #: predicates (the paper's Figures 10-13 compare access paths directly).
    force_access: str | None = None
    normalized_propagation: bool = False  # Figure 12 baseline-propagation mode
    propagate: bool = True
    search_raw: bool = True
    mem_sort_threshold: int = 50_000


def _access_root(op: PhysicalOperator) -> PhysicalOperator:
    """The access path at the bottom of a residual-wrapped operator stack."""
    while op.children:
        op = op.children[0]
    return op


@dataclass(frozen=True)
class Order:
    """An interesting order w.r.t. a classifier instance (§5.1 notation R^L)."""

    alias: str
    instance: str
    label: str
    direction: str  # ASC | DESC


@dataclass
class Lowered:
    """A lowered subtree: operator + cost/cardinality/order bookkeeping.

    ``width`` is the estimated summary payload (bytes) carried per tuple
    (Figure 6's AvgObjectSize summed over surviving instances); joins and
    groups charge merge work proportional to it, which is what makes the
    Rule 7/8 filter pushdowns win plans."""

    op: PhysicalOperator
    cost: float
    rows: float
    order: Order | None = None
    width: float = 0.0


def sort_key_order(expr: Expr, direction: str) -> Order | None:
    """The Order a sort key demands, when it is an indexable label chain."""
    if not isinstance(expr, SummaryExpr):
        return None
    chain = expr.chain
    if (
        len(chain) == 2
        and chain[0].name == "getSummaryObject"
        and chain[1].name == "getLabelValue"
        and chain[0].args and isinstance(chain[0].args[0], str)
        and chain[1].args and isinstance(chain[1].args[0], str)
    ):
        return Order(expr.alias or "", chain[0].args[0], chain[1].args[0],
                     direction)
    return None


class Planner:
    """Binds, rewrites, lowers, and costs queries for one database."""

    def __init__(
        self,
        catalog,
        manager,
        stats: StatisticsCatalog,
        summary_indexes: dict,
        baseline_indexes: dict,
        options: PlannerOptions | None = None,
        normalized_replicas: dict | None = None,
        keyword_indexes: dict | None = None,
        health=None,
    ):
        self.catalog = catalog
        self.manager = manager
        self.stats = stats
        self.summary_indexes = summary_indexes
        self.baseline_indexes = baseline_indexes
        self.normalized_replicas = normalized_replicas or {}
        self.keyword_indexes = keyword_indexes or {}
        self.options = options or PlannerOptions()
        self.binder = Binder(catalog, manager)
        #: :class:`~repro.resilience.health.AccessPathHealth`; None = every
        #: derived access path is assumed healthy.
        self.health = health
        #: quarantined paths the last :meth:`plan` call skipped, as
        #: ``(kind, table, instance)`` — what EXPLAIN reports as "degraded".
        self.excluded: set[tuple[str, str, str]] = set()

    # -- public API -------------------------------------------------------------

    def plan(
        self, stmt: SelectStmt | ExplainStmt
    ) -> tuple[PhysicalOperator, LogicalPlan, float]:
        """(physical plan, chosen logical plan, estimated cost).

        ``ExplainStmt`` plans its inner query — whether the plan is then
        executed (ANALYZE) or only rendered is the executor's call.
        """
        if isinstance(stmt, ExplainStmt):
            stmt = stmt.query
        self.excluded = set()
        logical, info = self.binder.bind(stmt)
        candidates = [logical]
        if self.options.enable_rules:
            candidates = apply_rules(logical, self.manager, info)
        best: tuple[PhysicalOperator, LogicalPlan, float] | None = None
        for candidate in candidates:
            lowered = self._lower_plan(candidate, info)
            if best is None or lowered.cost < best[2]:
                best = (lowered.op, candidate, lowered.cost)
        assert best is not None
        return best

    def _path_ok(self, kind: str, table: str, instance: str) -> bool:
        """Degraded-mode gate: False when ``(kind, table, instance)`` is
        quarantined in the health registry, recording the exclusion so
        callers (EXPLAIN, QueryReport) can surface why the plan fell back
        to a heap scan."""
        if self.health is None or self.health.is_healthy(kind, table, instance):
            return True
        self.excluded.add((kind, table.lower(), instance))
        return False

    def exec_context(self) -> ExecContext:
        return ExecContext(
            catalog=self.catalog,
            manager=self.manager,
            propagate=self.options.propagate,
            summary_indexes=self.summary_indexes,
            baseline_indexes=self.baseline_indexes,
            normalized_replicas=self.normalized_replicas,
            keyword_indexes=self.keyword_indexes,
            eval_ctx=EvalContext(
                manager=self.manager, search_raw=self.options.search_raw,
                udfs=self.manager.udfs,
            ),
        )

    # -- lowering ------------------------------------------------------------------

    def _lower_plan(self, plan: LogicalPlan, info: BindInfo) -> Lowered:
        ctx = self.exec_context()
        estimator = Estimator(self.stats, info.alias_tables)
        # Which aliases need their summaries materialized anywhere above the
        # access path (residual predicates, sort keys, output propagation)?
        summary_uses: dict[str, int] = {}
        for node in plan.walk_plan():
            for expr in _node_exprs(node):
                for sexpr in summary_exprs_in(expr):
                    alias = sexpr.alias or next(iter(info.alias_tables))
                    summary_uses[alias] = summary_uses.get(alias, 0) + 1
        desired = self._desired_order(plan)
        state = _LowerState(self, ctx, info, estimator, summary_uses, desired)
        return state.lower(plan)

    @staticmethod
    def _desired_order(plan: LogicalPlan) -> Order | None:
        for node in plan.walk_plan():
            if isinstance(node, LogicalSort) and len(node.keys) == 1:
                return sort_key_order(*node.keys[0])
        return None


def _node_exprs(node: LogicalPlan):
    if isinstance(node, (LogicalSelect, LogicalSummarySelect)):
        yield node.predicate
    elif isinstance(node, LogicalJoin):
        if node.condition is not None:
            yield node.condition
    elif isinstance(node, LogicalSummaryJoin):
        yield node.predicate
        if node.data_condition is not None:
            yield node.data_condition
    elif isinstance(node, LogicalSort):
        for expr, _ in node.keys:
            yield expr
    elif isinstance(node, LogicalGroup):
        yield from node.keys
        for agg, _ in node.aggregates:
            if agg.arg is not None:
                yield agg.arg
    elif isinstance(node, LogicalProject):
        from repro.query.ast import SelectItem

        for item in node.items:
            if isinstance(item, SelectItem):
                yield item.expr


class _LowerState:
    """One lowering pass over one logical candidate."""

    def __init__(self, planner: Planner, ctx: ExecContext, info: BindInfo,
                 estimator: Estimator, summary_uses: dict[str, int],
                 desired_order: Order | None):
        self.planner = planner
        self.ctx = ctx
        self.info = info
        self.est = estimator
        self.summary_uses = summary_uses
        self.desired_order = desired_order
        self.options = planner.options

    # -- dispatch -------------------------------------------------------------------

    def lower(self, node: LogicalPlan) -> Lowered:
        if isinstance(node, (LogicalScan, LogicalSelect, LogicalSummarySelect)) \
                and self._is_scan_stack(node):
            return self._lower_scan_stack(node)
        if isinstance(node, LogicalSelect):
            return self._lower_filter(node, data=True)
        if isinstance(node, LogicalSummarySelect):
            return self._lower_filter(node, data=False)
        if isinstance(node, LogicalSummaryFilter):
            child = self.lower(node.child)
            op = SummaryFilterOp(self.ctx, child.op, node.predicate)
            return Lowered(op, child.cost + child.rows * CPU_EVAL, child.rows,
                           child.order,
                           width=self._filtered_width(child.width, node))
        if isinstance(node, LogicalJoin):
            return self._lower_join(node, summary_predicate=None,
                                    condition=node.condition)
        if isinstance(node, LogicalSummaryJoin):
            return self._lower_join(node, summary_predicate=node.predicate,
                                    condition=node.data_condition)
        if isinstance(node, LogicalSort):
            return self._lower_sort(node)
        if isinstance(node, LogicalGroup):
            child = self.lower(node.child)
            op = GroupOp(self.ctx, child.op, node.keys, node.aggregates)
            groups = max(child.rows * 0.1, 1.0)
            return Lowered(op, child.cost + child.rows * CPU_ROW, groups, None)
        if isinstance(node, LogicalDistinct):
            child = self.lower(node.child)
            return Lowered(DistinctOp(self.ctx, child.op),
                           child.cost + child.rows * CPU_ROW,
                           max(child.rows * 0.9, 1.0), None)
        if isinstance(node, LogicalLimit):
            child = self.lower(node.child)
            return Lowered(LimitOp(self.ctx, child.op, node.limit),
                           child.cost, min(child.rows, node.limit), child.order)
        if isinstance(node, LogicalProject):
            child = self.lower(node.child)
            op = ProjectOp(self.ctx, child.op, node.items)
            return Lowered(op, child.cost + child.rows * CPU_ROW, child.rows,
                           child.order)
        raise PlanError(f"cannot lower {node!r}")

    # -- scan stacks & access paths ------------------------------------------------------

    def _is_scan_stack(self, node: LogicalPlan) -> bool:
        while isinstance(node, (LogicalSelect, LogicalSummarySelect)):
            node = node.child
        return isinstance(node, LogicalScan)

    def _lower_scan_stack(self, node: LogicalPlan) -> Lowered:
        data_preds: list[Expr] = []
        summary_preds: list[Expr] = []
        while isinstance(node, (LogicalSelect, LogicalSummarySelect)):
            bucket = data_preds if isinstance(node, LogicalSelect) else summary_preds
            bucket.extend(split_conjuncts(node.predicate))
            node = node.child
        assert isinstance(node, LogicalScan)
        return self._choose_access_path(node, data_preds, summary_preds)

    def _needs_summaries(self, alias: str, consumed: int = 0) -> bool:
        if self.options.propagate:
            return True
        return self.summary_uses.get(alias, 0) - consumed > 0

    def _summary_io_factor(self) -> float:
        """Discount on summary-storage read charges when a warm
        :class:`~repro.cache.SummaryCache` makes repeat probes cheap.
        Applies only to reads that go through the cache (SummaryStorage
        reads via the manager) — direct heap reads keep full price."""
        return summary_read_discount(
            getattr(self.planner.manager, "cache", None)
        )

    def _retained(self, alias: str) -> set[str] | None:
        return self.info.retained_summary_columns.get(alias)

    def _is_indexed_leaf_label(self, instance_name: str, label: str) -> bool:
        """The Summary-BTree stores *leaf* label keys only: predicates on
        inner hierarchy nodes (whose value is a subtree sum) or unknown
        labels must fall back to scan plans."""
        manager = self.planner.manager
        if not manager.has_instance(instance_name):
            return False
        labels = getattr(manager.instance(instance_name), "labels", None)
        return labels is not None and label in labels

    def _elimination_active(self, alias: str) -> bool:
        """True when projection-time annotation elimination can change
        classifier counts for ``alias``: some columns are projected out AND
        the table carries cell-level annotations.  Summary-index probes see
        the *stored* counts, so they are valid access paths only when this
        is False (scan plans evaluate predicates on the eliminated sets —
        [22] Theorems 1-2 put elimination below every other operator)."""
        if self._retained(alias) is None:
            return False
        table = self.info.table_of(alias)
        return self.planner.manager.has_cell_annotations(table)

    def _table_stats(self, table: str):
        return self.planner.stats.table_stats(table)

    def _summary_width(self, table: str, with_summaries: bool) -> float:
        if not with_summaries:
            return 0.0
        stats = self._table_stats(table)
        return sum(i.avg_object_size for i in stats.instances.values())

    def _filtered_width(self, width: float, node) -> float:
        """Estimated summary payload surviving an F operator: a
        name-equality structural predicate keeps one instance, a
        type-equality keeps roughly half, anything else is unchanged."""
        pred = node.predicate
        if isinstance(pred, Comparison) and isinstance(pred.left, ObjectFunc):
            if pred.left.name == "getSummaryName":
                tables = {
                    self.info.table_of(a) for a in node.child.aliases()
                }
                instances = sum(
                    len(self.planner.manager.instances_for(t)) for t in tables
                )
                return width / max(instances, 1)
            if pred.left.name == "getSummaryType":
                return width / 2.0
        return width

    def _choose_access_path(
        self,
        scan: LogicalScan,
        data_preds: list[Expr],
        summary_preds: list[Expr],
    ) -> Lowered:
        table, alias = scan.table, scan.alias
        stats = self._table_stats(table)
        candidates: list[Lowered] = [
            self._seq_scan_path(scan, data_preds, summary_preds, stats)
        ]
        summary_index_ok = (
            self.options.enable_summary_indexes
            and self.options.index_scheme != "none"
            and not self._elimination_active(alias)
        )
        if summary_index_ok:
            for i, pred in enumerate(summary_preds):
                matched = match_indexable_summary_pred(pred)
                if matched is None:
                    continue
                if (matched.alias or alias) != alias:
                    continue
                path = self._summary_index_path(
                    scan, matched, data_preds,
                    summary_preds[:i] + summary_preds[i + 1:], stats,
                )
                if path is not None:
                    candidates.append(path)
        if not self.options.search_raw and not self._elimination_active(alias):
            for i, pred in enumerate(summary_preds):
                kw = match_keyword_pred(pred)
                if kw is None or (kw.alias or alias) != alias:
                    continue
                if any(len(k) < 3 for k in kw.keywords):
                    continue  # below trigram length: index unusable
                index = self.planner.keyword_indexes.get(
                    (table.lower(), kw.instance)
                )
                if index is None:
                    continue
                if not self.planner._path_ok("keyword", table, kw.instance):
                    continue
                path = self._keyword_index_path(scan, kw, data_preds,
                                                summary_preds, stats)
                if path is not None:
                    candidates.append(path)
        if (
            summary_index_ok
            and self.options.index_scheme == "summary_btree"
            and self.desired_order is not None
            and self.desired_order.alias == alias
        ):
            # Pure ordering query (the paper's Q3): a full-range ordered
            # index scan can feed the sort's interesting order directly.
            path = self._ordered_full_scan_path(
                scan, data_preds, summary_preds, stats
            )
            if path is not None:
                candidates.append(path)
        if self.options.enable_data_indexes:
            table_obj = self.ctx.catalog.table(table)
            for i, pred in enumerate(data_preds):
                matched = match_indexable_data_pred(pred)
                if matched is None or (matched.alias or alias) != alias:
                    continue
                if not table_obj.has_index(matched.column):
                    continue
                candidates.append(
                    self._data_index_path(
                        scan, matched, data_preds[:i] + data_preds[i + 1:],
                        summary_preds, stats,
                    )
                )
        if self.options.force_access == "index" and len(candidates) > 1:
            forced = [
                c for c in candidates
                if not isinstance(_access_root(c.op), SeqScan)
            ]
            if forced:
                return min(forced, key=lambda c: c.cost)
        return min(candidates, key=lambda c: c.cost)

    def _wrap_residuals(
        self,
        base: Lowered,
        data_preds: list[Expr],
        summary_preds: list[Expr],
    ) -> Lowered:
        op, cost, rows, order = base.op, base.cost, base.rows, base.order
        width = base.width
        data_pred = conjoin(data_preds)
        if data_pred is not None:
            op = FilterOp(self.ctx, op, data_pred)
            cost += rows * CPU_EVAL
            rows = max(rows * self.est.selectivity(data_pred), 0.1)
        summary_pred = conjoin(summary_preds)
        if summary_pred is not None:
            op = SummarySelectOp(self.ctx, op, summary_pred)
            per_row = CPU_EVAL
            if self.est.needs_raw_search(summary_pred):
                per_row += RAW_SEARCH_ROW
            cost += rows * per_row
            rows = max(rows * self.est.selectivity(summary_pred), 0.1)
        return Lowered(op, cost, rows, order, width=width)

    def _seq_scan_path(self, scan, data_preds, summary_preds, stats) -> Lowered:
        with_summaries = self._needs_summaries(scan.alias) or bool(summary_preds)
        io = stats.heap_pages * IO_COST
        if with_summaries:
            io += stats.summary_pages * IO_COST * self._summary_io_factor()
        base = Lowered(
            SeqScan(self.ctx, scan.table, scan.alias, with_summaries,
                    self._retained(scan.alias)),
            io + stats.row_count * CPU_ROW,
            max(float(stats.row_count), 1.0),
            None,
            width=self._summary_width(scan.table, with_summaries),
        )
        return self._wrap_residuals(base, data_preds, summary_preds)

    def _summary_index_path(
        self, scan, matched, data_preds, residual_summary, stats
    ) -> Lowered | None:
        if not self._is_indexed_leaf_label(matched.instance, matched.label):
            return None
        scheme = self.options.index_scheme
        key = (scan.table.lower(), matched.instance)
        if scheme == "summary_btree":
            index = self.planner.summary_indexes.get(key)
            if not self.planner._path_ok("summary", scan.table,
                                         matched.instance):
                return None
        else:
            index = self.planner.baseline_indexes.get(key)
            if not self.planner._path_ok("baseline", scan.table,
                                         matched.instance):
                return None
            if self.options.normalized_propagation and not \
                    self.planner._path_ok("replica", scan.table,
                                          matched.instance):
                return None
        if index is None:
            return None
        lo, hi, lo_inc, hi_inc = matched.bounds()
        selectivity = self.est.selectivity(
            Comparison(
                matched.op,
                SummaryExpr(scan.alias, (
                    FuncCall("getSummaryObject", (matched.instance,)),
                    FuncCall("getLabelValue", (matched.label,)),
                )),
                Literal(matched.constant),
            )
        )
        matches = max(stats.row_count * selectivity, 1.0)
        with_summaries = self._needs_summaries(scan.alias, consumed=1) \
            or bool(residual_summary)
        direction = "ASC"
        order = None
        if (
            self.desired_order is not None
            and self.desired_order.alias == scan.alias
            and self.desired_order.instance == matched.instance
            and self.desired_order.label == matched.label
        ):
            direction = self.desired_order.direction
            order = self.desired_order
        else:
            order = Order(scan.alias, matched.instance, matched.label, "ASC")
        if scheme == "summary_btree":
            # Backward pointers: leaf -> data heap directly; conventional
            # pointers pay the storage row plus the OID-index join with R.
            per_match = IO_COST  # data page
            if not index.backward_pointers:
                per_match += IO_COST + INDEX_DESCENT  # storage row + OID probe
            if with_summaries and index.backward_pointers:
                # summary storage row (read through the summary cache)
                per_match += IO_COST * self._summary_io_factor()
            op: PhysicalOperator = SummaryIndexScan(
                self.ctx, scan.table, scan.alias, matched.instance,
                matched.label, lo, hi, lo_inc, hi_inc, with_summaries,
                self._retained(scan.alias), direction,
            )
        else:
            # Baseline: derived index -> normalized row -> OID index -> heap.
            per_match = IO_COST + INDEX_DESCENT + IO_COST
            if with_summaries:
                per_match += IO_COST * self._summary_io_factor()
                if self.options.normalized_propagation:
                    per_match += 4 * IO_COST  # re-assemble from primitives
            op = BaselineIndexScan(
                self.ctx, scan.table, scan.alias, matched.instance,
                matched.label, lo, hi, lo_inc, hi_inc, with_summaries,
                self._retained(scan.alias), direction,
                self.options.normalized_propagation,
            )
        base = Lowered(
            op, INDEX_DESCENT + matches * per_match, matches, order,
            width=self._summary_width(scan.table, with_summaries),
        )
        return self._wrap_residuals(base, data_preds, residual_summary)

    def _keyword_index_path(
        self, scan, kw, data_preds, summary_preds, stats
    ) -> Lowered:
        """Trigram candidates + full residual re-check: the original
        keyword conjunct stays in the residual because trigram matching
        over-approximates substring containment."""
        with_summaries = self._needs_summaries(scan.alias) \
            or bool(summary_preds)
        matches = max(stats.row_count * 0.15, 1.0)
        op = KeywordIndexScan(
            self.ctx, scan.table, scan.alias, kw.instance, kw.keywords,
            with_summaries, self._retained(scan.alias),
        )
        per_match = INDEX_DESCENT / 3.0 + IO_COST + (
            IO_COST * self._summary_io_factor() if with_summaries else 0.0
        )
        base = Lowered(
            op,
            INDEX_DESCENT * len(kw.keywords) + matches * per_match,
            matches,
            None,
            width=self._summary_width(scan.table, with_summaries),
        )
        return self._wrap_residuals(base, data_preds, summary_preds)

    def _ordered_full_scan_path(
        self, scan, data_preds, summary_preds, stats
    ) -> Lowered | None:
        order = self.desired_order
        assert order is not None
        index = self.planner.summary_indexes.get((scan.table.lower(),
                                                  order.instance))
        if index is None:
            return None
        if not self.planner._path_ok("summary", scan.table, order.instance):
            return None
        # Only equivalent when every tuple has an indexed summary object —
        # un-annotated tuples have no index entries and would vanish.
        annotated = len(self.planner.manager.storage_for(scan.table))
        if annotated < stats.row_count:
            return None
        with_summaries = self._needs_summaries(scan.alias) or bool(summary_preds)
        per_match = IO_COST + (
            IO_COST * self._summary_io_factor() if with_summaries else 0.0
        )
        if not index.backward_pointers:
            per_match += IO_COST + INDEX_DESCENT
        op = SummaryIndexScan(
            self.ctx, scan.table, scan.alias, order.instance, order.label,
            None, None, True, True, with_summaries,
            self._retained(scan.alias), order.direction,
        )
        base = Lowered(
            op,
            INDEX_DESCENT + stats.row_count * per_match,
            max(float(stats.row_count), 1.0),
            order,
            width=self._summary_width(scan.table, with_summaries),
        )
        return self._wrap_residuals(base, data_preds, summary_preds)

    def _data_index_path(
        self, scan, matched, residual_data, summary_preds, stats
    ) -> Lowered:
        lo, hi, lo_inc, hi_inc = matched.bounds()
        col_stats = stats.columns.get(matched.column)
        if matched.op == "=" and col_stats and col_stats.ndistinct:
            selectivity = 1.0 / col_stats.ndistinct
        else:
            selectivity = 0.2
        matches = max(stats.row_count * selectivity, 1.0)
        with_summaries = self._needs_summaries(scan.alias) or bool(summary_preds)
        per_match = IO_COST + (
            IO_COST * self._summary_io_factor() if with_summaries else 0.0
        )
        op = IndexScan(
            self.ctx, scan.table, scan.alias, matched.column, lo, hi,
            lo_inc, hi_inc, with_summaries, self._retained(scan.alias),
        )
        base = Lowered(
            op, INDEX_DESCENT + matches * per_match, matches, None,
            width=self._summary_width(scan.table, with_summaries),
        )
        return self._wrap_residuals(base, residual_data, summary_preds)

    # -- filters above non-scans -------------------------------------------------------

    def _lower_filter(self, node, data: bool) -> Lowered:
        child = self.lower(node.child)
        if data:
            op: PhysicalOperator = FilterOp(self.ctx, child.op, node.predicate)
            per_row = CPU_EVAL
        else:
            op = SummarySelectOp(self.ctx, child.op, node.predicate)
            per_row = CPU_EVAL
            if self.est.needs_raw_search(node.predicate):
                per_row += RAW_SEARCH_ROW
        rows = max(child.rows * self.est.selectivity(node.predicate), 0.1)
        return Lowered(op, child.cost + child.rows * per_row, rows,
                       child.order, width=child.width)

    # -- joins -------------------------------------------------------------------------

    def _order_survives_join(self, order: Order | None,
                             other: LogicalPlan) -> Order | None:
        """Rules 5/6: the outer's interesting order survives iff the inner
        side has no link to the order's instance (else the merge would
        change the label counts)."""
        if order is None:
            return None
        for alias in other.aliases():
            table = self.info.table_of(alias)
            if self.planner.manager.is_linked(table, order.instance):
                return None
        return order

    def _lower_join(self, node, summary_predicate: Expr | None,
                    condition: Expr | None) -> Lowered:
        left = self.lower(node.left)
        candidates: list[Lowered] = []
        force = self.options.force_join

        # Index nested-loop: inner must be a scan stack with an index on the
        # inner column of an equality condition.
        inl = self._try_index_nl(node, left, summary_predicate, condition)
        if inl is not None and force != "nloop":
            candidates.append(inl)

        # Index-based J (§5.2): probe the inner's Summary-BTree per outer
        # row when one summary-join conjunct addresses an indexed label.
        sinl = self._try_summary_index_nl(
            node, left, summary_predicate, condition
        )
        if sinl is not None and force != "nloop":
            candidates.append(sinl)

        if force != "index" or not candidates:
            right = self.lower(node.right)
            op = NestedLoopJoin(self.ctx, left.op, right.op, condition,
                                summary_predicate)
            pairs = left.rows * right.rows
            selectivity = self.est.join_selectivity(condition, left.rows,
                                                    right.rows)
            if summary_predicate is not None:
                selectivity *= self.est.join_selectivity(
                    summary_predicate, left.rows, right.rows
                )
            per_pair = CPU_EVAL
            if summary_predicate is not None and self.est.needs_raw_search(
                summary_predicate
            ):
                per_pair += RAW_SEARCH_ROW
            cost = left.cost + right.cost + pairs * per_pair
            rows = max(pairs * selectivity, 1.0)
            width = left.width + right.width
            cost += rows * width * CPU_MERGE_BYTE
            order = self._order_survives_join(left.order, node.right)
            candidates.append(Lowered(op, cost, rows, order, width=width))
        return min(candidates, key=lambda c: c.cost)

    def _try_summary_index_nl(
        self, node, left: Lowered, summary_predicate: Expr | None,
        condition: Expr | None,
    ) -> Lowered | None:
        if summary_predicate is None:
            return None
        if not self.options.enable_summary_indexes:
            return None
        if self.options.index_scheme != "summary_btree":
            return None
        right = node.right
        right_preds: list[Expr] = []
        while isinstance(right, (LogicalSelect, LogicalSummarySelect)):
            right_preds.extend(split_conjuncts(right.predicate))
            right = right.child
        if not isinstance(right, LogicalScan):
            return None
        if self._elimination_active(right.alias):
            return None  # index sees stored counts; see DESIGN.md §6
        conjuncts = split_conjuncts(summary_predicate)
        for i, conj in enumerate(conjuncts):
            matched = match_summary_join_pred(conj, right.alias)
            if matched is None:
                continue
            index = self.planner.summary_indexes.get(
                (right.table.lower(), matched.instance)
            )
            if index is None:
                continue
            if not self.planner._path_ok("summary", right.table,
                                         matched.instance):
                continue
            if not self._is_indexed_leaf_label(matched.instance,
                                               matched.label):
                continue
            residual_summary = conjoin(conjuncts[:i] + conjuncts[i + 1:])
            residual_data = conjoin(
                (split_conjuncts(condition) if condition is not None else [])
                + right_preds
            )
            with_summaries = self._needs_summaries(right.alias)
            stats = self._table_stats(right.table)
            label_stats = None
            inst = stats.instances.get(matched.instance)
            if inst is not None:
                label_stats = inst.labels.get(matched.label)
            ndistinct = label_stats.ndistinct if label_stats else 1
            if matched.op == "=":
                matches_per_row = max(stats.row_count / max(ndistinct, 1), 1.0)
            else:
                matches_per_row = max(stats.row_count / 3.0, 1.0)
            op = SummaryIndexNestedLoopJoin(
                self.ctx, left.op, right.table, right.alias,
                matched.instance, matched.label, matched.op,
                matched.outer_expr,
                condition=residual_data,
                summary_predicate=residual_summary,
                with_summaries=with_summaries,
                retained=self._retained(right.alias),
            )
            per_probe = INDEX_DESCENT + matches_per_row * (
                IO_COST + (IO_COST if with_summaries else 0.0)
            )
            cost = left.cost + left.rows * per_probe
            rows = max(
                left.rows * matches_per_row
                * self.est.selectivity(residual_data)
                * self.est.selectivity(residual_summary),
                1.0,
            )
            width = left.width + self._summary_width(
                right.table, with_summaries
            )
            cost += rows * width * CPU_MERGE_BYTE
            order = self._order_survives_join(left.order, node.right)
            return Lowered(op, cost, rows, order, width=width)
        return None

    def _try_index_nl(self, node, left: Lowered,
                      summary_predicate: Expr | None,
                      condition: Expr | None) -> Lowered | None:
        right = node.right
        right_preds: list[Expr] = []
        while isinstance(right, (LogicalSelect, LogicalSummarySelect)):
            right_preds.extend(split_conjuncts(right.predicate))
            right = right.child
        if not isinstance(right, LogicalScan):
            return None
        table_obj = self.ctx.catalog.table(right.table)
        conjuncts = split_conjuncts(condition) if condition is not None else []
        for i, conj in enumerate(conjuncts):
            if not isinstance(conj, Comparison) or conj.op != "=":
                continue
            for probe_side, key_side in (
                (conj.right, conj.left), (conj.left, conj.right)
            ):
                if not isinstance(probe_side, ColumnRef):
                    continue
                if probe_side.alias != right.alias:
                    continue
                if right.alias in aliases_in(key_side):
                    continue
                if not table_obj.has_index(probe_side.column):
                    continue
                residual = conjuncts[:i] + conjuncts[i + 1:] + right_preds
                with_summaries = self._needs_summaries(right.alias)
                stats = self._table_stats(right.table)
                matches_per_row = max(
                    stats.row_count
                    / max(stats.columns.get(probe_side.column,
                                            type("x", (), {"ndistinct": 1})
                                            ).ndistinct, 1),
                    1.0,
                )
                op = IndexNestedLoopJoin(
                    self.ctx, left.op, right.table, right.alias,
                    probe_side.column, key_side,
                    condition=conjoin(residual),
                    summary_predicate=summary_predicate,
                    with_summaries=with_summaries,
                    retained=self._retained(right.alias),
                )
                per_probe = INDEX_DESCENT + matches_per_row * (
                    IO_COST + (IO_COST if with_summaries else 0.0)
                )
                if summary_predicate is not None and self.est.needs_raw_search(
                    summary_predicate
                ):
                    per_probe += matches_per_row * RAW_SEARCH_ROW
                cost = left.cost + left.rows * per_probe
                rows = max(left.rows * matches_per_row
                           * self.est.selectivity(conjoin(residual))
                           * (self.est.join_selectivity(summary_predicate,
                                                        left.rows, 1.0)
                              if summary_predicate is not None else 1.0), 1.0)
                width = left.width + self._summary_width(
                    right.table, with_summaries
                )
                cost += rows * width * CPU_MERGE_BYTE
                order = self._order_survives_join(left.order, node.right)
                return Lowered(op, cost, rows, order, width=width)
        return None

    # -- sorts ------------------------------------------------------------------------------

    def _lower_sort(self, node: LogicalSort) -> Lowered:
        child = self.lower(node.child)
        if len(node.keys) == 1:
            wanted = sort_key_order(*node.keys[0])
            if wanted is not None and child.order == wanted:
                # Rules 3-6: the pipeline already delivers this order.
                return child
        method = self.options.force_sort or (
            "mem" if child.rows <= self.options.mem_sort_threshold else "disk"
        )
        op = SortOp(self.ctx, child.op, node.keys, method=method)
        import math

        n = max(child.rows, 2.0)
        cpu = n * math.log2(n) * CPU_ROW
        io = 0.0
        if method == "disk":
            # Spill + re-read every run (tuples with summaries are wide).
            io = 2.0 * n * 0.25 * IO_COST
        raw = any(
            self.est.needs_raw_search(expr) for expr, _ in node.keys
        )
        if raw:
            cpu += n * RAW_SEARCH_ROW
        new_order = None
        if len(node.keys) == 1:
            new_order = sort_key_order(*node.keys[0])
        return Lowered(op, child.cost + cpu + io, child.rows, new_order)
