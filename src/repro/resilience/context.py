"""Statement deadlines and cooperative cancellation.

An :class:`ExecutionContext` carries one statement's deadline and cancel
flag. :meth:`attach` hooks it into a physical plan exactly like the
profiler (``op.runtime = ctx``, see
:meth:`repro.query.physical.base.PhysicalOperator.rows`): every operator's
iterator is wrapped so a check runs at each batch boundary
(:data:`BATCH_ROWS` rows) plus once at iterator start and end. Because
every leaf row is pulled from inside some ancestor's ``next()``, a plan
that is producing rows anywhere hits a checkpoint at least every
``BATCH_ROWS`` leaf rows — which is what bounds how far past its deadline
a statement can run ("within one batch").

A tripped check raises a typed :class:`~repro.errors.QueryTimeoutError`
or :class:`~repro.errors.QueryCancelledError` carrying partial-progress
stats (operator rows produced so far, elapsed seconds, checks performed).

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time

from repro.errors import QueryCancelledError, QueryTimeoutError

#: rows between cancellation/deadline checkpoints in each operator.
BATCH_ROWS = 64


class ExecutionContext:
    """One statement's deadline + cancellation state."""

    def __init__(self, timeout: float | None = None, clock=time.perf_counter,
                 metrics=None):
        self.clock = clock
        self.metrics = metrics
        self.started = clock()
        self.timeout = timeout
        self.deadline = self.started + timeout if timeout is not None else None
        self.cancelled = False
        #: operator rows produced under this context (partial progress).
        self.rows_seen = 0
        #: checkpoint evaluations performed.
        self.checks = 0

    # -- control ---------------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation; the running statement raises
        :class:`QueryCancelledError` at its next checkpoint."""
        self.cancelled = True

    def partial_progress(self) -> dict:
        return {
            "rows": self.rows_seen,
            "elapsed_s": self.clock() - self.started,
            "checks": self.checks,
        }

    def check(self) -> None:
        """One checkpoint: raise if cancelled or past the deadline."""
        self.checks += 1
        if self.cancelled:
            if self.metrics is not None:
                self.metrics.inc("resilience.cancelled")
            raise QueryCancelledError(
                "query cancelled", partial=self.partial_progress()
            )
        if self.deadline is not None and self.clock() > self.deadline:
            if self.metrics is not None:
                self.metrics.inc("resilience.timeouts")
            progress = self.partial_progress()
            raise QueryTimeoutError(
                f"statement timed out after {progress['elapsed_s']:.3f}s "
                f"(timeout {self.timeout}s, {progress['rows']} operator "
                "rows produced)",
                partial=progress,
            )

    # -- plan wiring (mirrors PlanProfiler.attach/wrap) ------------------------

    def attach(self, root) -> "ExecutionContext":
        """Register every operator of ``root``'s tree with this context."""
        stack = [root]
        while stack:
            op = stack.pop()
            op.runtime = self
            stack.extend(op.children)
        return self

    def wrap(self, op, inner):
        """Checkpointing pass-through over one operator's row iterator."""
        self.check()
        count = 0
        for row in inner:
            count += 1
            self.rows_seen += 1
            if count % BATCH_ROWS == 0:
                self.check()
            yield row
        self.check()

    def wrap_batches(self, op, inner):
        """Batch-mode counterpart of :meth:`wrap`: batches are sized to
        :data:`BATCH_ROWS`, so one check per batch keeps the same
        "within one batch" overrun bound as tuple mode."""
        self.check()
        for batch in inner:
            self.rows_seen += len(batch)
            self.check()
            yield batch
        self.check()
