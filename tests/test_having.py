"""HAVING: post-group selection over aggregates, select aliases, and —
the summary-aware twist — the groups' merged annotation summaries."""

import pytest

from repro import Column, Database, ValueType

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
DISEASE_TEXT = "flu virus infection outbreak detected"
EXPR = "$.getSummaryObject('C').getLabelValue('Disease')"


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [
        Column("g", ValueType.TEXT), Column("v", ValueType.INT),
    ])
    database.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    database.manager.link("t", "C")
    data = [("a", 1, 2), ("a", 2, 1), ("a", 3, 0),
            ("b", 4, 0), ("b", 5, 0), ("c", 6, 4)]
    for g, v, diseases in data:
        oid = database.insert("t", {"g": g, "v": v})
        for _ in range(diseases):
            database.add_annotation(DISEASE_TEXT, table="t", oid=oid)
    return database


class TestAggregateHaving:
    def test_count_star(self, db):
        r = db.sql("Select g, count(*) n From t Group By g "
                   "Having count(*) > 1 Order By g")
        assert r.rows == [{"g": "a", "n": 3}, {"g": "b", "n": 2}]

    def test_having_only_aggregate(self, db):
        # sum(v) appears in HAVING but not in the select list.
        r = db.sql("Select g From t Group By g Having sum(v) >= 9 "
                   "Order By g")
        assert r.column("g") == ["b"]

    def test_select_alias_in_having(self, db):
        r = db.sql("Select g, count(*) n From t Group By g Having n > 2")
        assert r.rows == [{"g": "a", "n": 3}]

    def test_having_with_boolean_logic(self, db):
        r = db.sql(
            "Select g, count(*) n From t Group By g "
            "Having n > 1 And sum(v) < 7 Order By g"
        )
        assert r.column("g") == ["a"]

    def test_having_on_group_key(self, db):
        r = db.sql("Select g From t Group By g Having g <> 'a' Order By g")
        assert r.column("g") == ["b", "c"]

    def test_having_all_filtered(self, db):
        r = db.sql("Select g From t Group By g Having count(*) > 10")
        assert len(r) == 0


class TestSummaryHaving:
    def test_having_on_merged_summaries(self, db):
        # Group 'a' merges 3 tuples' summaries: 2+1+0 = 3 disease
        # annotations; 'c' has 4; 'b' has none.
        r = db.sql(
            f"Select g From t r Group By g Having r.{EXPR} >= 3 Order By g"
        )
        assert r.column("g") == ["a", "c"]

    def test_summary_having_mixed_with_aggregate(self, db):
        r = db.sql(
            f"Select g, count(*) n From t r Group By g "
            f"Having r.{EXPR} >= 3 And count(*) > 1"
        )
        assert r.rows == [{"g": "a", "n": 2}] or r.column("g") == ["a"]

    def test_plans_as_summary_select_above_group(self, db):
        report = db.explain(
            f"Select g From t r Group By g Having r.{EXPR} >= 3"
        )
        logical = report.logical
        assert "SummarySelect" in logical
        assert logical.index("SummarySelect") < logical.index("Group")


class TestEdges:
    def test_having_without_group_by_is_global(self, db):
        r = db.sql("Select count(*) n From t Having count(*) > 3")
        assert r.rows == [{"n": 6}]
        r2 = db.sql("Select count(*) n From t Having count(*) > 10")
        assert len(r2) == 0

    def test_having_then_order_and_limit(self, db):
        r = db.sql(
            "Select g, sum(v) s From t Group By g Having sum(v) > 3 "
            "Order By s Desc Limit 1"
        )
        assert r.rows == [{"g": "b", "s": 9}]
