"""Access-path health registry for degraded-mode planning.

An :class:`AccessPathHealth` tracks which derived access paths
(Summary-BTrees, baseline indexes, keyword indexes, normalized replicas)
are currently *quarantined* — known or suspected corrupt. It is fed from
two directions:

* :meth:`Database.check_integrity` quarantines every path named by an
  audit violation (:meth:`IntegrityReport.unhealthy_paths`), and
* the executor quarantines the paths of a plan whose execution died on a
  mid-query index corruption, before retrying the statement once on the
  fallback plan.

The planner consults the registry (``Planner._path_ok``) and excludes
unhealthy index candidates, so statements re-plan onto heap scans —
slower, but correct, since every index here is *derived* from the
authoritative heaps (the repair contract of ``repro.core.repair``). A
converged repair rebuilds all derived structures and calls
:meth:`restore_all`.

Keys are ``(kind, table lowercase, instance)`` with ``kind`` one of
:data:`PATH_KINDS`.
"""

from __future__ import annotations

PATH_KINDS = ("summary", "baseline", "keyword", "replica")

PathKey = tuple  # (kind, table_lower, instance)


class AccessPathHealth:
    """Tracks quarantined (unhealthy) derived access paths."""

    def __init__(self, metrics=None):
        self.metrics = metrics
        #: (kind, table lowercase, instance) -> human-readable reason.
        self._unhealthy: dict[PathKey, str] = {}

    @staticmethod
    def _key(kind: str, table: str, instance: str) -> PathKey:
        if kind not in PATH_KINDS:
            raise ValueError(f"unknown access-path kind {kind!r}")
        return (kind, table.lower(), instance)

    def quarantine(self, kind: str, table: str, instance: str,
                   reason: str = "integrity violation") -> bool:
        """Mark one path unhealthy; returns True if it was healthy before."""
        key = self._key(kind, table, instance)
        fresh = key not in self._unhealthy
        self._unhealthy[key] = reason
        if fresh and self.metrics is not None:
            self.metrics.inc("resilience.quarantined")
        return fresh

    def restore(self, kind: str, table: str, instance: str) -> bool:
        """Mark one path healthy again; returns True if it was quarantined."""
        removed = self._unhealthy.pop(self._key(kind, table, instance), None)
        if removed is not None and self.metrics is not None:
            self.metrics.inc("resilience.restored")
        return removed is not None

    def restore_all(self) -> int:
        """Clear the registry (a converged repair rebuilt everything)."""
        count = len(self._unhealthy)
        if count and self.metrics is not None:
            self.metrics.inc("resilience.restored", count)
        self._unhealthy.clear()
        return count

    def is_healthy(self, kind: str, table: str, instance: str) -> bool:
        return self._key(kind, table, instance) not in self._unhealthy

    def unhealthy(self) -> list[PathKey]:
        return sorted(self._unhealthy)

    def reason(self, kind: str, table: str, instance: str) -> str | None:
        return self._unhealthy.get(self._key(kind, table, instance))

    def __len__(self) -> int:
        return len(self._unhealthy)

    def __bool__(self) -> bool:  # a registry with no quarantines is falsy
        return bool(self._unhealthy)
