"""SQL DELETE and UPDATE: data and summary predicates, index/summary
maintenance on deletion, assignment expressions, and statistics
staleness."""

import pytest

from repro import Column, Database, ValueType

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer note", "Other"),
]
DISEASE_TEXT = "flu virus infection outbreak seen"
OTHER_TEXT = "survey checklist note uploaded"
EXPR = "$.getSummaryObject('C').getLabelValue('Disease')"


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [
        Column("name", ValueType.TEXT), Column("v", ValueType.INT),
    ])
    database.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    database.sql("Alter Table t Add Indexable C")
    for i in range(5):
        oid = database.insert("t", {"name": f"n{i}", "v": i})
        database.add_annotation(OTHER_TEXT, table="t", oid=oid)
        for _ in range(i):
            database.add_annotation(DISEASE_TEXT, table="t", oid=oid)
    database.analyze("t")
    return database


class TestDelete:
    def test_delete_with_data_predicate(self, db):
        assert db.sql("Delete From t Where v >= 3") == 2
        assert db.sql("Select count(*) c From t").scalar() == 3

    def test_delete_with_summary_predicate(self, db):
        # The paper's first-class-summary promise extends to DML: delete
        # the tuples with no disease-related annotations.
        deleted = db.sql(f"Delete From t r Where r.{EXPR} = 0")
        assert deleted == 1  # only n0
        names = db.sql("Select name From t Order By name").column("name")
        assert names == ["n1", "n2", "n3", "n4"]

    def test_delete_everything(self, db):
        assert db.sql("Delete From t") == 5
        assert db.sql("Select count(*) c From t").scalar() == 0

    def test_delete_maintains_summary_index(self, db):
        index = db.summary_indexes[("t", "C")]
        before = len(index)
        db.sql("Delete From t Where v = 4")
        assert len(index) == before - 2  # two labels per deleted object
        # and the index still answers queries correctly
        result = db.sql(f"Select name From t r Where r.{EXPR} >= 3")
        assert result.column("name") == ["n3"]

    def test_delete_drops_summary_rows(self, db):
        db.sql("Delete From t Where v = 2")
        assert db.manager.storage_for("t").get(3) is None  # OIDs start at 1

    def test_delete_no_match(self, db):
        assert db.sql("Delete From t Where v = 99") == 0

    def test_deleted_annotations_unreachable_by_zoom(self, db):
        db.sql("Delete From t Where v = 4")
        assert db.zoom_in("t", 5, "C", "Disease") == []


class TestUpdate:
    def test_update_literal(self, db):
        assert db.sql("Update t Set v = 42 Where name = 'n1'") == 1
        assert db.sql("Select v From t Where name = 'n1'").scalar() == 42

    def test_update_all_rows(self, db):
        assert db.sql("Update t Set v = 0") == 5
        values = set(db.sql("Select v From t").column("v"))
        assert values == {0}

    def test_update_multiple_columns(self, db):
        db.sql("Update t Set v = 7, name = 'renamed' Where v = 3")
        row = db.sql("Select name, v From t Where v = 7").rows[0]
        assert row == {"name": "renamed", "v": 7}

    def test_update_expression_from_row(self, db):
        # assignments may reference the row being updated
        db.sql("Update t Set v = oid Where name = 'n2'")
        assert db.sql("Select v From t Where name = 'n2'").scalar() == 3

    def test_update_from_summary_expression(self, db):
        # materialize a summary value into a data column
        db.sql(f"Update t r Set v = r.{EXPR}")
        values = db.sql("Select name, v From t Order By name").column("v")
        assert values == [0, 1, 2, 3, 4]

    def test_update_with_summary_predicate(self, db):
        changed = db.sql(f"Update t r Set name = 'hot' Where r.{EXPR} >= 3")
        assert changed == 2

    def test_update_marks_statistics_stale(self, db):
        db.sql("Update t Set v = 1000")
        stats = db.statistics.table_stats("t")  # re-analyzes when stale
        assert stats.columns["v"].max == 1000

    def test_update_no_match(self, db):
        assert db.sql("Update t Set v = 1 Where v = 99") == 0


class TestDmlInterop:
    def test_delete_then_requery_via_index(self, db):
        db.sql(f"Delete From t r Where r.{EXPR} in [1, 2]")
        db.options.force_access = "index"
        try:
            result = db.sql(f"Select name From t r Where r.{EXPR} >= 1")
        finally:
            db.options.force_access = None
        assert sorted(result.column("name")) == ["n3", "n4"]

    def test_update_then_data_index(self, db):
        db.create_index("t", "v")
        db.sql("Update t Set v = 100 Where name = 'n0'")
        result = db.sql("Select name From t Where v = 100")
        assert result.column("name") == ["n0"]
