"""The usability-study database (§1.1 and §6 of the paper).

Both case studies run over "a small subset of 100 data tuples from the AKN
ornithological database, each has a number of raw annotations ranging
between 75 to 380".  :func:`build_study_database` regenerates that shape
deterministically:

* exactly :data:`SWAN_COUNT` birds whose name matches ``Swan*`` (Q1 of
  Figure 2 reports 5 qualifying tuples),
* families arranged so Q2's aggregation has a small number of qualifying
  groups, and
* per-tuple annotation densities drawn uniformly from the paper's 75–380
  range, scaled by ``scale`` so tests stay fast while benchmarks can run
  the full density.

A second "revision" table (``birds_v2``) backs Figure 16's Q2 — the same
birds re-annotated so a handful of tuples differ in their disease counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.storage.record import ValueType
from repro.workload.generator import WorkloadConfig, annotation_batch
from repro.workload.vocab import CLASS_LABELS, FAMILIES, SEED_EXAMPLES

#: Birds whose common name starts with "Swan" — Q1's qualifying set.
SWAN_COUNT = 5

#: Families whose members carry behavior-heavy annotations — Q2's groups.
BEHAVIOR_FAMILIES = ("Anatidae", "Accipitridae", "Corvidae")

#: Tuples in the second revision that gain extra disease annotations —
#: Figure 16 Q2's qualifying set.
REVISED_COUNT = 5

STUDY_COLUMNS = [
    Column("bird_id", ValueType.INT),
    Column("name", ValueType.TEXT),
    Column("family", ValueType.TEXT),
    Column("region", ValueType.TEXT),
]


@dataclass
class StudyConfig:
    """Shape of the generated study database."""

    num_birds: int = 100
    #: multiplier on the paper's 75–380 annotations-per-tuple range.
    scale: float = 0.1
    seed: int = 7
    min_annotations: int = 75
    max_annotations: int = 380

    def density(self, rng: random.Random) -> int:
        """Annotations for one tuple: paper range × scale (at least 3)."""
        raw = rng.randint(self.min_annotations, self.max_annotations)
        return max(3, round(raw * self.scale))


def _bird_name(i: int) -> str:
    if i < SWAN_COUNT:
        return f"Swan {['Goose', 'Mute', 'Trumpeter', 'Tundra', 'Black'][i]}"
    return f"Bird {i:03d}"


def build_study_database(config: StudyConfig | None = None) -> Database:
    """Generate the two-revision study database with summaries linked."""
    config = config or StudyConfig()
    rng = random.Random(config.seed)
    db = Database()

    db.create_classifier_instance("ClassBird1", CLASS_LABELS, SEED_EXAMPLES)
    db.create_snippet_instance("TextSummary1", min_chars=240, max_chars=120)

    for table in ("birds", "birds_v2"):
        db.create_table(table, STUDY_COLUMNS)
        db.manager.link(table, "ClassBird1")
        db.manager.add_observer(
            table, "ClassBird1", db.statistics.observer_for(table)
        )
        db.manager.link(table, "TextSummary1")

    # Tuple-level annotations only: AKN-style field notes describe the
    # whole record, and the revision-join queries compare stored counts —
    # cell-level targeting would make projection elimination asymmetric
    # across the two sides of the join (see DESIGN.md on semantics).
    wl = WorkloadConfig(seed=config.seed, cell_fraction=0.0)
    densities = [config.density(rng) for _ in range(config.num_birds)]
    for i in range(config.num_birds):
        family = (
            BEHAVIOR_FAMILIES[i % len(BEHAVIOR_FAMILIES)]
            if i % 4 == 0
            else FAMILIES[i % len(FAMILIES)]
        )
        row = {
            "bird_id": i,
            "name": _bird_name(i),
            "family": family,
            "region": rng.choice(["NA", "EU", "AS", "SA"]),
        }
        for table in ("birds", "birds_v2"):
            oid = db.insert(table, row)
            db.add_annotations_bulk(
                annotation_batch(
                    random.Random(config.seed * 1000 + i),
                    oid,
                    wl,
                    densities[i],
                    table=table,
                )
            )
            # The second revision gains new disease reports on a few birds,
            # so Figure 16 Q2's summary-join finds REVISED_COUNT differences.
            if table == "birds_v2" and i < REVISED_COUNT:
                db.add_annotation(
                    "new avian influenza infection outbreak reported with "
                    "high mortality and visible lesion symptoms",
                    table=table,
                    oid=oid,
                )

    db.create_summary_index("birds", "ClassBird1")
    db.analyze("birds")
    db.analyze("birds_v2")
    return db
