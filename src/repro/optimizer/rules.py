"""Equivalence and transformation rules for summary-based operators (§5.1).

The binder already realizes the classical rewrites the paper treats as
given (σ pushed onto scans — Rules 1 and 9 are therefore satisfied by
construction), so this module contributes the genuinely new rewrites:

* **Rules 2 & 10** — push a summary-based selection S below a (data or
  summary) join, iff its predicate is on instances linked to only one side.
* **Rules 7 & 8** — push a summary-based filter F below a join: content
  predicates to the side owning the instances, structural predicates to
  *both* sides.
* **Rule 11** — switch the order of a data join and a summary join, iff the
  summary predicate's instances are not on the newly-inner relation and the
  data condition does not touch the summary join's other input.
* **Rules 3–6** (order preservation) are not tree rewrites: the planner's
  lowering tracks *interesting orders* produced by Summary-BTree scans and
  eliminates sorts they satisfy.

``apply_rules`` explores the rewrite space to a fixpoint (bounded) and
returns all distinct equivalent plans; the planner costs each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.query.ast import Expr
from repro.query.binder import BindInfo
from repro.query.logical import (
    LogicalJoin,
    LogicalPlan,
    LogicalSummaryFilter,
    LogicalSummaryJoin,
    LogicalSummarySelect,
    aliases_in,
    conjoin,
    instances_in,
    split_conjuncts,
)
from repro.summaries.maintenance import SummaryManager


@dataclass
class RuleContext:
    """Catalog facts rule side-conditions consult."""

    manager: SummaryManager
    info: BindInfo

    def tables_of(self, plan: LogicalPlan) -> set[str]:
        return {self.info.table_of(a).lower() for a in plan.aliases()}

    def instances_on(self, plan: LogicalPlan) -> set[str]:
        """Summary instances linked to any table in ``plan``'s subtree."""
        out: set[str] = set()
        for table in self.tables_of(plan):
            out.update(i.name for i in self.manager.instances_for(table))
        return out

    def predicate_only_on(self, pred: Expr, plan: LogicalPlan) -> bool:
        """Rule 2/7/10 side condition: the predicate's instances are linked
        to ``plan``'s tables and to no other relation in the query."""
        instances = instances_in(pred)
        if not instances:
            return False
        here = self.instances_on(plan)
        if not instances <= here:
            return False
        other_tables = {
            t.lower() for t in self.info.alias_tables.values()
        } - self.tables_of(plan)
        for table in other_tables:
            for inst in self.manager.instances_for(table):
                if inst.name in instances:
                    return False
        # The predicate must also reference only aliases of this side.
        return aliases_in(pred) <= plan.aliases()


def _local_variants(plan: LogicalPlan, ctx: RuleContext) -> Iterator[LogicalPlan]:
    yield from _rule_push_summary_select(plan, ctx)
    yield from _rule_push_summary_filter(plan, ctx)
    yield from _rule_11_join_switch(plan, ctx)


def _rule_push_summary_select(
    plan: LogicalPlan, ctx: RuleContext
) -> Iterator[LogicalPlan]:
    """Rules 2 and 10: S(R ./ S) = S(R) ./ S when p is on instances in R
    only (and symmetrically for the right side)."""
    if not isinstance(plan, LogicalSummarySelect):
        return
    child = plan.child
    if not isinstance(child, (LogicalJoin, LogicalSummaryJoin)):
        return
    conjuncts = split_conjuncts(plan.predicate)
    for side_name in ("left", "right"):
        side = getattr(child, side_name)
        pushable = [p for p in conjuncts if ctx.predicate_only_on(p, side)]
        if not pushable:
            continue
        rest = [p for p in conjuncts if p not in pushable]
        new_side = LogicalSummarySelect(side, conjoin(pushable))
        new_join = child.with_children(
            [new_side, child.right] if side_name == "left"
            else [child.left, new_side]
        )
        if rest:
            yield LogicalSummarySelect(new_join, conjoin(rest))
        else:
            yield new_join


def _rule_push_summary_filter(
    plan: LogicalPlan, ctx: RuleContext
) -> Iterator[LogicalPlan]:
    """Rules 7 and 8: push F below a join — content predicates to the owning
    side, structural predicates to both sides."""
    if not isinstance(plan, LogicalSummaryFilter):
        return
    child = plan.child
    if not isinstance(child, (LogicalJoin, LogicalSummaryJoin)):
        return
    if plan.structural:
        # Rule 8: a structural predicate applies to both inputs.
        new_left = LogicalSummaryFilter(child.left, plan.predicate, structural=True)
        new_right = LogicalSummaryFilter(child.right, plan.predicate, structural=True)
        yield child.with_children([new_left, new_right])
        return
    # Rule 7: a content predicate follows its instances to one side. A bare
    # ObjectFunc predicate names no instance, so this applies only when one
    # side has no summary instances at all.
    for side_name in ("left", "right"):
        side = getattr(child, side_name)
        other = child.right if side_name == "left" else child.left
        if ctx.instances_on(other):
            continue
        new_side = LogicalSummaryFilter(side, plan.predicate)
        yield child.with_children(
            [new_side, child.right] if side_name == "left"
            else [child.left, new_side]
        )


def _rule_11_join_switch(
    plan: LogicalPlan, ctx: RuleContext
) -> Iterator[LogicalPlan]:
    """Rule 11: T ./c J_p(R, S) = J_p((T ./c R), S), iff p is on instances
    not in T and c does not involve S's attributes. Both directions are
    generated so the optimizer can undo a bad initial order."""
    # Direction 1: data join above a summary join -> pull the summary join up.
    if isinstance(plan, LogicalJoin):
        for side_name in ("left", "right"):
            inner = getattr(plan, side_name)
            outer = plan.right if side_name == "left" else plan.left
            if not isinstance(inner, LogicalSummaryJoin):
                continue
            p = inner.predicate
            # p's instances must not be on T (the outer relation).
            if instances_in(p) & ctx.instances_on(outer):
                continue
            # c must not involve S's (inner.right's) attributes.
            if plan.condition is not None and (
                aliases_in(plan.condition) & inner.right.aliases()
            ):
                continue
            new_inner_join = LogicalJoin(inner.left, outer, plan.condition)
            yield LogicalSummaryJoin(
                new_inner_join, inner.right, p, inner.data_condition
            )
    # Direction 2: summary join above a data join -> push the data join up.
    if isinstance(plan, LogicalSummaryJoin):
        left = plan.left
        if isinstance(left, LogicalJoin) and left.condition is not None:
            # J_p((A ./c T), S) -> (J_p(A, S)) ./c T, iff p not on T and c
            # not on S.
            a_side, t_side = left.left, left.right
            if (
                not (instances_in(plan.predicate) & ctx.instances_on(t_side))
                and not (aliases_in(left.condition) & plan.right.aliases())
                and aliases_in(plan.predicate) <= (
                    a_side.aliases() | plan.right.aliases()
                )
            ):
                new_summary_join = LogicalSummaryJoin(
                    a_side, plan.right, plan.predicate, plan.data_condition
                )
                yield LogicalJoin(new_summary_join, t_side, left.condition)


def _variants(plan: LogicalPlan, ctx: RuleContext) -> Iterator[LogicalPlan]:
    """All plans reachable by one rule application anywhere in the tree."""
    yield from _local_variants(plan, ctx)
    for i, child in enumerate(plan.children):
        for variant in _variants(child, ctx):
            children = list(plan.children)
            children[i] = variant
            yield plan.with_children(children)


def _signature(plan: LogicalPlan) -> str:
    return plan.pretty()


def apply_rules(
    plan: LogicalPlan,
    manager: SummaryManager,
    info: BindInfo,
    max_plans: int = 64,
) -> list[LogicalPlan]:
    """Fixpoint exploration of the rule space; returns distinct equivalent
    plans including the original."""
    ctx = RuleContext(manager, info)
    seen = {_signature(plan): plan}
    frontier = [plan]
    while frontier and len(seen) < max_plans:
        next_frontier: list[LogicalPlan] = []
        for candidate in frontier:
            for variant in _variants(candidate, ctx):
                sig = _signature(variant)
                if sig not in seen:
                    seen[sig] = variant
                    next_frontier.append(variant)
        frontier = next_frontier
    return list(seen.values())
