"""Annotation summaries: objects, instances, storage, and maintenance.

This package implements the InsightNotes data model of §2: each data tuple
carries a set of summary objects (Classifier, Snippet, Cluster), created and
incrementally maintained from the raw annotations, stored de-normalized in a
per-table SummaryStorage catalog table, and manipulated at query time by the
propagation algebra (projection elimination, merge under join/aggregation).
"""

from repro.summaries.objects import (
    ClassifierObject,
    ClusterObject,
    SnippetObject,
    SummaryObject,
    SummaryType,
)
from repro.summaries.instances import SummaryInstance
from repro.summaries.storage import SummaryStorage
from repro.summaries.functions import SummarySet
from repro.summaries.maintenance import SummaryManager

__all__ = [
    "SummaryType",
    "SummaryObject",
    "ClassifierObject",
    "SnippetObject",
    "ClusterObject",
    "SummaryInstance",
    "SummaryStorage",
    "SummarySet",
    "SummaryManager",
]
