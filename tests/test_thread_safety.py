"""Race regressions for the shared process-level structures.

Before the concurrency era these were all naked dict read-modify-writes;
each test here drives the exact interleaving that used to lose updates
(or corrupt bookkeeping) and asserts the now-locked structure stays
consistent under real thread pressure:

* :class:`MetricsRegistry` — ``inc`` lost updates, ``snapshot`` during
  a concurrent dict resize;
* :class:`SummaryCache` — store/lookup/epoch-bump races corrupting the
  occupancy accounting or resurrecting stale entries;
* :class:`BufferPool` — concurrent get/mark_dirty/flush corrupting the
  frame map or the LRU order.

Each also asserts its pickle contract: locks are process state and must
drop out of (and be rebuilt after) serialization.
"""

from __future__ import annotations

import pickle
import threading

from repro.cache.summary_cache import SummaryCache
from repro.obs.metrics import MetricsRegistry
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager

THREADS = 8
ROUNDS = 2_000


def run_threads(target, count: int = THREADS, args_for=None) -> None:
    threads = [
        threading.Thread(target=target,
                         args=(args_for(i) if args_for else ()))
        for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not any(t.is_alive() for t in threads)


class TestMetricsRegistry:
    def test_no_lost_increments(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(ROUNDS):
                registry.inc("hot")
                registry.inc("hot", 2)
                registry.add_time("clock", 0.001)

        run_threads(worker)
        assert registry.get("hot") == THREADS * ROUNDS * 3
        assert abs(registry.timers["clock"] - THREADS * ROUNDS * 0.001) < 1e-6

    def test_snapshot_during_concurrent_writes(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        failures: list[str] = []

        def writer(i):
            n = 0
            while not stop.is_set():
                registry.inc(f"key.{i}.{n % 50}")
                n += 1

        def reader():
            try:
                while not stop.is_set():
                    snap = registry.snapshot()
                    assert all(v >= 0 for v in snap.values())
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        stop_timer = threading.Timer(0.5, stop.set)
        stop_timer.start()
        for t in threads:
            t.join(30)
        stop_timer.cancel()
        stop.set()
        assert failures == []

    def test_pickle_roundtrip_keeps_counts(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        registry.add_time("b", 1.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.get("a") == 5
        assert clone.timers["b"] == 1.5
        clone.inc("a")  # the rebuilt lock works
        assert clone.get("a") == 6


class TestSummaryCache:
    def test_concurrent_store_lookup_invalidate(self):
        cache = SummaryCache(capacity_bytes=64 * 1024)
        failures: list[str] = []

        def worker(wid):
            try:
                for i in range(500):
                    oid = (wid * 7 + i) % 40
                    cache.store("t", oid, {"k": i}, size_hint=100)
                    hit, value = cache.lookup("t", oid)
                    if hit:
                        assert isinstance(value, dict)
                    if i % 11 == 0:
                        cache.invalidate("t", oid)
                    if i % 97 == 0:
                        cache.bump_epoch("t")
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        run_threads(worker, args_for=lambda i: (i,))
        assert failures == []
        # Occupancy accounting survived the churn: recount from scratch.
        with cache._mutex:
            recount = sum(size for _v, size, _e in cache._entries.values())
            assert cache.used_bytes == recount
        assert cache.used_bytes <= cache.capacity_bytes

    def test_epoch_bump_racing_store_never_serves_stale(self):
        """A store stamped before a bump must read as a miss after it —
        under the mutex the stamp and the admission are atomic, so the
        'stale value served as fresh' window is structurally gone."""
        cache = SummaryCache(capacity_bytes=64 * 1024)
        failures: list[str] = []
        stop = threading.Event()

        def bumper():
            while not stop.is_set():
                cache.bump_epoch("t", "write")

        def storer():
            try:
                for i in range(2000):
                    epoch_before = cache.epoch("t")
                    cache.store("t", 1, {"v": i}, size_hint=50)
                    hit, value = cache.lookup("t", 1)
                    if hit and cache.epoch("t") == epoch_before:
                        # Unbumped since the store: the value is ours or
                        # a concurrent storer's — never a stale epoch's.
                        assert isinstance(value, dict)
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        bump_thread = threading.Thread(target=bumper)
        store_threads = [threading.Thread(target=storer) for _ in range(3)]
        bump_thread.start()
        for t in store_threads:
            t.start()
        for t in store_threads:
            t.join(60)
        stop.set()
        bump_thread.join(10)
        assert failures == []
        # Entries stamped behind the final epoch read as misses.
        cache.bump_epoch("t")
        hit, _ = cache.lookup("t", 1)
        assert not hit

    def test_pickle_drops_entries_and_rebuilds_mutex(self):
        cache = SummaryCache(capacity_bytes=4096)
        cache.store("t", 1, {"a": 1}, size_hint=10)
        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0 and clone.used_bytes == 0
        clone.store("t", 2, {"b": 2}, size_hint=10)  # rebuilt mutex works
        hit, _ = clone.lookup("t", 2)
        assert hit


class TestBufferPool:
    def test_concurrent_page_traffic(self):
        pool = BufferPool(DiskManager(), capacity=8)
        page_ids = [pool.new_page() for _ in range(32)]
        for pid in page_ids:
            data = pool.get_page(pid)
            data[0:4] = pid.to_bytes(4, "big")
            pool.mark_dirty(pid)
        pool.flush_all()
        failures: list[str] = []

        def worker(wid):
            try:
                for i in range(300):
                    pid = page_ids[(wid * 5 + i) % len(page_ids)]
                    data = pool.get_page(pid)
                    assert int.from_bytes(data[0:4], "big") == pid
                    if i % 7 == 0:
                        pool.mark_dirty(pid)
                    if i % 31 == 0:
                        pool.flush_page(pid)
            except Exception as exc:  # pragma: no cover
                failures.append(repr(exc))

        run_threads(worker, args_for=lambda i: (i,))
        assert failures == []
        pool.flush_all()
        # Every page still carries its id: no write went to a torn frame.
        for pid in page_ids:
            assert int.from_bytes(pool.get_page(pid)[0:4], "big") == pid
        assert len(pool._frames) <= pool.capacity

    def test_pickle_rebuilds_latch(self):
        pool = BufferPool(DiskManager(), capacity=4)
        pid = pool.new_page()
        pool.flush_all()
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.get_page(pid) is not None  # rebuilt latch works
