"""The WAL writer.

One :class:`WALWriter` sits between the database's mutating statement
paths and a log device. It owns the LSN counter (byte offsets into the
logical log stream), frames records, and tracks the *flushed* LSN — the
boundary the buffer pool's log-before-data rule compares page LSNs
against: a dirty page whose ``page_lsn`` exceeds ``flushed_lsn`` must not
be written back until the log has been flushed past it.
"""

from __future__ import annotations

from repro.errors import WALError
from repro.obs.metrics import MetricsRegistry
from repro.wal.record import WALRecordType, encode_record


class WALWriter:
    """Appends framed records to a log device and tracks durability."""

    def __init__(self, device, metrics: MetricsRegistry | None = None):
        self.device = device
        self.metrics = metrics
        #: LSN the next record will be assigned (device append position).
        self._next_lsn = device.base_lsn + device.total_len
        #: LSN up to which the log is durable (device sync position).
        self._flushed_lsn = device.base_lsn + device.durable_len
        #: Attached replication streams: stream id -> cumulatively acked
        #: LSN. A registered stream pins log retention (see
        #: :meth:`truncate`) until it acks past the checkpoint or
        #: detaches.
        self._streams: dict[str, int] = {}
        #: Log segments retained past checkpoint for slow streams, as
        #: ``(base_lsn, data)`` in ascending, contiguous LSN order. The
        #: live device's durable bytes always follow the last segment.
        self._segments: list[tuple[int, bytes]] = []

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def _inc(self, key: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(key, amount)

    def append(self, rtype: int, payload: dict, stmt_id: int = 0,
               txn_id: int = 0) -> int:
        """Frame and append one record; returns its LSN.

        The record is buffered, not durable — call :meth:`sync` (or rely
        on the statement-boundary sync) to force it to the device.
        ``txn_id`` stamps the record as part of an explicit transaction's
        commit group (0 = autocommit).
        """
        if rtype not in WALRecordType.ALL:
            raise WALError(f"unknown WAL record type {rtype}")
        lsn = self._next_lsn
        frame = encode_record(lsn, rtype, stmt_id, payload, txn_id=txn_id)
        self.device.append(frame)
        self._next_lsn = lsn + len(frame)
        self._inc("wal.records")
        self._inc(f"wal.records.{WALRecordType.NAMES[rtype]}")
        self._inc("wal.bytes", len(frame))
        return lsn

    def sync(self) -> None:
        """fsync the log: every appended record becomes durable."""
        self.device.sync()
        self._flushed_lsn = self._next_lsn
        self._inc("wal.syncs")

    def flush(self, upto_lsn: int | None = None) -> None:
        """Force the log durable at least through ``upto_lsn``.

        This is the buffer pool's log-before-data hook: called before
        writing back a dirty page whose ``page_lsn`` is beyond the
        flushed tail. Counted separately (``wal.forced_flushes``) so the
        observability layer can show how often data pressure forces log
        I/O ahead of the statement-boundary sync.
        """
        if upto_lsn is None:
            upto_lsn = self._next_lsn
        if upto_lsn <= self._flushed_lsn:
            return
        self.device.sync()
        self._flushed_lsn = self._next_lsn
        self._inc("wal.forced_flushes")

    def truncate(self, new_base: int) -> None:
        """Discard the log through ``new_base`` (checkpoint protocol).

        ``new_base`` must be at the current append position — checkpoints
        truncate the *whole* log after the image rename lands, so the new
        base is exactly ``next_lsn``.

        If a replication stream is attached whose acked LSN trails
        ``new_base``, the durable bytes are *retained* as an in-memory
        segment instead of discarded, so a slow replica never falls off
        the log: :meth:`read_stream` keeps serving the retained range
        until every stream acks past it (or detaches).
        """
        if new_base != self._next_lsn:
            raise WALError(
                f"checkpoint truncation must land at next_lsn="
                f"{self._next_lsn}, not {new_base}"
            )
        min_acked = self.min_stream_lsn()
        if min_acked is not None and min_acked < new_base:
            data = self.device.durable()
            if data:
                self._segments.append((self.device.base_lsn, data))
        self.device.truncate(new_base)
        self._flushed_lsn = new_base
        self._inc("wal.truncations")
        self._gc_segments()

    # -- replication streams -------------------------------------------------

    def register_stream(self, stream_id: str, from_lsn: int) -> None:
        """Attach a replication stream whose next needed byte is
        ``from_lsn``. Registration is sticky across link failures — the
        stream keeps pinning retention until :meth:`unregister_stream`."""
        self._streams[stream_id] = from_lsn
        self._set_stream_gauges()

    def ack_stream(self, stream_id: str, lsn: int) -> None:
        """Advance a stream's cumulative ack (monotonic); frees retained
        segments every stream has consumed."""
        current = self._streams.get(stream_id)
        if current is None or lsn > current:
            self._streams[stream_id] = lsn
        self._gc_segments()

    def unregister_stream(self, stream_id: str) -> None:
        self._streams.pop(stream_id, None)
        self._gc_segments()

    def min_stream_lsn(self) -> int | None:
        """The lowest acked LSN across attached streams (None if none)."""
        if not self._streams:
            return None
        return min(self._streams.values())

    @property
    def stream_acks(self) -> dict[str, int]:
        return dict(self._streams)

    @property
    def retained_base(self) -> int:
        """The lowest LSN still readable via :meth:`read_stream`."""
        if self._segments:
            return self._segments[0][0]
        return self.device.base_lsn

    @property
    def retained_bytes(self) -> int:
        return sum(len(data) for _, data in self._segments)

    def _gc_segments(self) -> None:
        min_acked = self.min_stream_lsn()
        if min_acked is None:
            self._segments.clear()
        else:
            while self._segments:
                base, data = self._segments[0]
                if base + len(data) <= min_acked:
                    self._segments.pop(0)
                else:
                    break
        self._set_stream_gauges()

    def _set_stream_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("wal.streams", len(self._streams))
            self.metrics.set_gauge(
                "wal.retained_bytes", self.retained_bytes
            )

    def read_stream(self, from_lsn: int, max_bytes: int) -> tuple[bytes, str]:
        """Read up to ``max_bytes`` of durable log starting at ``from_lsn``.

        Returns ``(data, status)`` where status is ``"ok"`` or
        ``"too_old"`` (the requested range predates everything retained —
        the reader must re-bootstrap from a fresh snapshot). Only durable
        bytes are served; the slice may end mid-frame, which readers
        handle via the torn-tail scan contract.
        """
        if from_lsn < self.retained_base:
            return b"", "too_old"
        if from_lsn >= self._flushed_lsn:
            return b"", "ok"
        end = min(from_lsn + max_bytes, self._flushed_lsn)
        out = bytearray()
        pieces = list(self._segments)
        pieces.append((self.device.base_lsn, self.device.durable()))
        for base, data in pieces:
            piece_end = base + len(data)
            lo = max(from_lsn + len(out), base)
            if lo >= end:
                break
            if lo >= piece_end:
                continue
            hi = min(end, piece_end)
            out.extend(data[lo - base:hi - base])
        return bytes(out), "ok"
