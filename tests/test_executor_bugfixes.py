"""Regression tests for the executor-correctness bugfix sweep.

Four historical crashes, each now a typed :class:`QueryError` (or simply
correct behaviour):

* ``_SortKey.__lt__`` let a raw ``TypeError`` escape on cross-type sort
  keys instead of wrapping it like ``_compare`` does,
* external-sort spills round-tripped tuples through JSON, silently
  list-ifying tuples and crashing on ``bytes`` values,
* ``GroupOp``/``DistinctOp`` crashed with an unhandled ``TypeError`` on
  unhashable key values, and
* ``EvalContext._raw_cache`` grew without bound.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Iterator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.errors import QueryError
from repro.query.ast import ColumnRef
from repro.query.eval import EvalContext
from repro.query.physical.base import PhysicalOperator
from repro.query.physical.transforms import (
    DistinctOp,
    GroupOp,
    SortOp,
    _hashable,
    _SortKey,
)
from repro.query.tuples import QTuple
from repro.summaries.functions import SummarySet
from repro.summaries.objects import SnippetObject


class ListSource(PhysicalOperator):
    """Leaf operator over pre-built tuples (test stub)."""

    def __init__(self, rows: list[QTuple]):
        self.data = rows

    @property
    def children(self):
        return []

    def _produce(self) -> Iterator[QTuple]:
        return iter(self.data)

    def label(self) -> str:
        return f"ListSource({len(self.data)})"


def _row(columns, values, summary_sets=None, provenance=None):
    return QTuple(list(columns), list(values), summary_sets or {},
                  provenance or {})


def _ctx(pool=None):
    """The minimal ExecContext surface the transform operators touch."""
    return SimpleNamespace(
        eval_ctx=EvalContext(),
        catalog=SimpleNamespace(pool=pool),
    )


class NoHash:
    __hash__ = None

    def __repr__(self):
        return "NoHash()"


# -- _SortKey ---------------------------------------------------------------


class TestSortKeyComparison:
    def test_cross_type_keys_raise_query_error(self):
        a = _SortKey([1], ["ASC"])
        b = _SortKey(["x"], ["ASC"])
        with pytest.raises(QueryError, match="cannot compare sort keys"):
            a < b

    def test_cross_type_keys_through_sort_operator(self):
        rows = [_row(["k"], [1]), _row(["k"], ["x"])]
        op = SortOp(_ctx(), ListSource(rows), [(ColumnRef(None, "k"), "ASC")])
        with pytest.raises(QueryError, match="cannot compare sort keys"):
            list(op.rows())

    def test_none_ordering_still_works(self):
        rows = [_row(["k"], [3]), _row(["k"], [None]), _row(["k"], [1])]
        op = SortOp(_ctx(), ListSource(rows), [(ColumnRef(None, "k"), "ASC")])
        assert [r.values[0] for r in op.rows()] == [None, 1, 3]


# -- spill round-trip -------------------------------------------------------


SPILL_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.tuples(st.integers(), st.text(max_size=5)),
)


class TestSpillRoundTrip:
    @given(values=st.lists(SPILL_VALUES, min_size=1, max_size=6))
    def test_values_round_trip_type_faithfully(self, values):
        columns = [f"c{i}" for i in range(len(values))]
        row = _row(columns, values, provenance={"t": ("t", 7)})
        back = QTuple.from_bytes(row.to_bytes())
        assert back.columns == row.columns
        assert back.values == row.values
        assert [type(v) for v in back.values] == [type(v) for v in values]
        assert back.provenance == row.provenance

    def test_shared_summary_set_identity_survives(self):
        sset = SummarySet()
        sset.add(SnippetObject("T", 1, snippets={1: "snippet one"}))
        row = _row(["a"], [1], summary_sets={"r": sset, "s": sset})
        back = QTuple.from_bytes(row.to_bytes())
        assert len(back.distinct_summary_sets()) == 1
        assert back.merged_summary_set().to_display() == \
            row.merged_summary_set().to_display()

    @given(
        keys=st.lists(
            st.one_of(st.none(), st.integers(0, 9)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_external_sort_matches_in_memory_sort(self, keys):
        pool = Database(buffer_pages=64).pool
        sset = SummarySet()
        sset.add(SnippetObject("T", 1, snippets={1: "shared snippet"}))
        rows = [
            _row(
                ["k", "payload"], [k, bytes([i])],
                summary_sets={"r": sset, "s": sset},
                provenance={"r": ("t", i)},
            )
            for i, k in enumerate(keys)
        ]
        sort_keys = [(ColumnRef(None, "k"), "ASC")]
        mem = list(SortOp(
            _ctx(), ListSource(rows), sort_keys, method="mem"
        ).rows())
        disk = list(SortOp(
            _ctx(pool), ListSource(rows), sort_keys, method="disk",
            run_size=4,
        ).rows())
        assert [r.values for r in disk] == [r.values for r in mem]
        assert [type(r.values[1]) for r in disk] == [bytes] * len(keys)
        assert [r.provenance for r in disk] == [r.provenance for r in mem]
        for d, m in zip(disk, mem):
            assert len(d.distinct_summary_sets()) == 1
            assert d.merged_summary_set().to_display() == \
                m.merged_summary_set().to_display()


# -- Group / Distinct on unhashable keys ------------------------------------


class TestUnhashableKeys:
    def test_group_by_list_key_groups_structurally(self):
        rows = [
            _row(["k"], [[1, 2]]),
            _row(["k"], [[1, 2]]),
            _row(["k"], [[3]]),
        ]
        op = GroupOp(_ctx(), ListSource(rows), [ColumnRef(None, "k")], [])
        out = list(op.rows())
        # Two groups, and the emitted key is the *original* value.
        assert [r.values[0] for r in out] == [[1, 2], [3]]

    def test_group_by_unhashable_raises_query_error(self):
        rows = [_row(["k"], [NoHash()])]
        op = GroupOp(_ctx(), ListSource(rows), [ColumnRef(None, "k")], [])
        with pytest.raises(QueryError, match="cannot group or deduplicate"):
            list(op.rows())

    def test_distinct_on_list_values_deduplicates(self):
        rows = [
            _row(["k"], [[1, 2]]),
            _row(["k"], [[1, 2]]),
            _row(["k"], [[2, 1]]),
        ]
        out = list(DistinctOp(_ctx(), ListSource(rows)).rows())
        assert [r.values[0] for r in out] == [[1, 2], [2, 1]]

    def test_distinct_on_unhashable_raises_query_error(self):
        rows = [_row(["k"], [NoHash()])]
        op = DistinctOp(_ctx(), ListSource(rows))
        with pytest.raises(QueryError, match="cannot group or deduplicate"):
            list(op.rows())

    def test_hashable_normalizes_containers(self):
        assert _hashable([1, [2, 3]]) == (1, (2, 3))
        assert _hashable(bytearray(b"ab")) == b"ab"
        assert _hashable({1, 2}) == frozenset({1, 2})
        assert _hashable({"b": [1], "a": 2}) == (("a", 2), ("b", (1,)))
        assert _hashable("plain") == "plain"


# -- EvalContext raw-text cache bound ---------------------------------------


class _StubAnnotations:
    def texts(self, ann_ids):
        return [f"text-{a}" for a in ann_ids]


class TestRawCacheBound:
    def test_cache_never_exceeds_bound(self):
        ctx = EvalContext(
            manager=SimpleNamespace(annotations=_StubAnnotations()),
            raw_cache_max=4,
        )
        for start in range(0, 100, 3):
            ids = list(range(start, start + 3))
            assert ctx.raw_texts(ids) == [f"text-{a}" for a in ids]
            assert len(ctx._raw_cache) <= 4
        # One oversized ask still answers correctly, then trims.
        big = list(range(200, 220))
        assert ctx.raw_texts(big) == [f"text-{a}" for a in big]
        assert len(ctx._raw_cache) <= 4
