"""Resilience overhead — cost of always-on robustness (no paper figure).

Every statement now runs with the resilience layer engaged: page I/O goes
through the DiskGuard (retry + circuit breaker) and ``execute(timeout=)``
additionally threads an ExecutionContext through every physical operator,
checking the deadline/cancel flag at each 64-row batch boundary.  This
bench prices that on the paper's hottest read path — the Figure-10 SP
query (``Disease = c`` at 1% selectivity, Summary-BTree access) on a warm
buffer pool — comparing a plain ``db.sql()`` run against the same query
through ``db.execute(timeout=...)``.

Acceptance target: < 5% wall-clock overhead (plus a 2 ms noise floor at
quick scale, where runs are sub-millisecond).

It also pins the fast-path guarantees the resilience design promises on
healthy hardware: a warm run performs **zero** retries, records zero
failures, and leaves the circuit breaker closed — the layer must be free
when nothing is wrong.
"""

import pytest

from repro.bench import FigureTable, cached_database, measure
from repro.bench.queries import equality_constant, sp_equality_query

DENSITIES = [10, 50, 200]
REPEAT = 5


@pytest.mark.benchmark(group="resilience-overhead")
@pytest.mark.parametrize("density", DENSITIES)
def test_resilience_overhead(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both", cell_fraction=0.0,
    )
    constant = equality_constant(db, "Disease", 0.01)
    query = sp_equality_query("Disease", constant)
    db.options.index_scheme = "summary_btree"
    db.options.force_access = "index"
    try:
        db.sql(query)  # warm the buffer pool before either series
        before = db.metrics.snapshot()

        def run_both():
            plain = measure(db, lambda: db.sql(query), repeat=REPEAT)
            checked = measure(
                db, lambda: db.execute(query, timeout=3600.0), repeat=REPEAT
            )
            return plain, checked

        plain, checked = benchmark.pedantic(run_both, rounds=1, iterations=1)
        delta = db.metrics.delta(db.metrics.snapshot(), before)
    finally:
        db.options.force_access = None

    # Fast-path guard: warm runs against a healthy disk must be retry-free
    # with the breaker closed — the resilience layer is free when nothing
    # is wrong.
    assert delta.get("resilience.retries", 0) == 0
    assert delta.get("resilience.failures", 0) == 0
    assert delta.get("resilience.timeouts", 0) == 0
    assert db.guard.breaker.state_code == 0  # closed

    # Deadline checkpoints cost < 5% (2 ms floor absorbs timer noise on
    # the sub-millisecond quick-scale runs).
    assert checked.seconds <= plain.seconds * 1.05 + 0.002, (
        f"deadline checkpoints cost {checked.millis - plain.millis:.3f} ms "
        f"over {plain.millis:.3f} ms"
    )

    table = figure_writer.setdefault(
        "resilience_overhead",
        FigureTable(
            "Resilience overhead — Fig-10 SP query, warm pool",
            unit="ms",
        ),
    )
    x = preset.label(density)
    table.add("plain sql()", x, plain.millis)
    table.add("execute(timeout=)", x, checked.millis)
    if density == max(d for d in DENSITIES if d in preset.densities):
        overhead = table.mean_ratio("execute(timeout=)", "plain sql()") - 1
        table.note(
            f"deadline/cancel checkpoints add {overhead:+.1%} wall time"
            "  [target: < 5%]"
        )
