"""Expression-evaluation semantics: comparisons, LIKE, boolean logic,
NULL handling, summary-expression dispatch, and error paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.ast import (
    And,
    ColumnRef,
    Comparison,
    FuncCall,
    Literal,
    Not,
    Or,
    SummaryExpr,
)
from repro.query.eval import EvalContext, evaluate, like_match
from repro.query.tuples import QTuple
from repro.summaries.functions import SummarySet
from repro.summaries.objects import ClassifierObject


def row(**values) -> QTuple:
    return QTuple(list(values), list(values.values()))


def lit(v):
    return Literal(v)


def col(name):
    return ColumnRef(None, name)


class TestLikeMatch:
    def test_percent_wildcard(self):
        assert like_match("Swan Goose", "Swan%")
        assert not like_match("Goose Swan", "Swan%")

    def test_star_alias(self):
        # The paper's Q1 writes "Swan*".
        assert like_match("Swan Goose", "Swan*")

    def test_underscore_single_char(self):
        assert like_match("cat", "c_t")
        assert not like_match("cart", "c_t")

    def test_case_insensitive(self):
        assert like_match("SWAN", "swan")

    def test_regex_metacharacters_escaped(self):
        assert like_match("a.b", "a.b")
        assert not like_match("axb", "a.b")

    @given(st.text(min_size=0, max_size=20))
    def test_full_wildcard_matches_everything(self, s):
        assert like_match(s, "%")

    @given(st.text(alphabet="abc", min_size=1, max_size=10))
    def test_exact_pattern_matches_itself(self, s):
        assert like_match(s, s)


class TestComparisons:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("=", 3, 3, True), ("=", 3, 4, False),
        ("<>", 3, 4, True), ("<>", 3, 3, False),
        ("<", 1, 2, True), ("<=", 2, 2, True),
        (">", 2, 1, True), (">=", 1, 2, False),
    ])
    def test_numeric_ops(self, op, a, b, expected):
        expr = Comparison(op, lit(a), lit(b))
        assert evaluate(expr, row()) is expected

    def test_string_comparison(self):
        assert evaluate(Comparison("<", lit("abc"), lit("abd")), row())

    def test_null_comparisons_false(self):
        for op in ("=", "<>", "<", ">"):
            assert evaluate(Comparison(op, lit(None), lit(1)), row()) is False
            assert evaluate(Comparison(op, lit(1), lit(None)), row()) is False

    def test_type_mismatch_raises(self):
        with pytest.raises(QueryError):
            evaluate(Comparison("<", lit("x"), lit(1)), row())

    def test_column_reference(self):
        expr = Comparison("=", col("a"), lit(5))
        assert evaluate(expr, row(a=5))
        assert not evaluate(expr, row(a=6))


class TestBooleanLogic:
    def test_and_all_required(self):
        t, f = Comparison("=", lit(1), lit(1)), Comparison("=", lit(1), lit(2))
        assert evaluate(And((t, t)), row())
        assert not evaluate(And((t, f)), row())

    def test_or_any_suffices(self):
        t, f = Comparison("=", lit(1), lit(1)), Comparison("=", lit(1), lit(2))
        assert evaluate(Or((f, t)), row())
        assert not evaluate(Or((f, f)), row())

    def test_not(self):
        t = Comparison("=", lit(1), lit(1))
        assert not evaluate(Not(t), row())

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_and_or_match_python_semantics(self, bits):
        items = tuple(
            Comparison("=", lit(1), lit(1 if b else 2)) for b in bits
        )
        assert evaluate(And(items), row()) == all(bits)
        assert evaluate(Or(items), row()) == any(bits)


class TestSummaryExpressions:
    def make_row(self):
        obj = ClassifierObject(instance_name="C", tuple_id=0,
                               labels=["Disease", "Other"])
        obj.add_annotation(1, "Disease", ())
        obj.add_annotation(2, "Disease", ())
        obj.add_annotation(3, "Other", ())
        sset = SummarySet({"C": obj})
        return QTuple(["r.name"], ["bird"], {"r": sset}, {"r": ("t", 0)})

    def expr(self, chain):
        return SummaryExpr("r", tuple(chain))

    def test_get_size_on_set(self):
        e = self.expr([FuncCall("getSize", ())])
        assert evaluate(e, self.make_row()) == 1

    def test_get_label_value_chain(self):
        e = self.expr([
            FuncCall("getSummaryObject", ("C",)),
            FuncCall("getLabelValue", ("Disease",)),
        ])
        assert evaluate(e, self.make_row()) == 2

    def test_get_label_value_by_index(self):
        e = self.expr([
            FuncCall("getSummaryObject", ("C",)),
            FuncCall("getLabelValue", (1,)),
        ])
        assert evaluate(e, self.make_row()) == 1  # "Other"

    def test_get_label_name(self):
        e = self.expr([
            FuncCall("getSummaryObject", ("C",)),
            FuncCall("getLabelName", (0,)),
        ])
        assert evaluate(e, self.make_row()) == "Disease"

    def test_missing_instance_yields_null(self):
        e = self.expr([
            FuncCall("getSummaryObject", ("NoSuch",)),
            FuncCall("getLabelValue", ("Disease",)),
        ])
        # getSummaryObject returns Null for unknown names (§3.1); chained
        # access propagates the NULL rather than crashing.
        assert evaluate(e, self.make_row()) is None

    def test_null_summary_comparison_is_false(self):
        e = Comparison(
            ">",
            self.expr([
                FuncCall("getSummaryObject", ("NoSuch",)),
                FuncCall("getLabelValue", ("Disease",)),
            ]),
            lit(0),
        )
        assert evaluate(e, self.make_row()) is False

    def test_unknown_function_raises(self):
        e = self.expr([FuncCall("frobnicate", ())])
        with pytest.raises(QueryError):
            evaluate(e, self.make_row())

    def test_object_get_size(self):
        e = self.expr([
            FuncCall("getSummaryObject", ("C",)),
            FuncCall("getSize", ()),
        ])
        assert evaluate(e, self.make_row()) == 2  # two labels in Rep[]


class TestErrorPaths:
    def test_aggregate_outside_group_by(self):
        from repro.query.ast import AggCall

        with pytest.raises(QueryError):
            evaluate(AggCall("COUNT", None), row())

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            evaluate(col("missing"), row(a=1))
