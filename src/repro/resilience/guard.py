"""The retry + breaker wrapper around device operations.

A :class:`DiskGuard` is attached to the buffer pool (``pool.guard``) and
owns one :class:`~repro.resilience.retry.RetryPolicy` and one
:class:`~repro.resilience.breaker.CircuitBreaker`. Every page read/write
that crosses the pool↔disk boundary runs through :meth:`call`:

1. the breaker admits or fast-fails the call (open state),
2. the operation runs; a transient failure is retried up to the policy's
   budget with seeded exponential backoff,
3. the breaker records the outcome — success (including a recovered
   retry) closes/holds it closed, a final device failure counts toward
   opening it.

The guard deliberately wraps the *pool-side* of the boundary rather than
proxying the DiskManager: ``install_faults``/``remove_faults`` swap the
``db.disk``/``db.pool.disk`` objects underneath a live database, and a
disk proxy would be silently detached by that swap. The pool (and the
integrity/repair direct-read paths) call through whatever disk is current.

Retried reads keep the engine's exact-I/O accounting intact: a faulted
read raises *before* the disk counts it, so a recovered operation counts
exactly one successful I/O — the same as a fault-free run.
"""

from __future__ import annotations

import time

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy, is_transient


class DiskGuard:
    """Retry + circuit-breaker wrapper for device operations."""

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        metrics=None,
        sleep=time.sleep,
    ):
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(metrics=metrics)
        self.metrics = metrics
        self.sleep = sleep

    def call(self, op: str, fn, also_transient: tuple = ()):
        """Run ``fn`` under the breaker and the retry budget.

        ``op`` labels the operation for metrics (``read``/``write``).
        ``also_transient`` extends the retryable classification for calls
        whose retry genuinely re-fetches (the pool's verified read treats
        :class:`~repro.errors.CorruptPageError` as retryable, since a
        re-read heals transient rot).
        """
        self.breaker.before_call()
        attempt = 1
        while True:
            try:
                result = fn()
            except Exception as exc:
                if (
                    attempt < self.policy.max_attempts
                    and is_transient(exc, also=also_transient)
                ):
                    if self.metrics is not None:
                        self.metrics.inc("resilience.retries")
                        self.metrics.inc(f"resilience.retries.{op}")
                    delay = self.policy.delay(attempt)
                    if delay > 0:
                        self.sleep(delay)
                    attempt += 1
                    continue
                self.breaker.record_failure(exc)
                if self.metrics is not None:
                    self.metrics.inc("resilience.failures")
                raise
            else:
                self.breaker.record_success()
                if attempt > 1 and self.metrics is not None:
                    self.metrics.inc("resilience.recovered")
                return result

    # -- convenience wrappers (integrity / repair direct device access) ------

    def read_page(self, disk, page_id: int):
        return self.call("read", lambda: disk.read_page(page_id))

    def write_page(self, disk, page_id: int, data) -> None:
        self.call("write", lambda: disk.write_page(page_id, data))
