"""Figure 12 — propagation cost of normalized vs. de-normalized storage.

Paper: same query as Figure 11, but here the Baseline scheme must also
*re-assemble* the summary objects from their normalized primitives for
propagation (instead of reading them from the de-normalized
R_SummaryStorage).  That makes it ≈7× slower than the Summary-BTree
scheme, which propagates straight from the de-normalized heap.
"""

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import range_bounds, two_predicate_query

CASES = {
    # scheme, normalized_propagation
    "Summary-BTree De-Normalized Prop.": ("summary_btree", False),
    "Baseline Normalized Propagation": ("baseline", True),
}


@pytest.mark.benchmark(group="fig12-propagation")
@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("density", [10, 25, 50, 100, 200])
def test_propagation(benchmark, case, label, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both", cell_fraction=0.0,
    )
    db.create_normalized_replicas("birds")  # no-op when already built
    lo, hi = range_bounds(db, "Anatomy", 0.05)
    query = two_predicate_query(lo, hi, "experiment", "wikipedia")
    scheme, normalized = CASES[label]
    db.options.index_scheme = scheme
    db.options.normalized_propagation = normalized
    db.options.force_access = "index"
    try:
        m = case(db, lambda: db.sql(query))
    finally:
        db.options.index_scheme = "summary_btree"
        db.options.normalized_propagation = False
        db.options.force_access = None

    table = figure_writer.setdefault(
        "fig12_propagation",
        FigureTable(
            "Figure 12 — summary propagation under the two storage schemes",
            unit="ms",
        ),
    )
    table.add_measurement(label, preset.label(density), m)
    pages = figure_writer.setdefault(
        "fig12_propagation_pages",
        FigureTable(
            "Figure 12 (companion) — logical page accesses", unit="pages"
        ),
    )
    pages.add(label, preset.label(density), m.pages)
    if len(table.cells) == len(CASES) * len(preset.densities):
        table.note_ratio(
            "Baseline Normalized Propagation",
            "Summary-BTree De-Normalized Prop.",
            "about 7x",
        )
        pages.note_ratio(
            "Baseline Normalized Propagation",
            "Summary-BTree De-Normalized Prop.",
            "about 7x",
        )
