"""Tests for the ResultSet surface — what downstream users consume."""

import pytest

from repro import Column, Database, ValueType


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table("t", [
        Column("name", ValueType.TEXT),
        Column("score", ValueType.INT),
    ])
    database.create_classifier_instance(
        "C", ["Yes", "No"],
        [("good fine yes great", "Yes"), ("bad no terrible", "No")],
    )
    database.manager.link("t", "C")
    for i, name in enumerate(["alpha", "beta", "gamma"]):
        oid = database.insert("t", {"name": name, "score": i * 10})
        database.add_annotation("good fine great", table="t", oid=oid)
    return database


class TestResultSet:
    def test_len_and_iter(self, db):
        result = db.sql("Select name From t")
        assert len(result) == 3
        assert len(list(result)) == 3

    def test_rows_as_dicts(self, db):
        result = db.sql("Select name, score From t Order By score")
        assert result.rows[0] == {"name": "alpha", "score": 0}
        assert result.rows[-1]["score"] == 20

    def test_column_accessor(self, db):
        result = db.sql("Select name From t Order By name")
        assert result.column("name") == ["alpha", "beta", "gamma"]

    def test_scalar(self, db):
        assert db.sql("Select count(*) n From t").scalar() == 3

    def test_scalar_rejects_multirow(self, db):
        with pytest.raises(ValueError):
            db.sql("Select name From t").scalar()

    def test_summaries_display(self, db):
        result = db.sql("Select name From t Where name = 'alpha'")
        display = result.summaries(0)
        assert display["C"] == [("Yes", 1), ("No", 0)]

    def test_to_table_renders_all_columns(self, db):
        text = db.sql("Select name, score From t").to_table()
        assert "name" in text and "score" in text
        assert "alpha" in text

    def test_to_table_truncates(self, db):
        text = db.sql("Select name From t").to_table(max_rows=1)
        assert "(3 rows total)" in text

    def test_stats_present_after_execution(self, db):
        result = db.sql("Select name From t")
        assert "elapsed_s" in result.stats
        assert "plan" in result.stats
        assert result.stats["io_reads"] >= 0

    def test_empty_result_keeps_columns(self, db):
        result = db.sql("Select name From t Where name = 'nope'")
        assert len(result) == 0
        assert result.columns  # projection headers survive empty results
