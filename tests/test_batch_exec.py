"""Vectorized batch execution (DESIGN.md §5f).

The acceptance property: batch mode (``Database(batch_exec=True)`` /
``REPRO_BATCH_EXEC``) is observably identical to tuple mode — same rows
in the same order, same propagated summaries, same EXPLAIN ANALYZE
per-operator row counts — across every operator shape and access path,
while deadlines and cancellation keep firing at batch boundaries.

Also unit-covers the :mod:`repro.query.batch` carriers and the storage
layer's raw ``label_count`` fast path against its full-parse oracle.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import QueryCancelledError, QueryError, QueryTimeoutError
from repro.query.batch import Batch, batches_from_rows, rows_from_batches
from repro.query.parser import parse_sql
from repro.query.tuples import QTuple
from repro.resilience import ExecutionContext
from repro.summaries.storage import _parsed_label_count, _raw_label_count
from repro.workload.generator import WorkloadConfig, build_database

SP_QUERY = (
    "Select common_name From birds r Where "
    "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"
)

# One query per operator shape (mirrors test_resilience.OPERATOR_QUERIES):
# seq scan, data filter, summary predicates (>, =), summary order-by,
# group/aggregate, distinct, limit, data join, join + summary predicate.
OPERATOR_QUERIES = [
    "Select common_name From birds r",
    "Select common_name From birds r Where r.aou_id > 10005",
    SP_QUERY,
    ("Select common_name From birds r Where "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') = 3"),
    ("Select common_name From birds r Order By "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease')"),
    "Select family, count(*) From birds Group By family",
    "Select Distinct family From birds",
    "Select common_name From birds Limit 5",
    ("Select r.common_name, s.synonym From birds r, synonyms s "
     "Where r.oid = s.bird_id"),
    ("Select r.common_name From birds r, synonyms s "
     "Where r.oid = s.bird_id And "
     "r.$.getSummaryObject('ClassBird1').getLabelValue('Disease') > 0"),
]

MODES = {
    "noindex": ("none", False),
    "summary_btree": ("summary_btree", False),
    "baseline": ("baseline", False),
    "baseline_normalized": ("baseline", True),
}


@pytest.fixture(scope="module")
def db():
    database = build_database(WorkloadConfig(
        num_birds=30, annotations_per_tuple=20, indexes="both",
        cell_fraction=0.0, seed=6,
    ))
    database.create_normalized_replicas("birds")
    return database


@pytest.fixture(autouse=True)
def _tuple_mode(db):
    """Every test starts and ends in tuple mode with default options."""
    db.batch_exec = False
    yield
    db.batch_exec = False
    db.options.force_access = None
    db.options.index_scheme = "summary_btree"
    db.options.normalized_propagation = False


def snapshot(result):
    """Order-sensitive observable output: values + summary displays."""
    return [
        (
            tuple(result.columns),
            tuple(str(v) for v in t.values),
            json.dumps(t.merged_summary_set().to_display(),
                       sort_keys=True, default=str),
        )
        for t in result.tuples
    ]


def run_mode(db, sql, batch: bool):
    db.batch_exec = batch
    try:
        return snapshot(db.sql(sql))
    finally:
        db.batch_exec = False


class TestModeEquivalence:
    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_rows_and_summaries_identical(self, db, sql):
        assert run_mode(db, sql, True) == run_mode(db, sql, False)

    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_explain_analyze_row_counts_identical(self, db, sql):
        def counts(batch):
            db.batch_exec = batch
            try:
                report = db.sql(f"Explain Analyze {sql}")
            finally:
                db.batch_exec = False
            return [
                (op["label"], op["rows"])
                for op in report.execution["operators"]
            ]

        got, expected = counts(True), counts(False)
        if "Limit" in sql:
            # Below a Limit, batch mode legitimately over-produces: the
            # scan emits a whole batch where tuple mode pulls row-by-row.
            # The plan's output (the pre-order root) must still agree.
            assert got[0] == expected[0]
        else:
            assert got == expected

    @pytest.mark.parametrize("mode", list(MODES))
    def test_access_paths_agree_under_batch_mode(self, db, mode):
        scheme, normalized = MODES[mode]
        baseline = run_mode(db, SP_QUERY, False)
        db.options.index_scheme = scheme
        db.options.normalized_propagation = normalized
        db.options.force_access = "index" if scheme != "none" else None
        got = run_mode(db, SP_QUERY, True)
        assert sorted(got) == sorted(baseline)

    def test_dml_equivalent_in_batch_mode(self):
        def run(batch: bool) -> list:
            database = build_database(WorkloadConfig(
                num_birds=12, annotations_per_tuple=5, indexes="both",
                cell_fraction=0.0, seed=9,
            ))
            database.batch_exec = batch
            updated = database.sql(
                "Update birds Set family = 'X' Where aou_id > 10005"
            )
            deleted = database.sql("Delete From birds Where aou_id <= 10002")
            rows = snapshot(database.sql(
                "Select aou_id, family From birds Order By aou_id"
            ))
            return [updated, deleted, rows]

        assert run(True) == run(False)


class TestBatchModeResilience:
    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_zero_timeout_trips_first_checkpoint(self, db, sql):
        db.batch_exec = True
        with pytest.raises(QueryTimeoutError) as err:
            db.execute(sql, timeout=0)
        assert err.value.partial["checks"] >= 1

    @pytest.mark.parametrize("sql", OPERATOR_QUERIES)
    def test_pre_cancelled_context_stops_every_plan(self, db, sql):
        physical, _logical, _cost = db.planner.plan(parse_sql(sql))
        ctx = ExecutionContext()
        ctx.attach(physical)
        ctx.cancel()
        with pytest.raises(QueryCancelledError):
            list(physical.batches())

    def test_deadline_fires_at_batch_boundary(self, db):
        class FakeClock:
            def __init__(self):
                self.now = 0.0

            def __call__(self):
                return self.now

        clock = FakeClock()
        physical, _logical, _cost = db.planner.plan(parse_sql(SP_QUERY))
        ctx = ExecutionContext(timeout=10.0, clock=clock)
        ctx.attach(physical)
        batches = physical.batches()
        first = next(batches)
        assert len(first) >= 1
        clock.now = 11.0
        with pytest.raises(QueryTimeoutError) as err:
            list(batches)
        assert err.value.partial["rows"] >= 1

    def test_cancel_mid_stream(self, db):
        physical, _logical, _cost = db.planner.plan(parse_sql(SP_QUERY))
        ctx = ExecutionContext()
        ctx.attach(physical)
        batches = physical.batches()
        next(batches)
        ctx.cancel()
        with pytest.raises(QueryCancelledError):
            list(batches)


class TestLabelCountFastPath:
    def test_raw_scan_matches_full_parse_on_every_stored_row(self, db):
        storage = db.manager.storage_for("birds")
        checked = 0
        for oid in range(1, len(db.catalog.table("birds")) + 1):
            rid = storage._rid_for(oid)
            if rid is None:
                continue
            data = storage.heap.read(rid)
            payload = json.loads(bytes(data))
            for instance in ("ClassBird1", "TextSummary1", "NoSuch"):
                for label in ("Disease", "Behavior", "Anatomy", "Other",
                              "NoLabel"):
                    assert _raw_label_count(data, instance, label) == \
                        _parsed_label_count(payload, instance, label), \
                        (oid, instance, label)
                    checked += 1
        assert checked > 0

    def test_label_count_counts_match_materialized_objects(self, db):
        storage = db.manager.storage_for("birds")
        hits = 0
        for oid in range(1, len(db.catalog.table("birds")) + 1):
            status, value = storage.label_count(
                oid, "ClassBird1", "Disease"
            )
            sset = db.manager.summary_set_for("birds", oid)
            obj = sset.get_summary_object("ClassBird1")
            expected = None if obj is None else obj.get_label_value("Disease")
            if status == "ok":
                assert value == expected
                hits += 1
            else:
                assert status == "fallback"
        assert hits > 0  # the fast path answered real rows


def _plain(values, columns=("a", "b")):
    return QTuple(list(columns), list(values), {}, {})


class TestBatchCarrier:
    def test_from_rows_hands_back_original_tuples(self):
        rows = [_plain([i, i * 2]) for i in range(5)]
        batch = Batch.from_rows(rows)
        assert len(batch) == 5
        assert batch.to_rows() is rows
        assert batch.row(3) is rows[3]
        assert batch.column_values("b") == [0, 2, 4, 6, 8]

    def test_column_resolution_matches_qtuple_get(self):
        rows = [QTuple(["r.x", "s.y"], [1, 2], {}, {})]
        batch = Batch.from_rows(rows)
        assert batch.column_values("r.x") == [1]
        assert batch.column_values("y") == [2]  # unique suffix
        with pytest.raises(QueryError):
            batch.column_values("z")
        rows = [QTuple(["r.x", "s.x"], [1, 2], {}, {})]
        with pytest.raises(QueryError):
            Batch.from_rows(rows).column_values("x")

    def test_take_subsets_rows_and_memo(self):
        rows = [_plain([i, -i]) for i in range(6)]
        batch = Batch.from_rows(rows)
        taken = batch.take([1, 3, 5])
        assert len(taken) == 3
        assert taken.column_values("a") == [1, 3, 5]
        assert taken.row(1) is rows[3]

    def test_chunking_respects_batch_rows_and_shape_changes(self):
        rows = [_plain([i, i]) for i in range(150)]
        sizes = [len(b) for b in batches_from_rows(rows)]
        assert sizes == [64, 64, 22]
        mixed = [_plain([1, 2]), QTuple(["c"], [3], {}, {}), _plain([4, 5])]
        chunks = list(batches_from_rows(mixed))
        assert [b.columns for b in chunks] == [["a", "b"], ["c"], ["a", "b"]]
        assert [r.values for r in rows_from_batches(chunks)] == \
            [[1, 2], [3], [4, 5]]

    def test_scan_row_views_are_memoized_and_share_summary_sets(self, db):
        physical, _logical, _cost = db.planner.plan(parse_sql(SP_QUERY))
        scan = physical
        while scan.children:
            scan = scan.children[0]
        batch = next(scan.batches())
        assert batch.row(0) is batch.row(0)
        taken = batch.take([0, 1])
        # The taken sub-batch reuses the already-materialized summary sets.
        assert taken.row(0).summary_sets == batch.row(0).summary_sets
