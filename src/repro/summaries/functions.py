"""The ``$`` variable: tuple-level summary-set manipulation functions (§3.1).

At query time every tuple ``r`` exposes ``r.$`` — the set of summary objects
attached to it. :class:`SummarySet` implements the paper's summary-set
interface functions and is what summary-based predicates and UDFs receive.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SummaryError
from repro.summaries.objects import SummaryObject, SummaryType


class SummarySet:
    """The set of summary objects attached to one (runtime) tuple."""

    def __init__(self, objects: dict[str, SummaryObject] | None = None):
        self._objects: dict[str, SummaryObject] = dict(objects or {})

    # -- paper interface ($-functions) -------------------------------------------

    def get_size(self) -> int:
        """$.getSize() — number of summary objects in the set."""
        return len(self._objects)

    def get_summary_object(self, key: str | int) -> SummaryObject | None:
        """$.getSummaryObject(InstName | i).

        By name: returns the object of that summary instance, or None. By
        position: returns the i-th object (set order is not semantically
        meaningful; positional access exists for UDF iteration).
        """
        if isinstance(key, int):
            ordered = self.objects()
            if not 0 <= key < len(ordered):
                return None
            return ordered[key]
        return self._objects.get(key)

    # -- engine-side helpers --------------------------------------------------------

    def objects(self) -> list[SummaryObject]:
        """Objects in a stable (instance-name) order."""
        return [self._objects[k] for k in sorted(self._objects)]

    def instance_names(self) -> list[str]:
        return sorted(self._objects)

    def __iter__(self) -> Iterator[SummaryObject]:
        return iter(self.objects())

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, instance_name: str) -> bool:
        return instance_name in self._objects

    def require(self, instance_name: str) -> SummaryObject:
        obj = self._objects.get(instance_name)
        if obj is None:
            raise SummaryError(f"no summary object for instance {instance_name!r}")
        return obj

    def add(self, obj: SummaryObject) -> None:
        self._objects[obj.instance_name] = obj

    def remove(self, instance_name: str) -> None:
        self._objects.pop(instance_name, None)

    def copy(self) -> "SummarySet":
        return SummarySet({k: v.copy() for k, v in self._objects.items()})

    def filter(self, predicate) -> "SummarySet":
        """New set keeping only objects where ``predicate(obj)`` is True —
        the object-level projection the F operator performs."""
        return SummarySet(
            {k: v for k, v in self._objects.items() if predicate(v)}
        )

    def of_type(self, stype: SummaryType) -> list[SummaryObject]:
        return [o for o in self.objects() if o.summary_type is stype]

    def project_to_columns(self, retained: set[str]) -> None:
        """Eliminate the effect of annotations on projected-out columns from
        every object in the set (§2.2 step 1)."""
        for obj in self._objects.values():
            obj.project_to_columns(retained)

    def merge(self, other: "SummarySet") -> None:
        """Merge ``other`` into this set (join/aggregation semantics):
        objects of instances present on both sides merge with annotation
        dedup; instance objects present on one side propagate unchanged."""
        for name, obj in other._objects.items():
            if name in self._objects:
                self._objects[name].merge(obj)
            else:
                self._objects[name] = obj.copy()

    def to_display(self) -> dict[str, list]:
        """Instance -> Rep[] — what end-users see propagated (§2.1)."""
        return {name: self._objects[name].rep() for name in sorted(self._objects)}
