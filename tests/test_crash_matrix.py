"""Crash matrices for the durability paths.

Two subsystems, one discipline — a fail-stop at *any* point must leave a
state that recovers to something the client was actually told happened:

* ``Database.save()``/``load()``: the image is written via a temporary
  file + atomic rename, so a crash at every disk-write index (and in the
  tmp-to-rename window) must leave the *old* image loadable — never a
  half-written destination, never a leaked sibling.
* the WAL DML path: every mutating statement appends + fsyncs a logical
  record before it is acknowledged. The matrix crashes the log device at
  every append index, every sync index, and with torn syncs, then
  recovers from the surviving durable bytes and checks the result against
  a dict-oracle snapshot: **exactly** the acked prefix of the workload
  (the crashing statement itself may round up to durable when the fault
  hit after its sync point — never anything beyond).
* page write-back under WAL: a crash at every disk-write index of the
  final flush must lose nothing, because log-before-data means the WAL
  already holds every acked statement.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.annotations.annotation import AnnotationTarget
from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import InjectedFaultError, ReproError
from repro.faults import FaultPlan, install_faults
from repro.storage.record import ValueType
from repro.wal.device import MemoryWALDevice


def make_db() -> Database:
    db = Database(buffer_pages=16)
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("v", ValueType.INT)])
    db.create_index("t", "v")
    db.create_classifier_instance(
        "C", ["alpha", "beta"],
        [("apple alpha fruit", "alpha"), ("bear beta animal", "beta")],
    )
    db.sql("Alter Table t Add Indexable C")
    for i in range(40):
        oid = db.insert("t", [f"r{i}", i % 5])
        if i % 3 == 0:
            db.add_annotation("apple alpha fruit", table="t", oid=oid)
    return db


def clone(db: Database) -> Database:
    return pickle.loads(pickle.dumps(db))


def mutate(db: Database) -> None:
    """Dirty a spread of pages: heap, B-Trees, summary structures."""
    for i in range(20):
        oid = db.insert("t", [f"new{i}", 7])
        if i % 2 == 0:
            db.add_annotation("bear beta animal", table="t", oid=oid)
    db.delete_tuple("t", 1)


class TestCrashDuringSave:
    def test_every_write_index(self, tmp_path):
        base = make_db()
        path = tmp_path / "img.db"
        base.save(path)
        old_image = path.read_bytes()
        mutate(base)

        # Count the flush's disk writes on a throwaway clone.
        probe = clone(base)
        counter = install_faults(probe, FaultPlan())
        probe.save(tmp_path / "probe.db")
        total_writes = counter.write_ops
        assert total_writes > 0, "matrix is vacuous: no dirty pages to flush"

        for i in range(total_writes):
            path.write_bytes(old_image)
            victim = clone(base)
            install_faults(victim, FaultPlan().fail_write(at=i))
            with pytest.raises(InjectedFaultError):
                victim.save(path)
            # The old image is untouched (the file write never began) and
            # loads to a database that passes the full audit.
            restored = Database.load(path, verify=True)
            assert len(restored.catalog.table("t")) == 40

        # No fault: the save completes and the new state round-trips.
        survivor = clone(base)
        install_faults(survivor, FaultPlan())
        survivor.save(path)
        restored = Database.load(path, verify=True)
        assert len(restored.catalog.table("t")) == len(base.catalog.table("t"))

    def test_crash_between_tmp_write_and_rename(self, tmp_path):
        db = make_db()
        path = tmp_path / "img.db"
        db.save(path)
        old_image = path.read_bytes()
        mutate(db)
        # Simulate a crash after the tmp file was (partially) written but
        # before the atomic rename: the destination still holds the old
        # image and must load cleanly; the orphan tmp is just ignored.
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(b"partial garbage that never got renamed")
        restored = Database.load(path, verify=True)
        assert path.read_bytes() == old_image
        assert len(restored.catalog.table("t")) == 40

    def test_saved_image_same_after_failed_save(self, tmp_path):
        """A failed save must not leave a half-written destination."""
        db = make_db()
        path = tmp_path / "img.db"
        db.save(path)
        old_image = path.read_bytes()
        mutate(db)
        victim = clone(db)
        install_faults(victim, FaultPlan().fail_write(at=0))
        with pytest.raises(InjectedFaultError):
            victim.save(path)
        assert path.read_bytes() == old_image

    def test_failed_rename_leaves_no_tmp(self, tmp_path, monkeypatch):
        """Regression: a save that dies at the rename (or anywhere after
        the tmp file exists) must unlink its temporary — repeated failed
        saves used to leak one ``.tmp`` sibling per attempt."""
        import repro.core.database as database_mod

        db = make_db()
        path = tmp_path / "img.db"

        def explode(src, dst):
            raise OSError("injected: rename failed")

        monkeypatch.setattr(database_mod.os, "replace", explode)
        with pytest.raises(OSError):
            db.save(path)
        monkeypatch.undo()
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == [], f"save leaked files: {leftovers}"
        # And the path is still usable once the disk behaves again.
        db.save(path)
        Database.load(path, verify=True)


# ---------------------------------------------------------------------------
# The WAL DML crash matrix: fail-stop the log device at every append and
# fsync index of a mixed workload, recover, compare to the dict oracle.
# ---------------------------------------------------------------------------

def wal_script():
    """The workload as one deterministic statement list (DDL + DML), so
    the same script drives both the oracle run and every crash run."""
    script = [
        lambda db: db.create_table(
            "t", [Column("name", ValueType.TEXT), Column("v", ValueType.INT)]
        ),
        lambda db: db.create_index("t", "v"),
        lambda db: db.create_classifier_instance(
            "C", ["alpha", "beta"],
            [("apple alpha fruit", "alpha"), ("bear beta animal", "beta")],
        ),
        lambda db: db.sql("ALTER TABLE t ADD INDEXABLE C"),
    ]
    for i in range(8):
        script.append(
            lambda db, i=i: db.insert("t", [f"r{i}", i % 3])
        )
    for oid, text in [(1, "apple alpha fruit"), (2, "bear beta animal"),
                      (4, "alpha apple again"), (6, "beta bear again")]:
        script.append(
            lambda db, oid=oid, text=text: db.add_annotation(
                text, table="t", oid=oid
            )
        )
    script += [
        # Bulk load: one framed ANN_BULK record — a crash right after the
        # ack must replay the whole batch with identical annotation ids.
        lambda db: db.add_annotations_bulk([
            ("alpha apple bulk one", [AnnotationTarget("t", 5)]),
            ("beta bear bulk two", [AnnotationTarget("t", 5)]),
            ("alpha fruit bulk three", [AnnotationTarget("t", 7)]),
        ]),
        lambda db: db.sql("UPDATE t SET v = 9 WHERE name = 'r5'"),
        lambda db: db.delete_tuple("t", 3),
        lambda db: db.delete_annotation(2),
    ]
    return script


def summary_state(db):
    """Summary sets as seen through the live read path — when the summary
    cache is enabled this reads *through the cache*, so comparing it to an
    oracle computed without one catches any stale entry surviving a
    crash/recover cycle."""
    if not db.catalog.has_table("t"):
        return ()
    storage = db.manager.storage_for("t")
    entries = []
    for oid, _values in db.catalog.table("t").scan():
        objects = storage.get(oid)
        if not objects:
            continue
        canon = []
        for name, obj in sorted(objects.items()):
            d = obj.to_dict()
            d.pop("obj_id", None)  # in-memory identity, not value
            canon.append((name, json.dumps(d, sort_keys=True)))
        entries.append((oid, tuple(canon)))
    return tuple(sorted(entries))


def db_state(db):
    """Canonical logical state: user rows + raw annotations + summaries."""
    rows = ()
    if db.catalog.has_table("t"):
        rows = tuple(sorted(
            (oid, tuple(values))
            for oid, values in db.catalog.table("t").scan()
        ))
    anns = tuple(sorted(
        (ann.ann_id, ann.text) for ann in db.manager.annotations.scan()
    ))
    return rows, anns, summary_state(db)


def oracle_states():
    """State snapshots: oracle[k] = the state after k acked statements."""
    db = Database(buffer_pages=32)
    states = [db_state(db)]
    for statement in wal_script():
        statement(db)
        states.append(db_state(db))
    return states


def crash_run(plan):
    """Run the script against a faulted WAL device until the injected
    crash; returns (device, acked-statement-count).  The crashing run
    keeps a summary cache enabled so observer-driven invalidation is
    exercised under every fault schedule too."""
    db = Database(buffer_pages=32, cache_bytes=1 << 20)
    device = MemoryWALDevice(plan=plan)
    db.attach_wal(device)
    acked = 0
    try:
        for statement in wal_script():
            statement(db)
            acked += 1
    except InjectedFaultError:
        pass
    return device, acked


def recover_state(device):
    """Fresh process over the crashed device's durable bytes.

    The recovered database reads its state twice through an enabled
    summary cache: the cold pass populates it, the warm pass must agree
    (recovery bumped every epoch, so a stale pre-crash entry surviving
    into either pass would diverge from the oracle comparison)."""
    survivor = MemoryWALDevice.from_durable(
        device.durable(), base_lsn=device.base_lsn
    )
    db, report = Database.recover(None, survivor, verify=True)
    db.manager.cache.resize(1 << 20)
    cold = db_state(db)
    warm = db_state(db)
    assert cold == warm, "cache-warm read diverges from cold read"
    return warm, report


class TestCrashDuringDML:
    @classmethod
    def setup_class(cls):
        cls.oracle = oracle_states()
        probe = MemoryWALDevice()
        db = Database(buffer_pages=32)
        db.attach_wal(probe)
        for statement in wal_script():
            statement(db)
        cls.total_appends = probe.append_ops
        cls.total_syncs = probe.sync_ops
        assert cls.total_appends >= len(wal_script())
        assert cls.total_syncs >= len(wal_script())

    def check(self, device, acked):
        state, report = recover_state(device)
        # Every acked statement survives; the crashing one may round up
        # to durable (fault after its sync), never anything beyond it.
        allowed = self.oracle[acked:min(acked + 2, len(self.oracle))]
        assert state in allowed, (
            f"recovered state diverges from oracle after {acked} acked "
            f"statements ({report.replayed} replayed, "
            f"{report.failed} failed, {report.torn_bytes} torn bytes)"
        )

    def test_crash_at_every_append(self):
        for at in range(self.total_appends):
            device, acked = crash_run(FaultPlan().fail_append(at=at))
            assert device.dead, f"append fault #{at} never fired"
            assert acked < len(wal_script())
            self.check(device, acked)

    def test_crash_at_every_sync(self):
        for at in range(self.total_syncs):
            device, acked = crash_run(FaultPlan().fail_sync(at=at))
            assert device.dead, f"sync fault #{at} never fired"
            self.check(device, acked)

    def test_torn_sync_tail_never_replayed(self):
        """A sync that tears mid-record leaves a torn tail: recovery must
        truncate it, landing exactly on the acked prefix."""
        for at in range(0, self.total_syncs, 3):
            device, acked = crash_run(FaultPlan().torn_sync(at=at))
            assert device.dead
            self.check(device, acked)

    def test_no_fault_full_replay(self):
        device, acked = crash_run(FaultPlan())
        assert acked == len(wal_script())
        state, report = recover_state(device)
        assert state == self.oracle[-1]
        assert report.torn_bytes == 0

    def test_crash_at_every_page_writeback(self):
        """Log-before-data: killing the final flush at any page-write
        index loses nothing — the WAL already holds every acked
        statement, so recovery lands on the full oracle state."""
        probe_db = Database(buffer_pages=32)
        probe_db.attach_wal(MemoryWALDevice())
        for statement in wal_script():
            statement(probe_db)
        counter = install_faults(probe_db, FaultPlan())
        probe_db.pool.flush_all()
        total_writes = counter.write_ops
        assert total_writes > 0, "matrix is vacuous: nothing to flush"

        for at in range(total_writes):
            db = Database(buffer_pages=32)
            device = MemoryWALDevice()
            db.attach_wal(device)
            for statement in wal_script():
                statement(db)
            install_faults(db, FaultPlan().fail_write(at=at))
            with pytest.raises((InjectedFaultError, ReproError)):
                db.pool.flush_all()
            state, _report = recover_state(device)
            assert state == self.oracle[-1], (
                f"page write-back crash #{at} lost acked statements"
            )
