"""Normalized replicas of non-classifier summary objects (Figure 12).

The Baseline scheme of §4.1 stores summary objects in *normalized* form —
"replicating their components".  For Classifier-type objects that replica
lives inside :class:`~repro.index.baseline.BaselineClassifierIndex`; this
module adds the snippet counterpart so the Figure 12 experiment — "the
Baseline scheme will not only evaluate the predicates, but also form the
summary objects for propagation" — can form a *complete* summary set from
primitives.  A snippet object normalizes into two row sets:

* one ``(data_oid, pos, ann_id, snippet)`` row per representative in
  ``<table>_<instance>_snip_norm``, and
* one ``(data_oid, ann_id, columns)`` row per contributing annotation in
  ``<table>_<instance>_member_norm`` — the Elements[][]/target references
  without which keyword search over "the raw annotations" (§3.1) and
  projection-time annotation elimination cannot work.

:meth:`reconstruct` re-assembles a :class:`SnippetObject` by probing the
``data_oid`` B-Trees and reading every row back.  That per-tuple join work
— one row per raw annotation — is precisely the cost the de-normalized
R_SummaryStorage exists to avoid, and it grows with annotation density
exactly as Figure 12 shows.

Freshness: the replica subscribes to the SummaryManager's generic
``on_objects_write`` event (fired after every summary-storage write), so
incremental annotation maintenance keeps it consistent.
"""

from __future__ import annotations

from repro.catalog.schema import Column, Schema
from repro.catalog.table import Table
from repro.errors import ReproError
from repro.storage.buffer import BufferPool
from repro.storage.record import ValueType
from repro.summaries.objects import SnippetObject, SummaryObject

_SNIP_SCHEMA = Schema(
    [
        Column("data_oid", ValueType.INT, nullable=False),
        Column("pos", ValueType.INT, nullable=False),
        Column("ann_id", ValueType.INT, nullable=False),
        Column("snippet", ValueType.TEXT, nullable=False),
    ]
)

_MEMBER_SCHEMA = Schema(
    [
        Column("data_oid", ValueType.INT, nullable=False),
        Column("ann_id", ValueType.INT, nullable=False),
        Column("columns", ValueType.TEXT, nullable=False),
    ]
)


class NormalizedSnippetReplica:
    """Normalized rows + ``data_oid`` B-Trees for one snippet instance."""

    def __init__(self, table_name: str, instance_name: str, pool: BufferPool):
        self.table_name = table_name.lower()
        self.instance_name = instance_name
        prefix = f"{self.table_name}_{instance_name}"
        self.norm = Table(f"{prefix}_snip_norm", _SNIP_SCHEMA, pool)
        self.norm.create_index("data_oid")
        self.members = Table(f"{prefix}_member_norm", _MEMBER_SCHEMA, pool)
        self.members.create_index("data_oid")

    # -- size accounting ---------------------------------------------------------

    def pages_used(self) -> int:
        pages = 0
        for table in (self.norm, self.members):
            pages += table.heap.num_pages + table.oid_index.node_count()
            for index in table.secondary_indexes.values():
                pages += index.node_count()
        return pages

    def __len__(self) -> int:
        return len(self.norm)

    # -- maintenance ---------------------------------------------------------------

    def _write_rows(self, oid: int, obj: SnippetObject) -> None:
        for pos, (ann_id, snippet) in enumerate(sorted(obj.snippets.items())):
            self.norm.insert(
                {"data_oid": oid, "pos": pos, "ann_id": ann_id,
                 "snippet": snippet}
            )
        for ann_id, columns in sorted(obj.ann_targets.items()):
            self.members.insert(
                {"data_oid": oid, "ann_id": ann_id,
                 "columns": ",".join(columns)}
            )

    def _delete_rows(self, oid: int) -> None:
        for table in (self.norm, self.members):
            for norm_oid in list(table.index_lookup("data_oid", oid)):
                table.delete(norm_oid)

    def on_objects_write(
        self, oid: int, objects: dict[str, SummaryObject]
    ) -> None:
        """Generic storage-write event: re-normalize this tuple's rows."""
        self._delete_rows(oid)
        obj = objects.get(self.instance_name)
        if isinstance(obj, SnippetObject):
            self._write_rows(oid, obj)

    def on_objects_delete(self, oid: int) -> None:
        self._delete_rows(oid)

    def bulk_build(self, storage) -> int:
        """Normalize every existing snippet object; returns rows written."""
        written = 0
        for oid, objects in storage.scan():
            obj = objects.get(self.instance_name)
            if isinstance(obj, SnippetObject):
                self._write_rows(oid, obj)
                written += len(obj.snippets) + len(obj.ann_targets)
        return written

    def rebuild(self, storage) -> int:
        """Discard both normalized tables and re-derive them from the
        de-normalized storage (repair path). Returns rows written."""
        pool = self.norm.pool
        for table in (self.norm, self.members):
            for tree in [table.oid_index, *table.secondary_indexes.values()]:
                try:
                    tree.drop()
                except ReproError:
                    pass  # corrupt tree: abandon its pages rather than fail
            try:
                table.heap.drop()
            except ReproError:
                pass
        prefix = f"{self.table_name}_{self.instance_name}"
        self.norm = Table(f"{prefix}_snip_norm", _SNIP_SCHEMA, pool)
        self.norm.create_index("data_oid")
        self.members = Table(f"{prefix}_member_norm", _MEMBER_SCHEMA, pool)
        self.members.create_index("data_oid")
        return self.bulk_build(storage)

    # -- reconstruction (the Figure 12 propagation path) -----------------------------

    def reconstruct(self, oid: int) -> SnippetObject | None:
        """Re-assemble the snippet object from its normalized rows."""
        member_rows = [
            self.members.read_dict(n)
            for n in self.members.index_lookup("data_oid", oid)
        ]
        snippet_rows = [
            self.norm.read_dict(n)
            for n in self.norm.index_lookup("data_oid", oid)
        ]
        if not member_rows and not snippet_rows:
            return None
        obj = SnippetObject(instance_name=self.instance_name, tuple_id=oid)
        for row in member_rows:
            columns = tuple(c for c in row["columns"].split(",") if c)
            obj.ann_targets[row["ann_id"]] = columns
        for row in sorted(snippet_rows, key=lambda r: r["pos"]):
            obj.snippets[row["ann_id"]] = row["snippet"]
        return obj
