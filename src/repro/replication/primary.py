"""Primary-side replication ops over the existing JSON protocol.

A :class:`ReplicationEndpoint` installs three ops on a
:class:`~repro.server.server.QueryServer` whose database has a WAL
attached:

* ``{"op": "replicate", "from_lsn": N, "replica_id": ID}`` — serve up to
  ``max_bytes`` of durable WAL starting at byte offset ``N``, base64 in
  the response. The ``from_lsn`` of each poll doubles as the replica's
  cumulative ack: everything below it is applied replica-side, so the
  primary may release retained segments beneath the minimum ack.  A
  request below the retained range answers ``status: "too_old"`` — the
  replica must re-bootstrap from a fresh snapshot.
* ``{"op": "replicate_snapshot", "offset": K}`` — stream a base image
  (:meth:`~repro.core.database.Database.snapshot_bytes`) in chunks; the
  snapshot is generated at ``offset == 0`` and cached on the connection
  so every chunk comes from one consistent image.
* ``{"op": "replicate_detach", "replica_id": ID}`` — release the
  stream's retention pin (clean shutdown / promote).

Handlers run on the server's worker pool, so snapshot generation (which
takes the commit mutex) never blocks the accept loop.
"""

from __future__ import annotations

import base64

from repro.errors import ReplicationError

#: bytes of WAL served per replicate poll unless the replica asks for a
#: different budget; the cap keeps base64-expanded responses well under
#: the protocol's frame limit.
DEFAULT_STREAM_BYTES = 1 << 20
MAX_STREAM_BYTES = 4 << 20

#: bytes of snapshot image per bootstrap chunk.
SNAPSHOT_CHUNK = 1 << 20


def _int_field(request: dict, name: str, default=None) -> int:
    value = request.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ReplicationError(f"{name!r} must be a non-negative integer")
    return value


class ReplicationEndpoint:
    """Serves a primary's WAL stream and bootstrap snapshots."""

    def __init__(self, server):
        self.server = server
        self.db = server.db

    def install(self) -> "ReplicationEndpoint":
        self.server.register_op("replicate", self.replicate)
        self.server.register_op("replicate_snapshot", self.snapshot)
        self.server.register_op("replicate_detach", self.detach)
        self.server.repl_endpoint = self
        return self

    def _wal(self):
        wal = self.db.wal
        if wal is None:
            raise ReplicationError(
                "primary has no WAL attached; nothing to replicate"
            )
        return wal

    # -- ops -----------------------------------------------------------------

    def replicate(self, request: dict, conn) -> dict:
        wal = self._wal()
        from_lsn = _int_field(request, "from_lsn")
        max_bytes = _int_field(request, "max_bytes", DEFAULT_STREAM_BYTES)
        max_bytes = max(1, min(max_bytes, MAX_STREAM_BYTES))
        replica_id = request.get("replica_id")
        self.db.metrics.inc("repl.stream_requests")
        # The poll's from_lsn is the cumulative ack: everything below it
        # is applied on the replica. Registration is implicit and sticky;
        # ack/registration and the read happen under the commit mutex so
        # a concurrent checkpoint can't retire bytes mid-decision.
        with self.db._commit_mutex:
            if isinstance(replica_id, str) and replica_id:
                wal.ack_stream(replica_id, from_lsn)
            data, status = wal.read_stream(from_lsn, max_bytes)
            response = {
                "status": status,
                "from_lsn": from_lsn,
                "data": base64.b64encode(data).decode("ascii"),
                "end_lsn": from_lsn + len(data),
                "durable_lsn": wal.flushed_lsn,
                "next_lsn": wal.next_lsn,
                "retained_base": wal.retained_base,
            }
        if data:
            self.db.metrics.inc("repl.stream_bytes", len(data))
        return response

    def snapshot(self, request: dict, conn) -> dict:
        offset = _int_field(request, "offset", 0)
        image = getattr(conn, "snapshot", None)
        if offset == 0 or image is None:
            image = self.db.snapshot_bytes()
            conn.snapshot = image
            self.db.metrics.inc("repl.snapshots")
        if offset > len(image):
            raise ReplicationError(
                f"snapshot offset {offset} beyond image size {len(image)}"
            )
        chunk = image[offset:offset + SNAPSHOT_CHUNK]
        done = offset + len(chunk) >= len(image)
        if done:
            conn.snapshot = None  # free; offset-0 re-request regenerates
        return {
            "offset": offset,
            "data": base64.b64encode(chunk).decode("ascii"),
            "total": len(image),
            "done": done,
        }

    def detach(self, request: dict, conn) -> dict:
        wal = self._wal()
        replica_id = request.get("replica_id")
        if not isinstance(replica_id, str) or not replica_id:
            raise ReplicationError(
                "'replica_id' must be a non-empty string"
            )
        with self.db._commit_mutex:
            wal.unregister_stream(replica_id)
        return {"detached": replica_id}
