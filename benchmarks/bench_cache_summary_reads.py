"""Summary-set cache — repeated summary reads, cache off vs warm.

Two shapes from the paper's read-heavy workloads:

* the Figure 10 SP query run as a full table scan, where every tuple's
  summary set is decoded from ``R_SummaryStorage`` (cache off) or served
  from the epoch-checked cache (warm), and
* a Figure 12-style point-read sweep (the propagation/zoom-in hot loop):
  ``storage.get(oid)`` for every tuple, repeated.

The wall-clock ratio lands in EXPERIMENTS.md; the deterministic claim —
the warm cache does strictly fewer buffer-pool requests than the cold
run because the summary heap is never touched — is asserted here.

The shared ``cached_database`` lease is safe to use: the cache is resized
inside try/finally and fully cleared on restore, and its fingerprint
(disk pages + row counts) is unaffected by cache state.
"""

import contextlib

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import equality_constant, sp_equality_query

MODES = ["cache-off", "cache-warm"]
DENSITIES = (10, 50, 200)
CACHE_BYTES = 8 << 20

#: (bench, density, mode) -> logical page accesses, for the cross-mode
#: assertion once both modes of a density have run.
_PAGES: dict = {}


@contextlib.contextmanager
def summary_cache(db, capacity: int):
    cache = db.manager.cache
    previous = cache.capacity_bytes
    cache.resize(capacity)
    try:
        yield cache
    finally:
        cache.clear()
        cache.resize(previous)


def _assert_warm_cheaper(bench: str, density: int) -> None:
    cold = _PAGES.get((bench, density, "cache-off"))
    warm = _PAGES.get((bench, density, "cache-warm"))
    if cold is not None and warm is not None:
        assert warm < cold, (
            f"{bench} d={density}: warm cache did {warm} page requests, "
            f"cold did {cold} — the summary heap was not skipped"
        )


@pytest.mark.benchmark(group="cache-sp-query")
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("density", DENSITIES)
def test_sp_query_cache(benchmark, case, mode, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", cell_fraction=0.0,
    )
    constant = equality_constant(db, "Disease", 0.01)
    query = sp_equality_query("Disease", constant)
    db.options.index_scheme = "none"  # scan: summaries read per tuple
    capacity = CACHE_BYTES if mode == "cache-warm" else 0
    try:
        with summary_cache(db, capacity):
            if mode == "cache-warm":
                db.sql(query)  # populate
            m = case(db, lambda: db.sql(query))
    finally:
        db.options.index_scheme = "summary_btree"

    table = figure_writer.setdefault(
        "cache_sp_query",
        FigureTable(
            "Summary cache — Figure 10 SP scan, cache off vs warm",
            unit="ms",
        ),
    )
    table.add_measurement(mode, preset.label(density), m)
    pages = figure_writer.setdefault(
        "cache_sp_query_pages",
        FigureTable(
            "Summary cache (companion) — logical page accesses",
            unit="pages",
        ),
    )
    pages.add(mode, preset.label(density), m.pages)
    _PAGES[("sp", density, mode)] = m.pages
    _assert_warm_cheaper("sp", density)
    run_densities = [d for d in DENSITIES if d in preset.densities]
    if len(table.cells) == len(MODES) * len(run_densities):
        table.note_ratio(
            "cache-off", "cache-warm",
            "warm cache skips every summary decode (>= 2x expected)",
        )


@pytest.mark.benchmark(group="cache-point-reads")
@pytest.mark.parametrize("mode", MODES)
def test_point_read_sweep_cache(benchmark, case, mode, preset, figure_writer):
    density = preset.densities[-1]
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="summary_btree", cell_fraction=0.0,
    )
    storage = db.manager.storage_for("birds")
    oids = [oid for oid, _ in db.catalog.table("birds").scan()]

    def sweep():
        got = 0
        for oid in oids:
            if storage.get(oid) is not None:
                got += 1
        return range(got)  # len() == tuples served, for Measurement.rows

    capacity = CACHE_BYTES if mode == "cache-warm" else 0
    with summary_cache(db, capacity):
        if mode == "cache-warm":
            sweep()  # populate
        m = case(db, sweep)

    table = figure_writer.setdefault(
        "cache_point_reads",
        FigureTable(
            "Summary cache — point-read sweep over every tuple's "
            "summary set (Figure 12 hot loop)",
            unit="ms",
        ),
    )
    table.add_measurement(mode, preset.label(density), m)
    _PAGES[("point", density, mode)] = m.pages
    _assert_warm_cheaper("point", density)
    if len(table.cells) == len(MODES):
        table.note_ratio(
            "cache-off", "cache-warm",
            "repeated reads served without touching the summary heap",
        )
