"""Figure 11 — SP query with two conjunctive summary predicates.

Paper: a range predicate on ``Anatomy`` plus a ``containsUnion`` keyword
search over TextSummary1.  With no index the engine table-scans and
applies a summary-based selection; with an index it resolves the range
predicate first and applies the keyword predicate on top.  The
Summary-BTree ends up ≈2× faster than the Baseline index.
"""

import pytest

from repro.bench import FigureTable, cached_database
from repro.bench.queries import range_bounds, two_predicate_query

SCHEMES = {
    "NoIndex": "none",
    "Baseline Index": "baseline",
    "Summary-BTree": "summary_btree",
}
KEYWORDS = ("experiment", "wikipedia")


@pytest.mark.benchmark(group="fig11-two-predicates")
@pytest.mark.parametrize("scheme", list(SCHEMES))
@pytest.mark.parametrize("density", [10, 25, 50, 100, 200])
def test_two_predicate_query(
    benchmark, case, scheme, density, preset, figure_writer
):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both", cell_fraction=0.0,
    )
    lo, hi = range_bounds(db, "Anatomy", 0.05)
    query = two_predicate_query(lo, hi, *KEYWORDS)
    db.options.index_scheme = SCHEMES[scheme]
    db.options.force_access = None if scheme == "NoIndex" else "index"
    try:
        m = case(db, lambda: db.sql(query))
    finally:
        db.options.index_scheme = "summary_btree"
        db.options.force_access = None

    table = figure_writer.setdefault(
        "fig11_two_predicates",
        FigureTable(
            "Figure 11 — range on Anatomy + containsUnion keyword search",
            unit="ms",
        ),
    )
    table.add_measurement(scheme, preset.label(density), m)
    pages = figure_writer.setdefault(
        "fig11_two_predicates_pages",
        FigureTable(
            "Figure 11 (companion) — logical page accesses", unit="pages"
        ),
    )
    pages.add(scheme, preset.label(density), m.pages)
    if len(table.cells) == len(SCHEMES) * len(preset.densities):
        table.note_ratio("Baseline Index", "Summary-BTree", "about 2x")
        pages.note_ratio("Baseline Index", "Summary-BTree", "about 2x")
