"""Concurrency scaling — the asyncio query server under parallel clients.

The point of the server + striped-lock stack (ISSUE 7) is that N clients
get more aggregate work through one engine than one client can: readers
hold shared locks concurrently, statements run on a worker thread pool,
and each client's own result processing (JSON decode, row consumption)
overlaps other clients' server-side execution.

The bench runs a TPC-style closed-loop workload: each client fires a
read-heavy mix (two SELECT shapes + a 10% insert mix), consumes every
returned row, then spends a fixed think interval emulating
application-side processing before the next statement — the standard
closed-loop client model.  Clients are **subprocesses**, so on
multi-core hosts their work genuinely runs beside the server; on a
single core the think interval still yields the CPU, which is the
point: a server that handled one connection to completion at a time
would idle through every client's think time and score ~1.0x here,
while the asyncio accept loop + statement thread pool interleaves
other sessions' statements into those gaps.

Each phase runs on a fresh seeded server (ephemeral port) so the 1- and
4-client runs see identical data.  Reported number is aggregate
statements/sec summed over the closed-loop clients.

Acceptance gate: 4 clients sustain ≥ 1.5× the single-client throughput
at every scale (the CI smoke runs the quick preset).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.bench import FigureTable
from repro.catalog.schema import Column
from repro.core.database import Database
from repro.server import QueryServer
from repro.storage.record import ValueType

#: closed-loop requests per client, by scale preset.
REQUESTS = {"quick": 120, "default": 300, "full": 600}

#: per-statement think interval (seconds) emulating application-side
#: result processing in the closed-loop model.
THINK_SECONDS = 0.015

SPEEDUP_GATE = 1.5

#: the client worker, run as a subprocess: connect, fire the read-heavy
#: mix, consume every row, think, report post-connect throughput.
WORKER_SRC = """
import json, sys, time
from repro.server.client import QueryClient

host, port, requests, wid, think = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]),
    float(sys.argv[5]),
)
client = QueryClient(host, port)
sink = 0
started = time.perf_counter()
for i in range(requests):
    if i % 10 == 9:
        client.execute(
            "Insert Into t Values ('w%d-%d', %d)" % (wid, i, i % 50)
        )
    elif i % 2 == 0:
        result = client.execute("Select name, v From t")
        for row in result["rows"]:
            sink += row[1]
    else:
        result = client.execute("Select name, v From t r Where r.v < 25")
        for row in result["rows"]:
            sink += row[1]
    time.sleep(think)
elapsed = time.perf_counter() - started
client.close()
print(json.dumps({"requests": requests, "elapsed": elapsed, "sink": sink}))
"""


class _BenchServer:
    """A fresh seeded database + server on a background event loop."""

    def __init__(self, rows: int):
        self.db = Database(buffer_pages=256)
        self.db.create_table(
            "t", [Column("name", ValueType.TEXT), Column("v", ValueType.INT)]
        )
        for i in range(rows):
            self.db.insert("t", [f"r{i}", i % 50])
        self.server = QueryServer(self.db)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.server.port == 0 and time.monotonic() < deadline:
            time.sleep(0.005)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()


def _run_phase(num_clients: int, requests: int, rows: int) -> float:
    """One phase on a fresh server; returns aggregate statements/sec
    (sum of each closed-loop client's own throughput)."""
    bench = _BenchServer(rows)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.dirname(os.path.dirname(repro.__file__)),
         env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    try:
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER_SRC,
                 "127.0.0.1", str(bench.server.port), str(requests), str(w),
                 str(THINK_SECONDS)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            )
            for w in range(num_clients)
        ]
        throughput = 0.0
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err.decode()
            stats = json.loads(out)
            throughput += stats["requests"] / stats["elapsed"]
        return throughput
    finally:
        bench.stop()


@pytest.mark.benchmark(group="concurrency")
def test_concurrent_client_scaling(benchmark, preset, figure_writer):
    requests = REQUESTS.get(preset.name, 150)
    rows = preset.num_birds * 3

    def run_all():
        single = _run_phase(1, requests, rows)
        quad = _run_phase(4, requests, rows)
        return single, quad

    single, quad = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedup = quad / single

    table = figure_writer.setdefault(
        "concurrency_scaling",
        FigureTable(
            "Query-server scaling — read-heavy mix, aggregate stmts/sec",
            unit="stmt/s",
        ),
    )
    table.add("1 client", preset.name, single)
    table.add("4 clients", preset.name, quad)

    assert speedup >= SPEEDUP_GATE, (
        f"4 clients reached only {speedup:.2f}x the single-client "
        f"throughput ({quad:.0f} vs {single:.0f} stmt/s); the gate "
        f"is {SPEEDUP_GATE}x"
    )
