"""Synthetic ornithological workload generator.

Stands in for the paper's AKN-derived dataset (§6): a Birds table with 12
attributes, a Synonyms table in a many-to-one relationship, and
category-structured free-text annotations whose density per tuple sweeps the
same 10→200 annotations/tuple range the paper evaluates. All randomness is
seeded, so every benchmark run is reproducible.
"""

from repro.workload.generator import WorkloadConfig, build_database, generate_annotation
from repro.workload.vocab import CATEGORIES, CLASS_LABELS

__all__ = [
    "WorkloadConfig",
    "build_database",
    "generate_annotation",
    "CATEGORIES",
    "CLASS_LABELS",
]
