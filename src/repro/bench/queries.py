"""Query templates and selectivity tooling shared by the benchmark files.

The paper's query-performance experiments (Figures 10–15) all run a small
set of query shapes at controlled selectivities; this module centralizes
them so every bench issues exactly the queries §6 describes.
"""

from __future__ import annotations

from collections import Counter

from repro.core.database import Database

CLASS_EXPR = "$.getSummaryObject('ClassBird1').getLabelValue"
SNIPPET_EXPR = "$.getSummaryObject('TextSummary1')"


def label_distribution(db: Database, table: str, label: str) -> Counter:
    """count-value -> number of tuples, from the de-normalized storage."""
    dist: Counter = Counter()
    for _oid, objects in db.manager.storage_for(table).scan():
        obj = objects.get("ClassBird1")
        if obj is not None:
            dist[dict(obj.rep()).get(label, 0)] += 1
    return dist


def equality_constant(
    db: Database, label: str, selectivity: float, table: str = "birds"
) -> int:
    """The count value whose ``label = value`` selectivity is closest to
    the target (the paper reports the 1% point of Figure 10)."""
    dist = label_distribution(db, table, label)
    total = sum(dist.values())
    if not total:
        raise ValueError(f"no summaries on {table!r}")
    return min(
        dist, key=lambda v: abs(dist[v] / total - selectivity)
    )


def range_bounds(
    db: Database, label: str, selectivity: float, table: str = "birds"
) -> tuple[int, int]:
    """[lo, hi] bounds on ``label`` covering ≈ the target tuple fraction."""
    dist = label_distribution(db, table, label)
    total = sum(dist.values())
    target = max(1, round(total * selectivity))
    lo = min(dist)
    covered = 0
    hi = lo
    for value in sorted(dist):
        covered += dist[value]
        hi = value
        if covered >= target:
            break
    return lo, hi


def sp_equality_query(label: str, constant: int) -> str:
    """Figure 10's Select-Project query."""
    return (
        f"Select common_name From birds r Where r.{CLASS_EXPR}('{label}') "
        f"= {constant}"
    )


def two_predicate_query(lo: int, hi: int, *keywords: str) -> str:
    """Figure 11's conjunctive range + keyword-search query."""
    kws = ", ".join(f"'{k}'" for k in keywords)
    return (
        f"Select common_name From birds r Where "
        f"r.{CLASS_EXPR}('Anatomy') in [{lo}, {hi}] And "
        f"r.{SNIPPET_EXPR}.containsUnion({kws})"
    )


def example4_query(threshold: int = 5) -> str:
    """§5's Example 4: data join + summary selection + summary sort."""
    return (
        "Select r.common_name, s.synonym From birds r, synonyms s "
        "Where r.oid = s.bird_id And "
        f"r.{CLASS_EXPR}('Disease') > {threshold} "
        f"Order By r.{CLASS_EXPR}('Disease')"
    )


def rule11_query() -> str:
    """Figure 15's three-relation query: a data join with a replica T plus
    a summary join between Birds and Synonyms on their TextSummary1
    objects (no summary index applies)."""
    return (
        "Select r.common_name From birds r, synonyms s, t_rep t "
        "Where r.aou_id = t.aou_id And "
        f"r.{SNIPPET_EXPR}.getSize() = s.{SNIPPET_EXPR}.getSize()"
    )
