"""Unit tests for the fault-injection layer (repro.faults).

Covers the fault plan (scheduling, determinism, validation), the faulty
disk manager (all four fault kinds, metrics accounting, dead-disk
semantics), install/remove on a live database, and the buffer-pool error
paths that faults exercise: a failed miss read must not leave a
half-initialized frame, and a failed eviction write must not lose the
dirty victim.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CorruptPageError,
    InjectedFaultError,
    StorageError,
    TransientIOError,
)
from repro.faults import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyDiskManager,
    install_faults,
    remove_faults,
)
from repro.obs.metrics import MetricsRegistry
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_disk(plan: FaultPlan, metrics: MetricsRegistry | None = None,
              pages: int = 4) -> FaultyDiskManager:
    # Populate with a quiet plan, then arm the real one and zero the op
    # counters so each test's `at=` indexes count from the test's own I/O.
    disk = FaultyDiskManager(page_size=256, metrics=metrics)
    for i in range(pages):
        page_id = disk.allocate_page()
        disk.write_page(page_id, bytes([i + 1]) * 256)
    disk.plan = plan
    disk.read_ops = disk.write_ops = 0
    return disk


class TestFaultPlan:
    def test_match_one_shot(self):
        plan = FaultPlan().fail_read(at=2)
        assert plan.match("read", 2) is not None
        assert plan.match("read", 1) is None
        assert plan.match("read", 3) is None
        assert plan.match("write", 2) is None

    def test_match_periodic(self):
        plan = FaultPlan().transient_read(at=1, period=3)
        fires = [i for i in range(12) if plan.match("read", i)]
        assert fires == [1, 4, 7, 10]

    def test_validation(self):
        with pytest.raises(StorageError):
            Fault("nonsense", "read", 0)
        with pytest.raises(StorageError):
            Fault(FaultKind.TORN_WRITE, "read", 0)
        with pytest.raises(StorageError):
            Fault(FaultKind.FAIL_STOP, "both", 0)
        with pytest.raises(StorageError):
            Fault(FaultKind.FAIL_STOP, "read", -1)

    def test_builders_chain(self):
        plan = (
            FaultPlan(seed=7)
            .fail_write(at=0)
            .transient_write(at=1)
            .torn_write(at=2)
            .bit_flip_write(at=3)
            .bit_flip_read(at=0)
        )
        assert len(plan) == 5


class TestFaultyDisk:
    def test_fail_stop_kills_the_disk(self):
        disk = make_disk(FaultPlan().fail_read(at=1))
        disk.read_page(0)  # read #0 fine
        with pytest.raises(InjectedFaultError):
            disk.read_page(0)  # read #1 fires
        assert disk.dead
        # Dead means dead: every later operation fails too, writes included.
        with pytest.raises(InjectedFaultError):
            disk.read_page(1)
        with pytest.raises(InjectedFaultError):
            disk.write_page(0, bytes(256))

    def test_transient_is_retryable(self):
        disk = make_disk(FaultPlan().transient_read(at=0))
        with pytest.raises(TransientIOError):
            disk.read_page(0)
        assert not disk.dead
        assert disk.read_page(0) == bytearray([1]) * 256

    def test_transient_is_an_injected_fault(self):
        # Callers catching the broad class see both kinds.
        assert issubclass(TransientIOError, InjectedFaultError)

    def test_torn_write_keeps_old_suffix(self):
        disk = make_disk(FaultPlan().torn_write(at=0, torn_bytes=100))
        with pytest.raises(InjectedFaultError):
            disk.write_page(0, bytes([9]) * 256)
        assert disk.dead  # crash=True by default
        stored = disk._pages[0]
        assert stored[:100] == bytes([9]) * 100
        assert stored[100:] == bytes([1]) * 156

    def test_torn_write_without_crash(self):
        disk = make_disk(FaultPlan().torn_write(at=0, torn_bytes=8, crash=False))
        disk.write_page(0, bytes([9]) * 256)  # silent tearing
        assert not disk.dead
        assert disk._pages[0][:8] == bytes([9]) * 8
        assert disk._pages[0][8:] == bytes([1]) * 248

    def test_bit_flip_write_is_persistent(self):
        disk = make_disk(FaultPlan(seed=3).bit_flip_write(at=0, bits=2))
        disk.write_page(0, bytes([0]) * 256)
        stored = disk.read_page(0)
        flipped = sum(bin(b).count("1") for b in stored)
        assert 1 <= flipped <= 2  # seeded positions may collide

    def test_bit_flip_read_is_transient(self):
        disk = make_disk(FaultPlan(seed=3).bit_flip_read(at=0))
        first = disk.read_page(0)
        assert first != bytearray([1]) * 256
        # The stored page is intact; the next read returns clean bytes.
        assert disk.read_page(0) == bytearray([1]) * 256

    def test_determinism_from_seed(self):
        def run(seed):
            disk = make_disk(FaultPlan(seed=seed).bit_flip_write(at=0, bits=4))
            disk.write_page(0, bytes(256))
            return bytes(disk._pages[0])

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_metrics_accounting(self):
        metrics = MetricsRegistry()
        disk = make_disk(
            FaultPlan().transient_read(at=0).transient_read(at=1), metrics
        )
        for _ in range(2):
            with pytest.raises(TransientIOError):
                disk.read_page(0)
        assert metrics.get("faults.injected") == 2
        assert metrics.get("faults.injected.transient") == 2
        assert disk.injected == [
            ("transient", "read", 0, 0),
            ("transient", "read", 1, 0),
        ]


class TestInstallRemove:
    def test_install_preserves_state_and_counts_metrics(self):
        from repro.core.database import Database
        from repro.catalog.schema import Column
        from repro.storage.record import ValueType

        db = Database(buffer_pages=8)
        db.create_table("t", [Column("v", ValueType.INT)])
        for i in range(200):
            db.insert("t", [i])
        faulty = install_faults(db, FaultPlan().transient_read(at=0))
        assert db.disk is faulty and db.pool.disk is faulty
        db.pool.clear()
        # The resilience layer absorbs the transient fault transparently:
        # the query succeeds, the injection is counted, and the retry is
        # visible in the resilience counters.
        rows = db.sql("SELECT t.v FROM t WHERE t.v = 150")
        assert len(rows) == 1
        assert db.metrics.get("faults.injected") == 1
        assert db.metrics.get("resilience.retries") == 1
        assert db.metrics.get("resilience.recovered") == 1
        remove_faults(db)
        assert not isinstance(db.disk, FaultyDiskManager)
        rows = db.sql("SELECT t.v FROM t WHERE t.v = 150")
        assert len(rows) == 1
        # The whole database survived the swap-in/swap-out round trip.
        assert db.check_integrity().ok


class TestBufferPoolUnderFaults:
    """Satellite: BufferPool.get_page error paths under injected faults."""

    def test_failed_miss_read_leaves_no_frame(self):
        disk = FaultyDiskManager(page_size=256)
        pool = BufferPool(disk, capacity=4)
        page_id = pool.new_page()
        pool.get_page(page_id)[:4] = b"data"
        pool.mark_dirty(page_id)
        pool.clear()
        disk.plan.transient_read(at=disk.read_ops)
        with pytest.raises(TransientIOError):
            pool.get_page(page_id)
        # No half-initialized frame may linger: a retry must hit the disk
        # again and succeed, returning the real bytes.
        assert page_id not in pool._frames
        assert bytes(pool.get_page(page_id)[:4]) == b"data"

    def test_corrupt_miss_read_leaves_no_frame(self):
        disk = FaultyDiskManager(page_size=256, plan=FaultPlan(seed=5))
        pool = BufferPool(disk, capacity=4)
        page_id = pool.new_page()
        pool.protect(page_id)
        pool.get_page(page_id)[:4] = b"data"
        pool.mark_dirty(page_id)
        pool.clear()  # write-back stamps the checksum
        disk.plan.bit_flip_read(at=disk.read_ops)
        with pytest.raises(CorruptPageError):
            pool.get_page(page_id)
        assert page_id not in pool._frames
        # Transient rot: the stored page is fine, the retry verifies.
        assert bytes(pool.get_page(page_id)[:4]) == b"data"

    def test_failed_eviction_write_keeps_dirty_victim(self):
        disk = FaultyDiskManager(page_size=256)
        pool = BufferPool(disk, capacity=1)
        a = pool.new_page()
        pool.get_page(a)[:6] = b"victim"
        pool.mark_dirty(a)
        # The next write (the eviction of dirty page a) fail-stops.
        disk.plan.fail_write(at=disk.write_ops)
        with pytest.raises(InjectedFaultError):
            pool.new_page()
        # The dirty victim must still be resident and still dirty — its
        # contents were never persisted and must not be lost.
        assert a in pool._frames
        assert pool._frames[a].dirty
        assert bytes(pool._frames[a].data[:6]) == b"victim"

    def test_failed_eviction_on_get_page_keeps_victim(self):
        disk = FaultyDiskManager(page_size=256)
        pool = BufferPool(disk, capacity=2)
        pages = [pool.new_page() for _ in range(3)]
        pool.clear()
        pool.get_page(pages[0])
        pool.mark_dirty(pages[0])
        pool.get_page(pages[1])
        # Reading pages[2] forces an eviction; the LRU victim is the dirty
        # pages[0] frame and its write-back fail-stops mid-miss.
        disk.plan.fail_write(at=disk.write_ops)
        with pytest.raises(InjectedFaultError):
            pool.get_page(pages[2])
        assert pages[0] in pool._frames
        assert pool._frames[pages[0]].dirty


class TestBudgetAndSwapExceptionSafety:
    """Satellite regressions: the ``times=`` budget must be charged exactly
    once per firing even though the fault is delivered by raising, and the
    install/remove device swap must never strand the database without a
    working disk."""

    def test_budget_charged_once_despite_raise(self):
        plan = FaultPlan().transient_read(at=0, period=1, times=1)
        disk = make_disk(plan)
        with pytest.raises(TransientIOError):
            disk.read_page(0)
        assert plan.remaining(0) == 0
        # The budget is spent: the periodic fault no longer fires.
        assert disk.read_page(0) == bytearray([1]) * 256
        assert plan.remaining(0) == 0

    def test_match_is_pure_consume_decrements(self):
        plan = FaultPlan().transient_read(at=0, period=1, times=2)
        assert plan.match("read", 0) is not None
        assert plan.match("read", 0) is not None
        assert plan.remaining(0) == 2  # match never touches the budget
        assert plan.consume("read", 0) is not None
        assert plan.remaining(0) == 1
        assert plan.consume("read", 0) is not None
        assert plan.remaining(0) == 0
        assert plan.consume("read", 0) is None  # exhausted: stops matching

    def test_budget_validation(self):
        with pytest.raises(StorageError):
            FaultPlan().transient_read(at=0, times=0)

    def test_installed_faults_restores_after_raised_fail_stop(self):
        from repro.core.database import Database
        from repro.catalog.schema import Column
        from repro.faults import installed_faults
        from repro.storage.record import ValueType

        db = Database(buffer_pages=8)
        db.create_table("t", [Column("v", ValueType.INT)])
        for i in range(200):
            db.insert("t", [i])
        with pytest.raises(InjectedFaultError):
            with installed_faults(db, FaultPlan().fail_read(at=0)):
                db.pool.clear()
                db.sql("SELECT t.v FROM t WHERE t.v = 150")
        # The raised fault exited the context; the plain manager is back
        # and both references point at the same object.
        assert not isinstance(db.disk, FaultyDiskManager)
        assert db.pool.disk is db.disk
        assert len(db.sql("SELECT t.v FROM t WHERE t.v = 150")) == 1
        assert db.check_integrity().ok

    def test_remove_faults_is_idempotent(self):
        from repro.core.database import Database

        db = Database(buffer_pages=8)
        remove_faults(db)  # nothing installed: must be a no-op
        assert db.pool.disk is db.disk
        install_faults(db, FaultPlan())
        remove_faults(db)
        remove_faults(db)  # second removal: still aligned, still plain
        assert not isinstance(db.disk, FaultyDiskManager)
        assert db.pool.disk is db.disk
