"""Annotation target combinatorics (§1: annotations attach to cells, rows,
columns, and arbitrary sets of them) and their projection semantics."""

import pytest

from repro import Column, Database, ValueType
from repro.annotations.annotation import AnnotationTarget

SEEDS = [
    ("flu virus infection outbreak", "Disease"),
    ("survey checklist volunteer", "Other"),
]
TEXT = "flu virus infection outbreak sighted"


@pytest.fixture()
def db():
    database = Database()
    database.create_table("t", [
        Column("a", ValueType.TEXT), Column("b", ValueType.TEXT),
        Column("c", ValueType.TEXT),
    ])
    database.create_classifier_instance("C", ["Disease", "Other"], SEEDS)
    database.manager.link("t", "C")
    return database


def disease_count(result, i=0):
    return dict(result.summaries(i)["C"])["Disease"]


class TestMultiColumnTargets:
    def test_annotation_on_two_columns_survives_if_any_retained(self, db):
        oid = db.insert("t", {"a": "x", "b": "y", "c": "z"})
        db.add_annotation(TEXT, table="t", oid=oid, columns=("a", "b"))
        # Projecting a keeps it (one of its columns is retained) ...
        assert disease_count(db.sql("Select a From t")) == 1
        # ... and projecting only c eliminates it.
        assert disease_count(db.sql("Select c From t")) == 0

    def test_row_level_annotation_never_eliminated(self, db):
        oid = db.insert("t", {"a": "x", "b": "y", "c": "z"})
        db.add_annotation(TEXT, table="t", oid=oid)  # row-level
        assert disease_count(db.sql("Select c From t")) == 1

    def test_mixed_targets_partial_elimination(self, db):
        oid = db.insert("t", {"a": "x", "b": "y", "c": "z"})
        db.add_annotation(TEXT, table="t", oid=oid, columns=("a",))
        db.add_annotation(TEXT, table="t", oid=oid, columns=("b",))
        db.add_annotation(TEXT, table="t", oid=oid)
        assert disease_count(db.sql("Select a From t")) == 2  # a + row
        assert disease_count(db.sql("Select * From t")) == 3


class TestMultiTupleTargets:
    def test_one_annotation_on_two_rows(self, db):
        o1 = db.insert("t", {"a": "x1", "b": "y", "c": "z"})
        o2 = db.insert("t", {"a": "x2", "b": "y", "c": "z"})
        db.add_annotation(TEXT, targets=[
            AnnotationTarget("t", o1, ()),
            AnnotationTarget("t", o2, ()),
        ])
        result = db.sql("Select * From t Order By a")
        assert disease_count(result, 0) == 1
        assert disease_count(result, 1) == 1

    def test_shared_annotation_deleted_everywhere(self, db):
        o1 = db.insert("t", {"a": "x1", "b": "y", "c": "z"})
        o2 = db.insert("t", {"a": "x2", "b": "y", "c": "z"})
        ann = db.add_annotation(TEXT, targets=[
            AnnotationTarget("t", o1, ()),
            AnnotationTarget("t", o2, ()),
        ])
        db.delete_annotation(ann.ann_id)
        result = db.sql("Select * From t Order By a")
        # Removing a tuple's last annotation drops its storage row
        # entirely: both rows summarize like never-annotated tuples.
        assert "C" not in result.summaries(0)
        assert "C" not in result.summaries(1)
        assert db.manager.storage_for("t").get(o1) is None
        assert db.manager.storage_for("t").get(o2) is None

    def test_cross_table_annotation(self, db):
        db.create_table("u", [Column("k", ValueType.TEXT)])
        db.manager.link("u", "C")
        o_t = db.insert("t", {"a": "x", "b": "y", "c": "z"})
        o_u = db.insert("u", {"k": "w"})
        db.add_annotation(TEXT, targets=[
            AnnotationTarget("t", o_t, ()),
            AnnotationTarget("u", o_u, ()),
        ])
        assert disease_count(db.sql("Select * From t")) == 1
        assert disease_count(db.sql("Select * From u")) == 1

    def test_zoom_sees_shared_annotation_once_per_tuple(self, db):
        o1 = db.insert("t", {"a": "x1", "b": "y", "c": "z"})
        o2 = db.insert("t", {"a": "x2", "b": "y", "c": "z"})
        db.add_annotation(TEXT, targets=[
            AnnotationTarget("t", o1, ()),
            AnnotationTarget("t", o2, ()),
        ])
        assert db.zoom_in("t", o1, "C", "Disease") == [TEXT]
        assert db.zoom_in("t", o2, "C", "Disease") == [TEXT]


class TestTargetValidation:
    def test_annotation_needs_table_and_oid(self, db):
        with pytest.raises(Exception):
            db.add_annotation(TEXT)

    def test_columns_on_returns_right_subset(self, db):
        oid = db.insert("t", {"a": "x", "b": "y", "c": "z"})
        ann = db.add_annotation(TEXT, table="t", oid=oid, columns=("a", "c"))
        assert set(ann.columns_on("t", oid)) == {"a", "c"}
        assert ann.columns_on("t", 999) == ()
