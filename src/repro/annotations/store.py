"""Persistent raw-annotation store.

Annotations live in a system heap table (``_annotations``) with a B-Tree on
the annotation id so zoom-in queries can fetch raw texts directly from the
Elements[][] references carried by summary objects.
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.catalog.schema import Column, Schema
from repro.catalog.table import Table
from repro.errors import RecordNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.record import ValueType

_SCHEMA = Schema(
    [
        Column("ann_id", ValueType.INT, nullable=False),
        Column("text", ValueType.TEXT, nullable=False),
        Column("targets", ValueType.TEXT, nullable=False),  # JSON
    ]
)


def _encode_targets(targets: list[AnnotationTarget]) -> str:
    return json.dumps(
        [[t.table, t.oid, list(t.columns)] for t in targets],
        separators=(",", ":"),
    )


def _decode_targets(raw: str) -> list[AnnotationTarget]:
    return [
        AnnotationTarget(table, oid, tuple(columns))
        for table, oid, columns in json.loads(raw)
    ]


class AnnotationStore:
    """CRUD over raw annotations, indexed by annotation id."""

    def __init__(self, pool: BufferPool):
        self._table = Table("_annotations", _SCHEMA, pool)
        self._table.create_index("ann_id")
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._table)

    @property
    def next_id(self) -> int:
        """The id the next create will assign (WAL records log it ahead)."""
        return self._next_id

    def create(
        self, text: str, targets: list[AnnotationTarget],
        ann_id: int | None = None,
    ) -> Annotation:
        """Persist a new annotation; assigns and returns its id.

        ``ann_id`` forces the id (WAL replay re-creating the annotation
        under its original identity); the counter advances past it.
        """
        if ann_id is None:
            ann_id = self._next_id
        annotation = Annotation(ann_id, text, list(targets))
        self._next_id = max(self._next_id, ann_id + 1)
        self._table.insert(
            {
                "ann_id": annotation.ann_id,
                "text": text,
                "targets": _encode_targets(annotation.targets),
            }
        )
        return annotation

    def get(self, ann_id: int) -> Annotation:
        """Fetch one annotation by id."""
        oids = self._table.index_lookup("ann_id", ann_id)
        if not oids:
            raise RecordNotFoundError(f"no annotation with id {ann_id}")
        row = self._table.read_dict(oids[0])
        return Annotation(row["ann_id"], row["text"], _decode_targets(row["targets"]))

    def get_many(self, ann_ids: list[int]) -> list[Annotation]:
        """Fetch annotations in the order of ``ann_ids``."""
        return [self.get(a) for a in ann_ids]

    def texts(self, ann_ids: list[int]) -> list[str]:
        """Raw texts for ``ann_ids`` (zoom-in's workhorse)."""
        return [self.get(a).text for a in ann_ids]

    def delete(self, ann_id: int) -> Annotation:
        """Remove an annotation; returns what was removed."""
        oids = self._table.index_lookup("ann_id", ann_id)
        if not oids:
            raise RecordNotFoundError(f"no annotation with id {ann_id}")
        annotation = self.get(ann_id)
        self._table.delete(oids[0])
        return annotation

    def scan(self) -> Iterator[Annotation]:
        for _, values in self._table.scan():
            row = _SCHEMA.dict_from_row(values)
            yield Annotation(
                row["ann_id"], row["text"], _decode_targets(row["targets"])
            )

    @property
    def heap_pages(self) -> int:
        return self._table.heap.num_pages
