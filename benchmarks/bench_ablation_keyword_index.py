"""Ablation — trigram keyword index for snippet search (no paper figure).

§3.1 cites a studied trade-off between searching the snippets vs the raw
annotations; this extension accelerates the snippet side: in snippet-only
mode (``search_raw=False``) a trigram index pre-filters candidates for
``containsUnion`` predicates before the exact residual re-check, instead
of scanning every tuple and substring-searching its snippets.
"""

import pytest

from repro.bench import FigureTable, fresh_database

_DBS: dict[tuple[int, int], object] = {}

QUERY = (
    "Select common_name From birds r Where "
    "r.$.getSummaryObject('TextSummary1')"
    ".containsUnion('experiment', 'wikipedia')"
)


def _indexed_db(preset, density):
    key = (preset.num_birds, density)
    if key in _DBS:
        return _DBS[key]
    db = fresh_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="none", cell_fraction=0.0,
    )
    db.create_keyword_index("birds", "TextSummary1")
    db.analyze("birds")
    _DBS[key] = db
    return db


@pytest.mark.benchmark(group="ablation-keyword-index")
@pytest.mark.parametrize("mode", ["Snippet-Scan", "Trigram-Index"])
@pytest.mark.parametrize("density", [10, 50, 200])
def test_keyword_search(
    benchmark, case, mode, density, preset, figure_writer
):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = _indexed_db(preset, density)
    db.options.search_raw = False  # the snippet side of the §3.1 trade-off
    db.options.force_access = "index" if mode == "Trigram-Index" else None
    # disable the candidate path entirely for the scan series
    if mode == "Snippet-Scan":
        saved = db.keyword_indexes
        db.keyword_indexes = {}
    try:
        m = case(db, lambda: db.sql(QUERY))
    finally:
        if mode == "Snippet-Scan":
            db.keyword_indexes = saved
        db.options.search_raw = True
        db.options.force_access = None

    table = figure_writer.setdefault(
        "ablation_keyword_index",
        FigureTable(
            "Ablation — snippet keyword search: scan vs trigram index",
            unit="ms",
        ),
    )
    table.add_measurement(mode, preset.label(density), m)
    active = [d for d in (10, 50, 200) if d in preset.densities]
    if len(table.cells) == 2 * len(active):
        table.note_ratio("Snippet-Scan", "Trigram-Index",
                         "pre-filtering beats scanning")
