"""Self-healing repair tests (``Database.repair``).

Three layers, mirroring the integrity suite it closes the loop on:

1. clean databases — repair must be a no-op and say so;
2. every manufactured *logical* corruption class from the integrity
   suite — after ``repair()`` the closing audit must be clean
   (``converged``) and queries must still answer correctly;
3. *physical* page corruption — resident pages are healed with no data
   loss, non-resident pages are quarantined with the damage contained
   (pointers pruned, structures rebuilt, audit clean).

Plus the CLI surface: the ``\\repair`` REPL command and the
``python -m repro repair <image> [out]`` verb with its 0/1/2 exit codes.
"""

from __future__ import annotations

import os

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.faults import install_faults, remove_faults
from repro.faults.plan import Fault, FaultKind, FaultPlan
from repro.storage.page import verify_checksum
from repro.storage.record import ValueType
from repro.workload.generator import WorkloadConfig, build_database

#: Same seed-shifting convention as the integrity sweep: the nightly CI
#: matrix (REPRO_FAULT_SEED=0..3) covers disjoint corruption schedules.
FAULT_SEED_BASE = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 100


def workload_db(num_birds=12, apt=5, indexes="summary_btree", seed=6):
    return build_database(WorkloadConfig(
        num_birds=num_birds, annotations_per_tuple=apt,
        indexes=indexes, cell_fraction=0.0, seed=seed,
    ))


def assert_repaired(db, report):
    """The repair converged and left a fully functional database."""
    assert report.converged, str(report)
    audit = db.check_integrity()
    assert audit.ok, str(audit)
    # Queries still run end to end over the repaired structures.
    rows = db.sql("SELECT scientific_name FROM birds").rows
    assert rows  # workload keeps at least one bird through every scenario


class TestCleanNoOp:
    def test_empty_database(self):
        report = Database().repair()
        assert report.clean_before and report.converged
        assert not report.actions
        assert "nothing to do" in str(report)

    def test_clean_workload(self):
        db = workload_db(indexes="both")
        report = db.repair()
        assert report.clean_before and report.converged

    def test_repair_is_idempotent(self):
        db = workload_db()
        db.catalog.table("birds").delete(1)  # bypass the manager
        first = db.repair()
        assert first.converged and not first.clean_before
        second = db.repair()
        assert second.clean_before  # nothing left to fix


class TestLogicalDamage:
    """Each manufactured violation class from the integrity suite must be
    repaired to convergence, not merely detected."""

    def test_orphan_summary_row(self):
        db = workload_db()
        table = db.catalog.table("birds")
        victim = next(oid for oid, _ in table.scan())
        table.delete(victim)  # leaves summary row + backward pointers
        report = db.repair()
        assert_repaired(db, report)
        assert any(a.action == "drop-orphan-rows" for a in report.actions)
        assert db.manager.storage_for("birds").get(victim) is None

    def test_dangling_annotation_reference(self):
        db = workload_db()
        ann = next(iter(db.manager.annotations.scan()))
        db.manager.annotations.delete(ann.ann_id)
        report = db.repair()
        assert_repaired(db, report)
        assert any(
            a.action == "strip-dangling-elements" for a in report.actions
        )

    def test_stale_summary_index_entry(self):
        db = workload_db()
        index = next(iter(db.summary_indexes.values()))
        index.tree.insert(b"bogus:0042", index._pointer_for(1))
        report = db.repair()
        assert_repaired(db, report)
        # The stale key is gone from the rebuilt tree.
        assert not list(index.tree.search(b"bogus:0042"))

    def test_secondary_index_drift(self):
        from repro.catalog.keys import encode_int, encode_key

        db = Database()
        db.create_table("t", [Column("v", ValueType.INT)])
        db.create_index("t", "v")
        oid = db.insert("t", [5])
        db.insert("t", [6])
        index = db.catalog.table("t").secondary_indexes["v"]
        index.delete(encode_key(5, ValueType.INT), encode_int(oid))
        report = db.repair()
        assert report.converged, str(report)
        # The rebuilt index serves the lookup again.
        assert list(db.catalog.table("t").index_lookup("v", 5)) == [oid]

    def test_unindexed_heap_record_is_salvaged(self):
        """A heap record whose OID mapping was lost cannot be re-keyed
        (the OID index is the only holder of assignments): repair removes
        the record and converges rather than guessing."""
        from repro.catalog.keys import encode_int
        from repro.catalog.table import pack_rid

        db = workload_db()
        table = db.catalog.table("birds")
        victim = next(oid for oid, _ in table.scan())
        rid = table.disk_tuple_loc(victim)
        table.oid_index.delete(encode_int(victim), pack_rid(rid))
        before = db.check_integrity()
        assert any(v.kind == "unindexed-record" for v in before.violations)
        report = db.repair()
        assert_repaired(db, report)
        assert report.salvaged_records >= 1
        assert victim not in {oid for oid, _ in table.scan()}

    def test_keyword_index_tamper(self):
        db = workload_db()
        db.create_keyword_index("birds", "TextSummary1")
        index = db.keyword_indexes[("birds", "TextSummary1")]
        # Damage via the consistency surface the checker audits: a stale
        # summary-index entry forces a repair pass, which must also
        # re-derive the keyword postings without error.
        sidx = next(iter(db.summary_indexes.values()))
        sidx.tree.insert(b"bogus:0042", sidx._pointer_for(1))
        postings_before = len(index.postings)
        report = db.repair()
        assert_repaired(db, report)
        assert len(index.postings) == postings_before
        assert any(
            "keyword index" in a.location and a.action == "rebuild"
            for a in report.actions
        )

    def test_baseline_and_replica_rebuilt(self):
        db = workload_db(indexes="both")
        db.create_normalized_replicas("birds")
        db.catalog.table("birds").delete(1)
        report = db.repair()
        assert_repaired(db, report)
        locations = {a.location for a in report.actions
                     if a.action == "rebuild"}
        assert any(loc.startswith("baseline index") for loc in locations)
        assert any(loc.startswith("replica") for loc in locations)
        # The rebuilt replica reconstructs an object for a surviving oid.
        replica = next(iter(db.normalized_replicas.values()))
        survivor = next(oid for oid, _ in db.catalog.table("birds").scan())
        assert replica.reconstruct(survivor) is not None


class TestPhysicalDamage:
    def test_heal_resident_page(self):
        """On-disk corruption under a resident frame: the frame is the
        last good copy, so repair rewrites it — zero data loss."""
        db = workload_db()
        rows_before = sorted(
            str(t) for t in db.sql("SELECT scientific_name FROM birds")
        )
        db.pool.flush_all()
        victim = sorted(db.pool.protected_pages)[0]
        assert victim in db.pool._frames  # still resident
        # Poke the device through the guard: raw damage simulation must
        # not trip over environment-injected transient faults (CI soak).
        data = bytearray(db.guard.read_page(db.disk, victim))
        data[40] ^= 0xFF
        db.guard.write_page(db.disk, victim, data)
        report = db.repair()
        assert report.converged, str(report)
        assert victim in report.healed_pages
        assert not report.quarantined_pages
        assert sorted(
            str(t) for t in db.sql("SELECT scientific_name FROM birds")
        ) == rows_before
        assert verify_checksum(db.guard.read_page(db.disk, victim))

    def test_quarantine_non_resident_page(self):
        """On-disk corruption with no resident copy: the page's records
        are unrecoverable — repair replaces the page, prunes every
        pointer into it, and still converges."""
        db = workload_db()
        total = db.sql("SELECT COUNT(*) FROM birds").scalar()
        db.pool.clear()  # cold cache: no frame holds a good copy
        victim = sorted(db.pool.protected_pages)[0]
        data = bytearray(db.guard.read_page(db.disk, victim))
        data[40] ^= 0xFF
        db.guard.write_page(db.disk, victim, data)
        report = db.repair()
        assert report.converged, str(report)
        assert victim in report.quarantined_pages
        assert report.pruned_entries > 0
        remaining = db.sql("SELECT COUNT(*) FROM birds").scalar()
        assert 0 <= remaining < total  # damage contained, not spread
        assert db.check_integrity().ok

    @pytest.mark.parametrize("seed", [FAULT_SEED_BASE + i for i in range(3)])
    def test_torn_write_sweep_converges(self, seed):
        db = workload_db(seed=seed % 7 + 1)
        db.sql("INSERT INTO birds (scientific_name) VALUES ('torn victim')")
        plan = FaultPlan(seed=seed).schedule(
            Fault(FaultKind.TORN_WRITE, "write", 0, period=1, crash=False)
        )
        faulty = install_faults(db, plan)
        db.pool.flush_all()
        remove_faults(db)
        assert faulty.injected, "setup failed to tear a write"
        report = db.repair()
        assert not report.clean_before
        # Frames are still resident after flush_all, so every torn page
        # heals from memory: nothing may be quarantined or lost.
        assert report.converged, str(report)
        assert not report.quarantined_pages
        assert db.sql(
            "SELECT COUNT(*) FROM birds WHERE "
            "scientific_name = 'torn victim'"
        ).scalar() == 1

    @pytest.mark.parametrize("seed", [FAULT_SEED_BASE + i for i in range(3)])
    def test_bit_flip_sweep_converges(self, seed):
        db = workload_db(seed=seed % 7 + 1)
        plan = FaultPlan(seed=seed).schedule(
            Fault(FaultKind.BIT_FLIP, "write", 0, period=1, bits=1)
        )
        faulty = install_faults(db, plan)
        db.pool.flush_all()
        remove_faults(db)
        assert faulty.injected
        report = db.repair()
        assert report.converged, str(report)


class TestRepairThroughImages:
    """Damage survives a save/load cycle and repair still converges on
    the reloaded database (the ``repair`` CLI verb's core path)."""

    def test_logical_damage_roundtrip(self, tmp_path):
        db = workload_db()
        db.catalog.table("birds").delete(1)
        path = tmp_path / "img.db"
        db.save(path)
        reloaded = Database.load(path)
        assert not reloaded.check_integrity().ok
        report = reloaded.repair()
        assert report.converged, str(report)
        assert reloaded.check_integrity().ok


class TestCliRepair:
    def test_repl_repair_command(self):
        from repro.cli import execute_line

        db = workload_db(num_birds=4, apt=2)
        db.catalog.table("birds").delete(1)
        out = execute_line(db, "\\repair")
        assert "converged" in out
        assert execute_line(db, "\\check").startswith("integrity")

    def test_repl_repair_clean(self):
        from repro.cli import execute_line

        db = workload_db(num_birds=4, apt=2)
        assert "nothing to do" in execute_line(db, "\\repair")

    def test_repair_verb_converges_and_saves(self, tmp_path, capsys):
        from repro.cli import main

        db = workload_db(num_birds=4, apt=2)
        db.catalog.table("birds").delete(1)
        path = tmp_path / "img.db"
        db.save(path)
        assert main(["repair", str(path)]) == 0
        assert "converged" in capsys.readouterr().out
        # The repaired image was written back in place.
        assert Database.load(path).check_integrity().ok

    def test_repair_verb_out_path(self, tmp_path, capsys):
        from repro.cli import main

        db = workload_db(num_birds=4, apt=2)
        db.catalog.table("birds").delete(1)
        src = tmp_path / "damaged.db"
        dst = tmp_path / "repaired.db"
        db.save(src)
        assert main(["repair", str(src), str(dst)]) == 0
        # Source untouched (still damaged), destination clean.
        assert not Database.load(src).check_integrity().ok
        assert Database.load(dst).check_integrity().ok

    def test_repair_verb_corrupt_image(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "img.db"
        path.write_bytes(b"not an image at all")
        assert main(["repair", str(path)]) == 2
        assert "error" in capsys.readouterr().out

    def test_repair_verb_usage(self, capsys):
        from repro.cli import main

        assert main(["repair"]) == 2
        assert "usage" in capsys.readouterr().out
