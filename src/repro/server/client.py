"""Thin synchronous client for the query server.

:class:`QueryClient` speaks the length-prefixed JSON protocol over a
blocking socket — one statement in flight at a time, which is exactly
the shape benchmark workers and tests want.  Error responses surface as
:class:`~repro.errors.ServerError` carrying the server-side exception
class name in ``error_type``, so a caller can tell a lock timeout from
a parse error without string-matching messages.

Two defences keep a client from being dragged down by a sick peer:

* ``response_timeout`` bounds how long a response read may block; a
  stalled or half-dead server raises a typed
  :class:`~repro.errors.ClientTimeoutError` and the socket is closed
  (a half-read frame can never be resynchronized).
* Frames are checksummed both ways (``protocol.CRC_FLAG``); bytes
  garbled in flight surface as :class:`~repro.errors.ProtocolError`,
  never as a silently wrong result.

For reconnect-with-backoff and retry-safety classification on top of
this, see :class:`~repro.server.resilient.ResilientQueryClient`.
"""

from __future__ import annotations

import socket

from repro.errors import ClientTimeoutError, ProtocolError, ServerError
from repro.server.protocol import (
    LENGTH,
    MAX_FRAME,
    decode_header,
    decode_payload,
    encode_frame,
    verify_crc,
)


class QueryClient:
    """Blocking one-statement-at-a-time client; usable as a context
    manager (``with QueryClient(host, port) as c: c.execute(...)``)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 connect_timeout: float = 5.0,
                 response_timeout: float | None = None,
                 max_frame: int = MAX_FRAME):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        #: None blocks forever on reads (statements may legitimately run
        #: long); a number bounds every response read.
        self.response_timeout = response_timeout
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        # The per-connect timeout must not kill the response read: from
        # here on the socket blocks per response_timeout (None = forever).
        self._sock.settimeout(response_timeout)
        #: True from the first byte of a request hitting the wire until
        #: its full response arrived — the window in which a connection
        #: loss leaves the statement's outcome unknown.
        self.request_in_flight = False
        #: the server's log position stamped on the last success
        #: response (a primary's flushed WAL tail, a replica's applied
        #: watermark); None until the first response carries one.
        self.last_lsn: int | None = None

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- protocol -------------------------------------------------------------

    def execute(self, sql: str, timeout: float | None = None,
                min_lsn: int | None = None,
                min_lsn_timeout: float | None = None):
        """Run one statement; returns the JSON-shaped result value or
        raises :class:`ServerError` mirroring the server-side failure.

        ``min_lsn`` makes the read bounded-staleness: the server only
        executes once it has applied through that LSN (waiting up to
        ``min_lsn_timeout`` seconds), else answers a typed
        ``ReplicaLaggingError`` without executing.
        """
        request: dict = {"sql": sql}
        if timeout is not None:
            request["timeout"] = timeout
        if min_lsn is not None:
            request["min_lsn"] = min_lsn
            if min_lsn_timeout is not None:
                request["min_lsn_timeout"] = min_lsn_timeout
        return self.request(request)

    def health(self) -> dict:
        """Fetch the server's liveness/health snapshot (answered inline
        server-side — never queued, still answered while draining)."""
        return self.request({"op": "health"})

    def request(self, request: dict):
        """Send one request object and read its response."""
        self.request_in_flight = True
        self.send_raw(encode_frame(request, self.max_frame, crc=True))
        response = self.recv_response()
        self.request_in_flight = False
        if response.get("ok"):
            lsn = response.get("lsn")
            if isinstance(lsn, int):
                self.last_lsn = lsn
            return response.get("result")
        raise ServerError(
            response.get("error", "unknown server error"),
            response.get("error_type", "ServerError"),
        )

    def send_raw(self, data: bytes) -> None:
        """Send pre-encoded bytes verbatim (tests use this to send
        deliberately malformed frames)."""
        self._sock.sendall(data)

    def recv_response(self) -> dict:
        """Read one response frame off the socket."""
        header = self._recv_exactly(LENGTH.size)
        length, has_crc = decode_header(header, self.max_frame)
        declared_crc = None
        if has_crc:
            (declared_crc,) = LENGTH.unpack(self._recv_exactly(LENGTH.size))
        payload = self._recv_exactly(length)
        if declared_crc is not None:
            verify_crc(payload, declared_crc)
        return decode_payload(payload)

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                data = self._sock.recv(min(remaining, 65536))
            except socket.timeout:
                # A half-read frame cannot be resynchronized: the
                # connection is unusable, close it so the server's
                # disconnect watcher cancels the statement.
                self.close()
                raise ClientTimeoutError(
                    f"no complete response within {self.response_timeout}s "
                    f"({n - remaining} of {n} bytes read); socket closed"
                ) from None
            if not data:
                raise ProtocolError(
                    f"server closed the connection mid-frame "
                    f"({n - remaining} of {n} bytes read)"
                )
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)
