"""Logical plan nodes.

Standard relational operators plus the paper's four summary-based operators
(§3.2): Filter **F**, Selection **S**, Join **J**, Sort **O**. The optimizer
rewrites trees of these nodes with the §5.1 equivalence rules before
lowering them to physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.query.ast import (
    AggCall,
    And,
    ColumnRef,
    Comparison,
    Expr,
    Not,
    Or,
    SummaryExpr,
)


# -- expression analysis helpers ------------------------------------------------


def aliases_in(expr: Expr) -> set[str]:
    """Table aliases referenced by ``expr`` (data and summary refs)."""
    out: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ColumnRef) and node.alias:
            out.add(node.alias)
        elif isinstance(node, SummaryExpr) and node.alias:
            out.add(node.alias)
    return out


def has_summary_expr(expr: Expr) -> bool:
    return any(isinstance(node, SummaryExpr) for node in expr.walk())


def summary_exprs_in(expr: Expr) -> list[SummaryExpr]:
    return [n for n in expr.walk() if isinstance(n, SummaryExpr)]


def instances_in(expr: Expr) -> set[str]:
    """Summary instance names statically referenced by ``expr``."""
    out: set[str] = set()
    for node in summary_exprs_in(expr):
        name = node.instance_name
        if name is not None:
            out.add(name)
    return out


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a WHERE expression into top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(split_conjuncts(item))
        return out
    return [expr]


def conjoin(conjuncts: list[Expr]) -> Expr | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(tuple(conjuncts))


# -- plan nodes ---------------------------------------------------------------------


@dataclass
class LogicalPlan:
    """Base class for logical plan nodes."""

    @property
    def children(self) -> list["LogicalPlan"]:
        return []

    def with_children(self, children: list["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__.removeprefix("Logical")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def walk_plan(self):
        yield self
        for child in self.children:
            yield from child.walk_plan()

    def aliases(self) -> set[str]:
        """Aliases produced by this subtree."""
        out: set[str] = set()
        for node in self.walk_plan():
            if isinstance(node, LogicalScan):
                out.add(node.alias)
        return out


@dataclass
class LogicalScan(LogicalPlan):
    table: str
    alias: str

    def with_children(self, children):
        assert not children
        return self

    def label(self) -> str:
        return f"Scan({self.table} {self.alias})"


@dataclass
class LogicalSelect(LogicalPlan):
    """Standard data selection σ."""

    child: LogicalPlan
    predicate: Expr

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        return f"Select[σ]({self.predicate})"


@dataclass
class LogicalSummarySelect(LogicalPlan):
    """Summary-based selection S (§3.2): keeps tuples whose summaries
    satisfy the predicate; summaries pass unchanged."""

    child: LogicalPlan
    predicate: Expr

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        return f"SummarySelect[S]({self.predicate})"


@dataclass
class LogicalSummaryFilter(LogicalPlan):
    """Summary-based filter F (§3.2): keeps every tuple but only the summary
    objects satisfying the per-object predicate."""

    child: LogicalPlan
    predicate: Expr  # over ObjectFunc calls
    structural: bool = False  # predicate on InstanceID / SummaryType only

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        kind = "structural" if self.structural else "content"
        return f"SummaryFilter[F:{kind}]({self.predicate})"


@dataclass
class LogicalJoin(LogicalPlan):
    """Standard data join ⋈ (condition None = cross product)."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expr | None = None

    @property
    def children(self):
        return [self.left, self.right]

    def with_children(self, children):
        return replace(self, left=children[0], right=children[1])

    def label(self) -> str:
        return f"Join[⋈]({self.condition})"


@dataclass
class LogicalSummaryJoin(LogicalPlan):
    """Summary-based join J (§3.2): joins r and s iff p(r.$, s.$).

    A mixed expression (the paper's revision-join example combines a
    data-based and a summary-based join) carries the data part in
    ``data_condition``; both are evaluated *before* the output tuple's
    summary sets merge.
    """

    left: LogicalPlan
    right: LogicalPlan
    predicate: Expr
    data_condition: Expr | None = None

    @property
    def children(self):
        return [self.left, self.right]

    def with_children(self, children):
        return replace(self, left=children[0], right=children[1])

    def label(self) -> str:
        if self.data_condition is not None:
            return f"SummaryJoin[J]({self.data_condition} & {self.predicate})"
        return f"SummaryJoin[J]({self.predicate})"


@dataclass
class LogicalProject(LogicalPlan):
    """Projection π — also eliminates the effect of annotations attached
    only to projected-out columns (§2.2)."""

    child: LogicalPlan
    items: list  # SelectItem | Star

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        return f"Project[π]({len(self.items)} items)"


@dataclass
class LogicalSort(LogicalPlan):
    """Sort: data keys -> standard sort; summary keys -> the O operator."""

    child: LogicalPlan
    keys: list[tuple[Expr, str]]  # (expr, "ASC"|"DESC")

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    @property
    def is_summary_sort(self) -> bool:
        return any(has_summary_expr(e) for e, _ in self.keys)

    def label(self) -> str:
        tag = "O" if self.is_summary_sort else "sort"
        rendered = ", ".join(f"{e} {d}" for e, d in self.keys)
        return f"Sort[{tag}]({rendered})"


@dataclass
class LogicalGroup(LogicalPlan):
    """Grouping + aggregation; summaries of group members merge (with
    annotation dedup) into the group's summary set."""

    child: LogicalPlan
    keys: list[Expr]
    aggregates: list[tuple[AggCall, str]] = field(default_factory=list)

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        return f"Group(keys={len(self.keys)}, aggs={len(self.aggregates)})"


@dataclass
class LogicalDistinct(LogicalPlan):
    child: LogicalPlan

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])


@dataclass
class LogicalLimit(LogicalPlan):
    child: LogicalPlan
    limit: int

    @property
    def children(self):
        return [self.child]

    def with_children(self, children):
        return replace(self, child=children[0])

    def label(self) -> str:
        return f"Limit({self.limit})"
