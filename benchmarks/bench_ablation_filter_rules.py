"""Ablation — Rules 7/8 (summary-filter pushdown), no paper figure.

DESIGN.md §4 calls out early filter pushdown as a design choice worth
ablating: a structural ``FILTER SUMMARIES`` predicate above a join can be
pushed to both inputs (Rule 8), dropping unneeded summary objects before
they flow through — and pay merge costs inside — the join.
"""

import pytest

from repro.bench import FigureTable, cached_database

# A high-fanout self-join on family: every output pair merges both
# tuples' summary sets, so dropping the (heavy) TextSummary1 objects
# before the join — Rule 8 — saves real merge work per output row.
QUERY = (
    "Select r.common_name, s.common_name From birds r, birds s "
    "Where r.family = s.family "
    "FILTER SUMMARIES getSummaryName() = 'ClassBird1'"
)


@pytest.mark.benchmark(group="ablation-filter-rules")
@pytest.mark.parametrize("mode", ["Rules-Disabled", "Rules-Enabled"])
@pytest.mark.parametrize("density", [10, 50, 200])
def test_filter_pushdown(
    benchmark, case, mode, density, preset, figure_writer
):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    db = cached_database(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="both", cell_fraction=0.0,
    )
    db.options.enable_rules = mode == "Rules-Enabled"
    try:
        m = case(db, lambda: db.sql(QUERY))
    finally:
        db.options.enable_rules = True

    table = figure_writer.setdefault(
        "ablation_filter_rules",
        FigureTable(
            "Ablation — structural filter pushdown (Rules 7/8)", unit="ms"
        ),
    )
    table.add_measurement(mode, preset.label(density), m)
    active = [d for d in (10, 50, 200) if d in preset.densities]
    if len(table.cells) == 2 * len(active):
        table.note_ratio("Rules-Disabled", "Rules-Enabled",
                         "early filter pushdown wins")
