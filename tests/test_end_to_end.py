"""End-to-end lifecycle scenarios across the whole stack: DDL, annotation
maintenance, index consistency under mutation, key widening at scale, and
query pipelines that chain several operators."""

import pytest

from repro import Column, Database, ValueType

SEEDS = [
    ("flu virus infection outbreak epidemic sick", "Disease"),
    ("foraging nesting singing courtship flock", "Behavior"),
    ("survey checklist volunteer photo record", "Other"),
]
DISEASE_TEXT = "flu virus infection outbreak in the flock"
BEHAVIOR_TEXT = "nesting and singing behavior at the flock roost"
EXPR = "$.getSummaryObject('C').getLabelValue"


def make_db(indexable: bool = True) -> Database:
    db = Database()
    db.create_table("birds", [
        Column("name", ValueType.TEXT),
        Column("family", ValueType.TEXT),
        Column("weight", ValueType.FLOAT),
    ])
    db.create_classifier_instance("C", ["Disease", "Behavior", "Other"],
                                  SEEDS)
    db.sql(f"Alter Table birds Add {'Indexable ' if indexable else ''}C")
    return db


class TestLifecycle:
    def test_full_cycle_annotate_query_delete_requery(self):
        db = make_db()
        oids = {}
        for name, n in [("a", 3), ("b", 1), ("c", 0)]:
            oid = db.insert("birds", {"name": name, "family": "F",
                                      "weight": 1.0})
            oids[name] = oid
            for _ in range(n):
                db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        query = f"Select name From birds r Where r.{EXPR}('Disease') >= 2"
        assert [t.get("name") for t in db.sql(query).tuples] == ["a"]

        # Delete a's annotations one by one; the index must track.
        for ann_id in list(
            db.manager.summary_set_for("birds", oids["a"])
            .get_summary_object("C").label_elements["Disease"]
        )[:2]:
            db.delete_annotation(ann_id)
        assert len(db.sql(query)) == 0
        query1 = f"Select name From birds r Where r.{EXPR}('Disease') = 1"
        assert sorted(t.get("name") for t in db.sql(query1).tuples) == [
            "a", "b",
        ]

    def test_tuple_delete_removes_from_index_and_results(self):
        db = make_db()
        oid = db.insert("birds", {"name": "x", "family": "F", "weight": 1.0})
        db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        index = db.summary_indexes[("birds", "C")]
        assert len(index) > 0
        db.delete_tuple("birds", oid)
        assert len(index) == 0
        assert len(db.sql("Select name From birds")) == 0

    def test_drop_instance_then_queries_reject_it(self):
        db = make_db()
        db.insert("birds", {"name": "x", "family": "F", "weight": 1.0})
        db.sql("Alter Table birds Drop C")
        with pytest.raises(Exception):
            db.sql(f"Select name From birds r Where r.{EXPR}('Disease') > 0")

    def test_zoom_reflects_deletes(self):
        db = make_db()
        oid = db.insert("birds", {"name": "x", "family": "F", "weight": 1.0})
        ann = db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.add_annotation(DISEASE_TEXT + " again", table="birds", oid=oid)
        assert len(db.zoom_in("birds", oid, "C", "Disease")) == 2
        db.delete_annotation(ann.ann_id)
        assert len(db.zoom_in("birds", oid, "C", "Disease")) == 1


class TestKeyWidening:
    def test_counts_past_999_trigger_rebuild(self):
        # The paper's footnote 1: past 999 annotations on one label the
        # index widens its count format and rebuilds.
        db = make_db()
        oid = db.insert("birds", {"name": "x", "family": "F", "weight": 1.0})
        index = db.summary_indexes[("birds", "C")]
        assert index.width == 3
        db.add_annotations_bulk([
            (DISEASE_TEXT, [__import__("repro.annotations.annotation",
                                       fromlist=["AnnotationTarget"])
                            .AnnotationTarget("birds", oid, ())])
            for _ in range(1001)
        ])
        assert index.width == 4
        # The widened index still answers queries correctly.
        result = db.sql(
            f"Select name From birds r Where r.{EXPR}('Disease') > 999"
        )
        assert [t.get("name") for t in result.tuples] == ["x"]

    def test_widened_index_range_probe(self):
        db = make_db()
        from repro.annotations.annotation import AnnotationTarget

        for name, count in [("small", 5), ("big", 1500)]:
            oid = db.insert("birds", {"name": name, "family": "F",
                                      "weight": 1.0})
            db.add_annotations_bulk(
                [(DISEASE_TEXT, [AnnotationTarget("birds", oid, ())])]
                * count
            )
        index = db.summary_indexes[("birds", "C")]
        assert index.width == 4
        result = db.sql(
            f"Select name From birds r Where r.{EXPR}('Disease') in [1, 10]"
        )
        assert [t.get("name") for t in result.tuples] == ["small"]


class TestPipelines:
    @pytest.fixture()
    def db(self):
        database = make_db()
        data = [
            ("a", "Anatidae", 3, 1), ("b", "Anatidae", 1, 2),
            ("c", "Corvidae", 2, 0), ("d", "Corvidae", 0, 3),
            ("e", "Laridae", 4, 4),
        ]
        for name, family, diseases, behaviors in data:
            oid = database.insert(
                "birds", {"name": name, "family": family, "weight": 1.0}
            )
            for _ in range(diseases):
                database.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
            for _ in range(behaviors):
                database.add_annotation(BEHAVIOR_TEXT, table="birds", oid=oid)
        database.analyze("birds")
        return database

    def test_select_sort_limit_chain(self, db):
        result = db.sql(
            f"Select name From birds r Where r.{EXPR}('Disease') > 0 "
            f"Order By r.{EXPR}('Disease') Desc Limit 2"
        )
        assert result.column("name") == ["e", "a"]

    def test_group_by_with_summary_output(self, db):
        result = db.sql(
            f"Select family, count(*) n, r.{EXPR}('Disease') d "
            "From birds r Group By family Order By family"
        )
        by_family = {
            t.get("family"): (t.get("n"), t.get("d")) for t in result.tuples
        }
        assert by_family["Anatidae"] == (2, 4)
        assert by_family["Corvidae"] == (2, 2)

    def test_distinct_then_order(self, db):
        result = db.sql(
            "Select Distinct family From birds Order By family"
        )
        assert result.column("family") == ["Anatidae", "Corvidae", "Laridae"]

    def test_filter_summaries_then_selection(self, db):
        result = db.sql(
            f"Select name From birds r Where r.{EXPR}('Behavior') >= 2 "
            "FILTER SUMMARIES getSummaryName() = 'C'"
        )
        assert sorted(t.get("name") for t in result.tuples) == [
            "b", "d", "e",
        ]
        assert set(result.summaries(0)) == {"C"}

    def test_aggregates_over_summary_values(self, db):
        result = db.sql(
            f"Select max(r.{EXPR}('Disease')) hi, "
            f"min(r.{EXPR}('Disease')) lo From birds r"
        )
        assert result.tuples[0].get("hi") == 4
        assert result.tuples[0].get("lo") == 0

    def test_summary_expression_in_select_list(self, db):
        result = db.sql(
            f"Select name, r.{EXPR}('Disease') d From birds r "
            "Order By name"
        )
        assert result.column("d") == [3, 1, 2, 0, 4]


class TestStatisticsLifecycle:
    def test_stats_refresh_after_mutations(self):
        db = make_db()
        for i in range(10):
            oid = db.insert("birds", {"name": f"n{i}", "family": "F",
                                      "weight": 1.0})
            for _ in range(i):
                db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.analyze("birds")
        before = db.statistics.table_stats("birds")
        label = before.instances["C"].labels["Disease"]
        assert label.max == 9
        # Mutate heavily, then re-analyze: stats must follow.
        oid = db.insert("birds", {"name": "new", "family": "F",
                                  "weight": 1.0})
        for _ in range(20):
            db.add_annotation(DISEASE_TEXT, table="birds", oid=oid)
        db.analyze("birds")
        after = db.statistics.table_stats("birds")
        assert after.instances["C"].labels["Disease"].max == 20
        assert after.row_count == 11
