"""Unit tests for the slotted page."""

import pytest

from repro.errors import PageFullError, RecordNotFoundError
from repro.storage.page import PAGE_SIZE, SlottedPage


def test_new_page_is_empty():
    page = SlottedPage()
    assert page.num_slots == 0
    assert page.records() == []
    assert page.free_end == PAGE_SIZE


def test_insert_and_read_roundtrip():
    page = SlottedPage()
    slot = page.insert(b"hello")
    assert page.read(slot) == b"hello"


def test_multiple_inserts_get_distinct_slots():
    page = SlottedPage()
    slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
    assert len(set(slots)) == 10
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"rec{i}".encode()


def test_delete_tombstones_slot():
    page = SlottedPage()
    a = page.insert(b"aaa")
    b = page.insert(b"bbb")
    page.delete(a)
    with pytest.raises(RecordNotFoundError):
        page.read(a)
    assert page.read(b) == b"bbb"


def test_delete_compacts_and_keeps_other_records_readable():
    page = SlottedPage()
    slots = [page.insert(bytes([65 + i]) * 20) for i in range(5)]
    before_free = page.free_space
    page.delete(slots[2])
    assert page.free_space == before_free + 20
    for i in (0, 1, 3, 4):
        assert page.read(slots[i]) == bytes([65 + i]) * 20


def test_slot_reuse_after_delete():
    page = SlottedPage()
    a = page.insert(b"first")
    page.insert(b"second")
    page.delete(a)
    c = page.insert(b"third")
    assert c == a  # tombstone slot is recycled
    assert page.read(c) == b"third"


def test_update_same_size_in_place():
    page = SlottedPage()
    slot = page.insert(b"aaaa")
    page.update(slot, b"bbbb")
    assert page.read(slot) == b"bbbb"


def test_update_grows_record():
    page = SlottedPage()
    slot = page.insert(b"tiny")
    other = page.insert(b"other")
    page.update(slot, b"a much longer record body")
    assert page.read(slot) == b"a much longer record body"
    assert page.read(other) == b"other"


def test_update_shrinks_record():
    page = SlottedPage()
    slot = page.insert(b"a fairly long record body here")
    page.update(slot, b"sm")
    assert page.read(slot) == b"sm"


def test_page_full_raises():
    page = SlottedPage()
    big = b"x" * SlottedPage.max_record_size()
    page.insert(big)
    with pytest.raises(PageFullError):
        page.insert(b"y")


def test_can_fit_accounts_for_slot_overhead():
    page = SlottedPage()
    assert page.can_fit(page.free_space - 4)
    assert not page.can_fit(page.free_space)


def test_fill_page_with_small_records():
    page = SlottedPage()
    count = 0
    while page.can_fit(16):
        page.insert(b"r" * 16)
        count += 1
    assert count > 300  # 8K page holds plenty of 16-byte records
    assert page.live_count() == count


def test_delete_all_then_refill():
    page = SlottedPage()
    slots = [page.insert(b"z" * 32) for _ in range(50)]
    for slot in slots:
        page.delete(slot)
    assert page.live_count() == 0
    refill = [page.insert(b"w" * 32) for _ in range(50)]
    assert page.live_count() == 50
    for slot in refill:
        assert page.read(slot) == b"w" * 32


def test_empty_record_rejected():
    page = SlottedPage()
    with pytest.raises(Exception):
        page.insert(b"")


def test_read_bad_slot_raises():
    page = SlottedPage()
    with pytest.raises(RecordNotFoundError):
        page.read(0)
