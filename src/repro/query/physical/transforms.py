"""Tuple-at-a-time transform operators: σ, S, F, π, sort/O, group, distinct,
limit."""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.errors import QueryError
from repro.query.ast import AggCall, ColumnRef, Expr, Literal, SelectItem, Star
from repro.query.batch import Batch, batches_from_rows, rows_from_batches
from repro.query.eval import (
    batch_predicate_mask,
    evaluate,
    evaluate_object_predicate,
)
from repro.query.physical.base import ExecContext, PhysicalOperator
from repro.query.tuples import QTuple
from repro.storage.heapfile import HeapFile


def _hashable(value: object) -> object:
    """A hashable stand-in for a grouping/distinct key value.

    Values that already hash pass through untouched; the containers a
    spill or UDF can legitimately produce are converted structurally.
    Anything else gets a clear QueryError instead of the bare TypeError
    ``dict`` raises.
    """
    try:
        hash(value)
        return value
    except TypeError:
        pass
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, bytearray):
        return bytes(value)
    if isinstance(value, set):
        return frozenset(_hashable(v) for v in value)
    if isinstance(value, dict):
        try:
            return tuple(sorted(
                (k, _hashable(v)) for k, v in value.items()
            ))
        except TypeError:
            pass
    raise QueryError(
        f"cannot group or deduplicate on unhashable value {value!r} "
        f"of type {type(value).__name__}"
    )


class FilterOp(PhysicalOperator):
    """Standard data selection σ (also evaluates summary predicates when the
    optimizer chose not to use an index — the S operator's generic form)."""

    def __init__(self, ctx: ExecContext, child: PhysicalOperator, predicate: Expr):
        self.ctx = ctx
        self.child = child
        self.predicate = predicate

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        for row in self.child.rows():
            if evaluate(self.predicate, row, self.ctx.eval_ctx):
                yield row

    def _produce_batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            mask = batch_predicate_mask(
                self.predicate, batch, self.ctx.eval_ctx
            )
            if mask.all():
                yield batch
            elif mask.any():
                yield batch.take(mask.nonzero()[0])

    def label(self) -> str:
        return f"Filter[σ]({self.predicate})"


class SummarySelectOp(FilterOp):
    """The S operator: tuples pass iff their summaries satisfy p; summary
    objects propagate unchanged (§3.2)."""

    def label(self) -> str:
        return f"SummarySelect[S]({self.predicate})"


class SummaryFilterOp(PhysicalOperator):
    """The F operator: every tuple passes, carrying only the summary objects
    that satisfy the per-object predicate (§3.2)."""

    def __init__(self, ctx: ExecContext, child: PhysicalOperator, predicate: Expr):
        self.ctx = ctx
        self.child = child
        self.predicate = predicate

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        return self._filtered(self.child.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        # F rewrites every row's summary sets: inherently row-at-a-time.
        return batches_from_rows(
            self._filtered(rows_from_batches(self.child.batches()))
        )

    def _filtered(self, rows: Iterator[QTuple]) -> Iterator[QTuple]:
        for row in rows:
            filtered_by_id: dict[int, object] = {}
            new_sets = {}
            for alias, sset in row.summary_sets.items():
                if id(sset) not in filtered_by_id:
                    filtered_by_id[id(sset)] = sset.filter(
                        lambda obj: evaluate_object_predicate(
                            self.predicate, obj, self.ctx.eval_ctx
                        )
                    )
                new_sets[alias] = filtered_by_id[id(sset)]
            yield QTuple(row.columns, row.values, new_sets, row.provenance)

    def label(self) -> str:
        return f"SummaryFilter[F]({self.predicate})"


class ProjectOp(PhysicalOperator):
    """Projection π over the final select list.

    Annotation-effect elimination already happened at the scans (before any
    merge, per [22] Theorems 1–2); this operator shapes the output columns.
    """

    def __init__(self, ctx: ExecContext, child: PhysicalOperator, items: list):
        self.ctx = ctx
        self.child = child
        self.items = items

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        for row in self.child.rows():
            columns: list[str] = []
            values: list[object] = []
            for item in self.items:
                if isinstance(item, Star):
                    for i, column in enumerate(row.columns):
                        alias = column.split(".", 1)[0]
                        if item.alias is None or alias == item.alias:
                            columns.append(column)
                            values.append(row.values[i])
                    continue
                assert isinstance(item, SelectItem)
                name = item.alias or str(item.expr)
                columns.append(name)
                values.append(self._value(item.expr, row))
            yield QTuple(columns, values, row.summary_sets, row.provenance)

    def _value(self, expr: Expr, row: QTuple) -> object:
        if isinstance(expr, AggCall):
            # Aggregates were computed by the Group operator below us.
            return row.get(str(expr))
        return evaluate(expr, row, self.ctx.eval_ctx)

    def _produce_batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            n = len(batch)
            columns: list[str] = []
            cols: list[list[object]] = []
            for item in self.items:
                if isinstance(item, Star):
                    for j, column in enumerate(batch.columns):
                        alias = column.split(".", 1)[0]
                        if item.alias is None or alias == item.alias:
                            columns.append(column)
                            cols.append(batch.cols[j])
                    continue
                assert isinstance(item, SelectItem)
                columns.append(item.alias or str(item.expr))
                cols.append(self._column(item.expr, batch, n))
            yield Batch(columns, cols, batch.summaries, batch.provenance)

    def _column(self, expr: Expr, batch: Batch, n: int) -> list[object]:
        """One select item's output column; whole-column moves for the
        shapes that allow it, per-row evaluation otherwise."""
        if isinstance(expr, AggCall):
            return batch.column_values(str(expr))
        if isinstance(expr, ColumnRef):
            name = f"{expr.alias}.{expr.column}" if expr.alias \
                else expr.column
            return batch.column_values(name)
        if isinstance(expr, Literal):
            return [expr.value] * n
        ctx = self.ctx.eval_ctx
        return [evaluate(expr, batch.row(i), ctx) for i in range(n)]

    def label(self) -> str:
        rendered = ", ".join(
            "*" if isinstance(i, Star) else str(i.expr) for i in self.items
        )
        return f"Project[π]({rendered})"


class SortOp(PhysicalOperator):
    """Sort — the O operator when keys are summary expressions (§3.2).

    ``method='mem'`` materializes and sorts in memory; ``method='disk'``
    runs an external merge sort that spills sorted runs to temporary heap
    pages (costing real, counted I/O) and k-way-merges them.
    """

    def __init__(
        self,
        ctx: ExecContext,
        child: PhysicalOperator,
        keys: list[tuple[Expr, str]],
        method: str = "mem",
        run_size: int = 512,
    ):
        if method not in ("mem", "disk"):
            raise QueryError(f"unknown sort method {method!r}")
        self.ctx = ctx
        self.child = child
        self.keys = keys
        self.method = method
        self.run_size = run_size

    @property
    def children(self):
        return [self.child]

    def _key(self, row: QTuple) -> "_SortKey":
        """Evaluate the sort keys once for one tuple (no caching by object
        identity — ids are recycled across the external merge's streams)."""
        values = [evaluate(expr, row, self.ctx.eval_ctx)
                  for expr, _ in self.keys]
        return _SortKey(values, [d for _, d in self.keys])

    def _produce(self) -> Iterator[QTuple]:
        return self._sorted(self.child.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        # Sorting is a full pipeline breaker either way; reuse the row
        # comparator over the child's batches and re-chunk the output.
        return batches_from_rows(
            self._sorted(rows_from_batches(self.child.batches()))
        )

    def _sorted(self, rows: Iterator[QTuple]) -> Iterator[QTuple]:
        if self.method == "mem":
            yield from sorted(rows, key=self._key)
            return
        yield from self._external_sort(rows)

    def _external_sort(self, rows: Iterator[QTuple]) -> Iterator[QTuple]:
        sort_key = self._key
        pool = self.ctx.catalog.pool
        runs: list[HeapFile] = []
        buffer: list[QTuple] = []

        def spill():
            if not buffer:
                return
            buffer.sort(key=sort_key)
            run = HeapFile(pool)
            for row in buffer:
                run.insert(row.to_bytes())
            runs.append(run)
            buffer.clear()

        for row in rows:
            buffer.append(row)
            if len(buffer) >= self.run_size:
                spill()
        spill()

        streams = [
            (QTuple.from_bytes(record) for _, record in run.scan())
            for run in runs
        ]
        merged = heapq.merge(
            *[(x for x in s) for s in streams],
            key=sort_key,
        )
        try:
            yield from merged
        finally:
            for run in runs:
                run.drop()

    def label(self) -> str:
        tag = "O" if any(
            hasattr(e, "chain") for e, _ in self.keys
        ) else "sort"
        rendered = ", ".join(f"{e} {d}" for e, d in self.keys)
        return f"Sort[{tag}:{self.method}]({rendered})"


class _SortKey:
    """Multi-key comparable with per-key direction; NULLs sort first under
    ASC (and therefore last under DESC), matching the engine's historical
    comparator semantics."""

    __slots__ = ("values", "directions")

    def __init__(self, values: list[object], directions: list[str]):
        self.values = values
        self.directions = directions

    def __lt__(self, other: "_SortKey") -> bool:
        for mine, theirs, direction in zip(
            self.values, other.values, self.directions
        ):
            if mine == theirs:
                continue
            if mine is None:
                less = True
            elif theirs is None:
                less = False
            else:
                try:
                    less = mine < theirs
                except TypeError as exc:
                    raise QueryError(
                        f"cannot compare sort keys {mine!r} < {theirs!r}"
                    ) from exc
            return less if direction != "DESC" else not less
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.values == other.values


class GroupOp(PhysicalOperator):
    """Grouping + aggregation.

    Summaries of the group members merge with annotation dedup (the Q2
    semantics of Figure 2: an output group's classifier counts reflect the
    distinct annotations across its base tuples).
    """

    def __init__(
        self,
        ctx: ExecContext,
        child: PhysicalOperator,
        keys: list[Expr],
        aggregates: list[tuple[AggCall, str]],
    ):
        self.ctx = ctx
        self.child = child
        self.keys = keys
        self.aggregates = aggregates

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        return self._grouped(self.child.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        # Grouping is a pipeline breaker; group over the child's batches
        # as rows and re-chunk the aggregated output.
        return batches_from_rows(
            self._grouped(rows_from_batches(self.child.batches()))
        )

    def _grouped(self, rows: Iterator[QTuple]) -> Iterator[QTuple]:
        # Keys are bucketed under a normalized hashable form, but each
        # group's output row carries the first-seen original key values.
        groups: dict[tuple, list[QTuple]] = {}
        originals: dict[tuple, tuple] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(
                evaluate(k, row, self.ctx.eval_ctx) for k in self.keys
            )
            norm = tuple(_hashable(v) for v in key)
            if norm not in groups:
                groups[norm] = []
                originals[norm] = key
                order.append(norm)
            groups[norm].append(row)

        if not groups and not self.keys:
            # Global aggregate over an empty input: one conventional row.
            yield self._output((), [])
            return
        for norm in order:
            yield self._output(originals[norm], groups[norm])

    def _output(self, key: tuple, members: list[QTuple]) -> QTuple:
        columns = [str(k) for k in self.keys]
        values: list[object] = list(key)
        for agg, name in self.aggregates:
            columns.append(str(agg))
            values.append(self._aggregate(agg, members))
        # Merge the members' summary sets (dedup handled by the merge).
        merged = None
        aliases: set[str] = set()
        provenance: dict[str, tuple[str, int]] = {}
        for member in members:
            aliases.update(member.summary_sets)
            provenance.update(member.provenance)
            mset = member.merged_summary_set()
            if merged is None:
                merged = mset.copy()
            else:
                merged.merge(mset)
        if merged is None:
            from repro.summaries.functions import SummarySet

            merged = SummarySet()
        return QTuple(
            columns, values, {a: merged for a in aliases} or {"_g": merged},
            provenance,
        )

    def _aggregate(self, agg: AggCall, members: list[QTuple]) -> object:
        if agg.func == "COUNT" and agg.arg is None:
            return len(members)
        if agg.arg is None:
            raise QueryError(f"{agg.func} requires an argument")
        observed = [
            v
            for v in (
                evaluate(agg.arg, m, self.ctx.eval_ctx) for m in members
            )
            if v is not None
        ]
        if agg.func == "COUNT":
            return len(observed)
        if not observed:
            return None
        if agg.func == "SUM":
            return sum(observed)
        if agg.func == "AVG":
            return sum(observed) / len(observed)
        if agg.func == "MIN":
            return min(observed)
        if agg.func == "MAX":
            return max(observed)
        raise QueryError(f"unknown aggregate {agg.func!r}")

    def label(self) -> str:
        rendered = ", ".join(str(k) for k in self.keys)
        aggs = ", ".join(str(a) for a, _ in self.aggregates)
        return f"Group(by=[{rendered}], aggs=[{aggs}])"


class DistinctOp(PhysicalOperator):
    """Duplicate elimination; duplicate tuples' summaries merge (per [22])."""

    def __init__(self, ctx: ExecContext, child: PhysicalOperator):
        self.ctx = ctx
        self.child = child

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        return self._distinct(self.child.rows())

    def _produce_batches(self) -> Iterator[Batch]:
        return batches_from_rows(
            self._distinct(rows_from_batches(self.child.batches()))
        )

    def _distinct(self, rows: Iterator[QTuple]) -> Iterator[QTuple]:
        seen: dict[tuple, QTuple] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(_hashable(v) for v in row.values)
            if key not in seen:
                copied = row.copy()
                seen[key] = copied
                order.append(key)
            else:
                kept = seen[key]
                kept_set = kept.merged_summary_set()
                kept_set.merge(row.merged_summary_set())
                for alias in kept.summary_sets:
                    kept.summary_sets[alias] = kept_set
        for key in order:
            yield seen[key]


class LimitOp(PhysicalOperator):
    def __init__(self, ctx: ExecContext, child: PhysicalOperator, limit: int):
        self.ctx = ctx
        self.child = child
        self.limit = limit

    @property
    def children(self):
        return [self.child]

    def _produce(self) -> Iterator[QTuple]:
        for i, row in enumerate(self.child.rows()):
            if i >= self.limit:
                return
            yield row

    def _produce_batches(self) -> Iterator[Batch]:
        remaining = self.limit
        if remaining <= 0:
            return
        for batch in self.child.batches():
            n = len(batch)
            if n <= remaining:
                yield batch
                remaining -= n
            else:
                yield batch.take(range(remaining))
                remaining = 0
            if remaining == 0:
                return

    def label(self) -> str:
        return f"Limit({self.limit})"
