"""Simulated usability case studies (Figures 2 and 16).

The paper's two 20-student studies cannot be re-run with humans; this
package models them analytically (see DESIGN.md's substitution table): the
engine answers what it can automate (timed for real), and every remaining
manual step charges calibrated per-item reading/sorting/checking time plus
Bernoulli error rates. The structural claims — automated queries take
seconds at 100% accuracy, manual post-processing scales with result size
and accumulates errors — fall out of the model.
"""

from repro.study.model import (
    GroupResult,
    HumanModel,
    simulate_motivating_study,
    simulate_usability_study,
)

__all__ = [
    "HumanModel",
    "GroupResult",
    "simulate_motivating_study",
    "simulate_usability_study",
]
