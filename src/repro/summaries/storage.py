"""De-normalized summary-object storage (§4, Figure 4(b)).

For each user relation ``R`` the engine keeps a catalog table
``R_SummaryStorage`` with exactly one row per annotated data tuple, holding
*all* of that tuple's summary objects in serialized (de-normalized) form.
The two properties the paper calls out both hold here:

1. queries over ``R`` alone never touch summary pages, and
2. propagation reads one storage row per tuple — no re-construction joins.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator

from repro.btree import BTree
from repro.catalog.keys import decode_int, encode_int
from repro.errors import RecordNotFoundError, ReproError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, RID
from repro.storage.page import SlottedPage
from repro.summaries.objects import ClassifierObject, SummaryObject


def _parsed_label_count(payload: list, instance: str, label: str) -> tuple:
    """``label_count`` resolution over a fully parsed storage payload."""
    for entry in payload:
        if entry.get("instance") == instance:
            if entry.get("type") != "Classifier":
                return "fallback", None
            members = entry.get("label_elements", {}).get(label)
            if members is None:
                return "fallback", None
            return "ok", len(members)
    return "ok", None


def _raw_label_count(data: bytes, instance: str, label: str) -> tuple:
    """Count one classifier label straight off the serialized row bytes.

    The payload is our own ``json.dumps(..., separators=(",", ":"))`` of
    ``to_dict()`` lists, so the needles below (all quote-anchored, and
    quotes inside JSON string values are always escaped) can only match
    structural positions. Any shape the scan can't prove is resolved by a
    full parse instead — never guessed.
    """
    if json.dumps(instance) != f'"{instance}"' or \
            json.dumps(label) != f'"{label}"':
        return _parsed_label_count(json.loads(data), instance, label)
    if data.find(b'"instance":"' + instance.encode() + b'"') < 0:
        return "ok", None  # tuple has no object for this instance
    prefix = b'{"type":"Classifier","instance":"' + instance.encode() + b'"'
    cpos = data.find(prefix)
    if cpos < 0:
        return "fallback", None  # present but not a classifier object
    elements = data.find(b'"label_elements":{', cpos)
    nxt = data.find(b'{"type":', cpos + 1)
    region_end = nxt if nxt >= 0 else len(data)
    if elements < 0 or elements >= region_end:
        return _parsed_label_count(json.loads(data), instance, label)
    region = data[elements:region_end]
    kpos = region.find(b'"' + label.encode() + b'":[')
    if kpos < 0:
        return "fallback", None  # rollup node or unknown label: per-row
    start = kpos + len(label) + 4
    end = region.find(b"]", start)
    if end < 0:
        return _parsed_label_count(json.loads(data), instance, label)
    ids = region[start:end]
    return "ok", (ids.count(b",") + 1) if ids else 0


class SummaryStorage:
    """One table's ``R_SummaryStorage``: OID -> {instance -> SummaryObject}."""

    #: Class-level fallback so instances unpickled from pre-cache images
    #: simply run uncached; the owning SummaryManager attaches its shared
    #: :class:`~repro.cache.SummaryCache` on construction.
    cache = None
    #: Class-level fallback for pre-async images: per-row freshness
    #: generations, bumped on every put/delete.  Background maintenance
    #: records a row's generation when it goes stale, so tests (and any
    #: future ABA-sensitive consumer) can tell "regenerated since" apart
    #: from "untouched".
    generations: dict[int, int] | None = None

    def __init__(self, table_name: str, pool: BufferPool, cache=None):
        self.table_name = table_name
        self.pool = pool
        self.heap = HeapFile(pool)
        #: OID -> heap RID of the tuple's summary row.
        self.oid_index = BTree(pool, unique=True)
        self.cache = cache
        self.generations = {}

    def bump_generation(self, oid: int) -> int:
        """Advance and return ``oid``'s freshness generation."""
        if self.generations is None:
            self.generations = {}
        value = self.generations.get(oid, 0) + 1
        self.generations[oid] = value
        return value

    def generation(self, oid: int) -> int:
        """Current freshness generation of ``oid`` (0 = never written)."""
        if self.generations is None:
            return 0
        return self.generations.get(oid, 0)

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def num_pages(self) -> int:
        """Heap pages used (Figure 7's storage-overhead metric)."""
        return self.heap.num_pages

    # -- encoding ----------------------------------------------------------------

    @staticmethod
    def _encode(objects: dict[str, SummaryObject]) -> bytes:
        payload = [obj.to_dict() for obj in objects.values()]
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def _decode(data: bytes) -> dict[str, SummaryObject]:
        objects = [SummaryObject.from_dict(d) for d in json.loads(data)]
        return {obj.instance_name: obj for obj in objects}

    # -- operations ----------------------------------------------------------------

    def _rid_for(self, oid: int) -> RID | None:
        hits = self.oid_index.search(encode_int(oid))
        if not hits:
            return None
        page_no, slot = struct.unpack("<IH", hits[0])
        return RID(page_no, slot)

    def get(self, oid: int) -> dict[str, SummaryObject] | None:
        """All summary objects of tuple ``oid`` (None when un-annotated).

        Read-through cached: the cache keeps pristine private copies (a
        ``None`` value memoizes "no storage row"), and every return value —
        hit or miss — is the caller's to mutate freely.
        """
        cache = self.cache
        if cache is None or not cache.enabled:
            rid = self._rid_for(oid)
            if rid is None:
                return None
            return self._decode(self.heap.read(rid))
        hit, value = cache.lookup(self.table_name, oid)
        if hit:
            if value is None:
                return None
            return {name: obj.copy() for name, obj in value.items()}
        rid = self._rid_for(oid)
        if rid is None:
            cache.store(self.table_name, oid, None, 0)
            return None
        data = self.heap.read(rid)
        objects = self._decode(data)
        cache.store(
            self.table_name, oid,
            {name: obj.copy() for name, obj in objects.items()}, len(data),
        )
        return objects

    def label_count(self, oid: int, instance: str, label: str) -> tuple:
        """``("ok", value)`` or ``("fallback", None)`` for the vectorized
        ``getSummaryObject(instance).getLabelValue(label)`` fast path.

        ``"ok"`` means ``value`` is exactly what full materialization would
        compute: the classifier's element count for ``label``, or None when
        the tuple has no storage row / no object under ``instance`` (the
        summary chain nullifies). ``"fallback"`` means the caller must
        materialize and evaluate the row conventionally (non-classifier
        object, hierarchical rollup label, unusual serialization). Answers
        come from the cache when one is attached and hot, otherwise from a
        raw scan of the serialized row — no SummaryObject construction.
        """
        cache = self.cache
        if cache is not None and cache.enabled:
            hit, value = cache.lookup(self.table_name, oid)
            if hit:
                if value is None:
                    return "ok", None
                obj = value.get(instance)
                if obj is None:
                    return "ok", None
                if not isinstance(obj, ClassifierObject):
                    return "fallback", None
                members = obj.label_elements.get(label)
                if members is None:
                    return "fallback", None
                return "ok", len(members)
        rid = self._rid_for(oid)
        if rid is None:
            return "ok", None
        return _raw_label_count(self.heap.read(rid), instance, label)

    def label_counts(
        self, oids: list[int], instance: str, label: str
    ) -> list[tuple]:
        """:meth:`label_count` for a whole batch of OIDs at once.

        When the OIDs span a dense range (a scan batch, or the survivors
        of one), all their RIDs resolve in a single OID-index range scan
        instead of one B-Tree descent per tuple. Sparse OID sets — where
        the range pass would visit mostly unwanted entries — fall back to
        per-OID probes, as does a hot cache.
        """
        cache = self.cache
        if not oids or (cache is not None and cache.enabled):
            return [self.label_count(o, instance, label) for o in oids]
        lo, hi = min(oids), max(oids)
        wanted = set(oids)
        if hi - lo + 1 > 4 * len(wanted):
            return [self.label_count(o, instance, label) for o in oids]
        rids: dict[int, RID] = {}
        for key, value in self.oid_index.range_scan(
            encode_int(lo), encode_int(hi)
        ):
            oid = decode_int(key)
            if oid in wanted:
                page_no, slot = struct.unpack("<IH", value)
                rids[oid] = RID(page_no, slot)
        out: list[tuple] = []
        for oid in oids:
            rid = rids.get(oid)
            if rid is None:
                out.append(("ok", None))
            else:
                out.append(
                    _raw_label_count(self.heap.read(rid), instance, label)
                )
        return out

    def put(self, oid: int, objects: dict[str, SummaryObject]) -> bool:
        """Insert or replace the summary row of ``oid``.

        Returns True when this created a *new* storage row (the paper's
        "Adding Annotation — Insertion" case) and False on update.
        """
        # Belt-and-braces with the observer-driven invalidation: repair
        # writes storage rows directly, bypassing the SummaryManager.
        if self.cache is not None:
            self.cache.invalidate(self.table_name, oid)
        self.bump_generation(oid)
        record = self._encode(objects)
        rid = self._rid_for(oid)
        if rid is None:
            new_rid = self.heap.insert(record)
            self.oid_index.insert(
                encode_int(oid), struct.pack("<IH", new_rid.page_no, new_rid.slot)
            )
            return True
        new_rid = self.heap.update(rid, record)
        if new_rid != rid:
            self.oid_index.delete(
                encode_int(oid), struct.pack("<IH", rid.page_no, rid.slot)
            )
            self.oid_index.insert(
                encode_int(oid), struct.pack("<IH", new_rid.page_no, new_rid.slot)
            )
        return False

    def delete(self, oid: int) -> None:
        """Drop the summary row of ``oid`` (tuple deletion, §4.1.2)."""
        if self.cache is not None:
            self.cache.invalidate(self.table_name, oid)
        self.bump_generation(oid)
        rid = self._rid_for(oid)
        if rid is None:
            raise RecordNotFoundError(
                f"{self.table_name}_SummaryStorage: no row for OID {oid}"
            )
        self.heap.delete(rid)
        self.oid_index.delete(
            encode_int(oid), struct.pack("<IH", rid.page_no, rid.slot)
        )

    def rebuild_oid_index(self) -> dict[str, int]:
        """Rebuild the OID index from the heap alone (repair path).

        Unlike user tables, summary rows are *self-describing*: every
        serialized object carries its ``tuple_id``, so the full OID → RID
        mapping is recoverable from the heap. Rows that fail to decode, are
        empty, or duplicate an already-seen OID (first row wins) are
        salvage-deleted. Returns counters: ``kept``, ``salvaged``.
        """
        if self.cache is not None:
            # Any OID may remap or vanish: stale everything for this table.
            self.cache.bump_epoch(self.table_name, "rebuild_oid_index")
        live: dict[int, RID] = {}
        drop: list[RID] = []
        for page_no in range(len(self.heap.page_ids)):
            page = SlottedPage(
                self.pool.get_page(self.heap.page_ids[page_no]),
                page_size=self.pool.disk.page_size,
            )
            for slot, stored in page.records():
                rid = RID(page_no, slot)
                try:
                    objects = self._decode(self.heap._unwrap(stored))
                    oid = next(iter(objects.values())).tuple_id
                except (ReproError, StopIteration, ValueError, KeyError,
                        TypeError):
                    drop.append(rid)
                    continue
                if oid in live:
                    drop.append(rid)
                    continue
                live[oid] = rid
        for rid in drop:
            self.heap.salvage_delete(rid)
        try:
            self.oid_index.drop()
        except ReproError:
            pass  # corrupt tree: abandon its pages rather than fail repair
        self.oid_index = BTree(self.pool, unique=True)
        for oid, rid in live.items():
            self.oid_index.insert(
                encode_int(oid), struct.pack("<IH", rid.page_no, rid.slot)
            )
        self.heap.recount()
        return {"kept": len(live), "salvaged": len(drop)}

    def scan(self) -> Iterator[tuple[int, dict[str, SummaryObject]]]:
        """Yield ``(oid, objects)`` for every annotated tuple."""
        rid_to_oid = {}
        for k, v in self.oid_index.items():
            page_no, slot = struct.unpack("<IH", v)
            rid_to_oid[RID(page_no, slot)] = decode_int(k)
        for rid, record in self.heap.scan():
            yield rid_to_oid[rid], self._decode(record)
