"""Query serving: asyncio TCP server + thin client (DESIGN.md §5g–5h).

The server multiplexes concurrent clients over one
:class:`~repro.core.database.Database`; each connection owns a locking
:class:`~repro.txn.session.Session`, statements run on a worker thread
pool, and a mid-statement client hangup cancels the statement through
the cooperative path so locks are never stranded.  Overload is shed
with typed errors (connection cap + bounded statement queue), shutdown
drains gracefully, and a seeded
:class:`~repro.faults.network.NetworkFaultPlan` can subject the whole
stack to resets/stalls/partial/garbled frames.
:class:`~repro.server.resilient.ResilientQueryClient` is the
self-healing reference client.
"""

from repro.server.client import QueryClient
from repro.server.protocol import (
    CRC_FLAG,
    DEFAULT_PORT,
    MAX_FRAME,
    decode_header,
    decode_length,
    decode_payload,
    encode_frame,
    frame_crc,
    jsonable_result,
    verify_crc,
)
from repro.server.resilient import ResilientQueryClient, is_read_only
from repro.server.server import QueryServer, serve

__all__ = [
    "CRC_FLAG",
    "DEFAULT_PORT",
    "MAX_FRAME",
    "QueryClient",
    "QueryServer",
    "ResilientQueryClient",
    "decode_header",
    "decode_length",
    "decode_payload",
    "encode_frame",
    "frame_crc",
    "is_read_only",
    "jsonable_result",
    "serve",
    "verify_crc",
]
