"""Striped table-granularity reader/writer locks.

The concurrency unit is the table (plus the ``ANNOTATION_RESOURCE``
pseudo-table guarding the global annotation-id space): concurrent readers
of a table proceed together while writers serialize, which matches the
engine's write paths — every DML/annotation statement funnels through
per-table structures (heap, OID index, summary storage).

Design:

* **Striping.**  The resource→lock map is split across ``num_stripes``
  independently-mutexed shards, so sessions touching different tables
  never contend on a single registry mutex.  The per-resource lock itself
  is a condition-variable reader/writer lock with owner tracking.

* **Reentrancy and upgrade.**  An owner may re-acquire a mode it already
  holds (counted), take shared while holding exclusive (covered), and
  *upgrade* shared→exclusive — the upgrade waits until it is the sole
  reader.  Two transactions upgrading the same table deadlock by
  construction; that is resolved by timeout, below.

* **Deadlock detection by timeout.**  Waits are bounded
  (``timeout``, default :func:`default_lock_timeout` /
  ``REPRO_LOCK_TIMEOUT``).  A wait that expires raises
  :class:`~repro.errors.LockTimeoutError`; the session layer treats the
  waiter as the deadlock victim and auto-aborts its transaction,
  releasing its locks so the other side proceeds.

* **Cancellation integration.**  Waits poll in short slices and run the
  statement's :class:`~repro.resilience.context.ExecutionContext` check
  between slices, so a statement deadline or a client cancellation (e.g.
  a dropped server connection) interrupts a lock wait exactly like it
  interrupts an operator batch boundary.

Counters (``lock.*``) land in the owning database's
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import LockTimeoutError

#: pseudo-resource serializing the global annotation-id space.
ANNOTATION_RESOURCE = "__annotations__"

#: seconds between cancellation checks while waiting on a lock.
WAIT_SLICE = 0.05


def default_lock_timeout() -> float:
    """Lock-wait bound (= deadlock detection latency): the
    ``REPRO_LOCK_TIMEOUT`` environment variable, else 5 seconds."""
    raw = os.environ.get("REPRO_LOCK_TIMEOUT", "").strip()
    try:
        return float(raw) if raw else 5.0
    except ValueError:
        return 5.0


class _ResourceLock:
    """One reader/writer lock with owner-tracked reentrancy + upgrade."""

    __slots__ = ("cond", "readers", "writer", "writer_depth", "waiting")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        #: owner -> shared acquisition count.
        self.readers: dict[object, int] = {}
        self.writer: object | None = None
        self.writer_depth = 0
        #: owners currently blocked on this lock (observability).
        self.waiting = 0

    # Grant rules. ``owner`` comparisons make the lock reentrant: an
    # owner's own holds never block it (shared under its own exclusive,
    # upgrade once it is the sole reader).

    def _can_read(self, owner) -> bool:
        return self.writer is None or self.writer == owner

    def _can_write(self, owner) -> bool:
        if self.writer is not None and self.writer != owner:
            return False
        others = [o for o in self.readers if o != owner]
        return not others

    def _wait_for(self, owner, predicate, deadline: float, ctx) -> None:
        """Wait until ``predicate(owner)`` holds, in cancellation-checked
        slices, raising :class:`LockTimeoutError` at ``deadline``."""
        self.waiting += 1
        try:
            while not predicate(owner):
                if ctx is not None:
                    # Outside the condition so a cancellation can never
                    # leave the condition lock held.
                    self.cond.release()
                    try:
                        ctx.check()
                    finally:
                        self.cond.acquire()
                    if predicate(owner):
                        return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise LockTimeoutError(
                        "lock wait timed out (deadlock victim)"
                    )
                self.cond.wait(min(WAIT_SLICE, remaining))
        finally:
            self.waiting -= 1

    def acquire_shared(self, owner, timeout: float, ctx=None) -> None:
        with self.cond:
            if owner in self.readers or self.writer == owner:
                # Reentrant or covered by our own exclusive.
                self.readers[owner] = self.readers.get(owner, 0) + 1
                return
            self._wait_for(
                owner, self._can_read, time.monotonic() + timeout, ctx
            )
            self.readers[owner] = 1

    def acquire_exclusive(self, owner, timeout: float, ctx=None) -> bool:
        """Returns True when this acquisition was an upgrade from a
        shared hold (the caller counts upgrades)."""
        with self.cond:
            if self.writer == owner:
                self.writer_depth += 1
                return False
            upgrade = owner in self.readers
            self._wait_for(
                owner, self._can_write, time.monotonic() + timeout, ctx
            )
            self.writer = owner
            self.writer_depth = 1
            return upgrade

    def release_owner(self, owner) -> None:
        """Drop every hold ``owner`` has and wake the waiters."""
        with self.cond:
            self.readers.pop(owner, None)
            if self.writer == owner:
                self.writer = None
                self.writer_depth = 0
            self.cond.notify_all()


class StripedLockManager:
    """Per-table RW locks behind ``num_stripes`` independent registries."""

    def __init__(self, num_stripes: int = 16, metrics=None,
                 timeout: float | None = None):
        self.num_stripes = max(1, num_stripes)
        self.metrics = metrics
        #: default lock-wait bound; per-call override wins.
        self.timeout = timeout if timeout is not None else default_lock_timeout()
        self._stripes: list[dict[str, _ResourceLock]] = [
            {} for _ in range(self.num_stripes)
        ]
        self._stripe_locks = [
            threading.Lock() for _ in range(self.num_stripes)
        ]
        #: owner -> set of resources held (guarded by the owner's session;
        #: only mutated under the stripe lock for cleanup consistency).
        self._held: dict[object, set[str]] = {}
        self._held_lock = threading.Lock()

    def _inc(self, key: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(key, n)

    def _lock_for(self, resource: str) -> _ResourceLock:
        resource = resource.lower()
        stripe = hash(resource) % self.num_stripes
        with self._stripe_locks[stripe]:
            lock = self._stripes[stripe].get(resource)
            if lock is None:
                lock = self._stripes[stripe][resource] = _ResourceLock()
            return lock

    def _note_held(self, owner, resource: str) -> None:
        with self._held_lock:
            self._held.setdefault(owner, set()).add(resource.lower())

    # -- acquisition --------------------------------------------------------

    def acquire_shared(self, owner, resource: str,
                       timeout: float | None = None, ctx=None) -> None:
        lock = self._lock_for(resource)
        started = time.monotonic()
        try:
            lock.acquire_shared(
                owner, self.timeout if timeout is None else timeout, ctx
            )
        except LockTimeoutError:
            self._inc("lock.timeouts")
            raise LockTimeoutError(
                f"timed out waiting for shared lock on {resource!r} "
                "(deadlock victim)"
            ) from None
        self._note_held(owner, resource)
        self._inc("lock.acquisitions.shared")
        waited = time.monotonic() - started
        if waited > WAIT_SLICE:
            self._inc("lock.waits")

    def acquire_exclusive(self, owner, resource: str,
                          timeout: float | None = None, ctx=None) -> None:
        lock = self._lock_for(resource)
        started = time.monotonic()
        try:
            upgraded = lock.acquire_exclusive(
                owner, self.timeout if timeout is None else timeout, ctx
            )
        except LockTimeoutError:
            self._inc("lock.timeouts")
            raise LockTimeoutError(
                f"timed out waiting for exclusive lock on {resource!r} "
                "(deadlock victim)"
            ) from None
        self._note_held(owner, resource)
        self._inc("lock.acquisitions.exclusive")
        if upgraded:
            self._inc("lock.upgrades")
        waited = time.monotonic() - started
        if waited > WAIT_SLICE:
            self._inc("lock.waits")

    # -- release ------------------------------------------------------------

    def release_all(self, owner) -> None:
        """Drop every lock ``owner`` holds (statement end in autocommit,
        COMMIT/ABORT for transactions)."""
        with self._held_lock:
            resources = self._held.pop(owner, set())
        for resource in resources:
            stripe = hash(resource) % self.num_stripes
            with self._stripe_locks[stripe]:
                lock = self._stripes[stripe].get(resource)
            if lock is not None:
                # Entries are never deleted — the registry is bounded by
                # the number of distinct tables, and deletion would race
                # with a concurrent ``_lock_for`` handout (two lock
                # objects for one table breaks mutual exclusion).
                lock.release_owner(owner)
        if resources:
            self._inc("lock.releases")

    def held_by(self, owner) -> set[str]:
        with self._held_lock:
            return set(self._held.get(owner, ()))

    def __len__(self) -> int:
        """Live lock entries across all stripes (snapshot gauge)."""
        total = 0
        for stripe_lock, stripe in zip(self._stripe_locks, self._stripes):
            with stripe_lock:
                total += len(stripe)
        return total
