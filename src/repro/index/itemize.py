"""Itemization of Classifier Rep[] arrays into index keys (§4.1.1).

``(classLabel, annotationCnt)`` pairs become text keys of the form
``"classLabel:ExtendedAnnotationCnt"`` where the count is zero-padded to a
fixed width (3 characters initially) so that lexicographic key order matches
numeric count order. When a count outgrows the width, the index is rebuilt
with a wider format (the paper's footnote 1 — "a very rare operation").
"""

from __future__ import annotations

from repro.errors import IndexError_

DEFAULT_WIDTH = 3
SEPARATOR = ":"


def max_count(width: int) -> int:
    """Largest count representable at ``width`` characters (999 for 3)."""
    return 10**width - 1


def extend_count(count: int, width: int = DEFAULT_WIDTH) -> str:
    """Zero-padded, order-preserving string form of ``count``."""
    if count < 0:
        raise IndexError_(f"negative annotation count {count}")
    if count > max_count(width):
        raise IndexError_(
            f"count {count} exceeds {width}-character format"
        )
    return f"{count:0{width}d}"


def itemize(label: str, count: int, width: int = DEFAULT_WIDTH) -> str:
    """One indexed key: e.g. ``itemize("Disease", 8)`` -> ``"Disease:008"``."""
    if SEPARATOR in label:
        raise IndexError_(f"label {label!r} may not contain {SEPARATOR!r}")
    return f"{label}{SEPARATOR}{extend_count(count, width)}"


def itemize_object(rep: list[tuple[str, int]], width: int = DEFAULT_WIDTH) -> list[str]:
    """Itemize a whole classifier Rep[] array (Figure 4(d) step 1)."""
    return [itemize(label, count, width) for label, count in rep]


def parse_item(item: str) -> tuple[str, int]:
    """Inverse of :func:`itemize`."""
    label, _, count = item.rpartition(SEPARATOR)
    if not label:
        raise IndexError_(f"malformed itemized key {item!r}")
    return label, int(count)


def probe_range(
    label: str,
    lo: int | None,
    hi: int | None,
    width: int = DEFAULT_WIDTH,
) -> tuple[str, str]:
    """Starting and stopping probe keys for a range predicate (§4.1.2).

    Missing bounds are substituted with ``label:000...`` / ``label:999...``
    exactly as the paper describes.
    """
    lo_key = itemize(label, 0 if lo is None else lo, width)
    hi_key = itemize(label, max_count(width) if hi is None else hi, width)
    return lo_key, hi_key
