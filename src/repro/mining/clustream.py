"""CluStream-style incremental clustering (paper reference [2]).

Annotations attached to one data tuple are grouped into micro-clusters held
as cluster-feature (CF) vectors. CF vectors are additive *and* subtractive,
which is exactly what the summary-maintenance layer needs: adding an
annotation folds its feature vector in; deleting one (or eliminating its
effect under projection) subtracts it back out.

Each micro-cluster elects a representative member — the one closest to the
centroid — whose text becomes the group's face in the Cluster summary object
(``Rep[] = [(text, group_size)]`` per §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SummaryError
from repro.mining.text import hashed_tf_vector, tokenize

DEFAULT_DIM = 64
DEFAULT_MAX_CLUSTERS = 8
#: A point joins a cluster when its distance to the centroid is within this
#: factor of the cluster's RMS radius (CluStream's "maximal boundary").
DEFAULT_RADIUS_FACTOR = 2.0
#: Minimum absorption distance so singleton clusters can still grow. Feature
#: vectors are L2-normalized, so unrelated texts sit near sqrt(2) ~ 1.41 and
#: overlapping texts well below 1.0.
MIN_BOUNDARY = 1.0


@dataclass
class MicroCluster:
    """A CF-vector micro-cluster plus its member bookkeeping."""

    dim: int
    linear_sum: np.ndarray = field(default=None)  # type: ignore[assignment]
    square_sum: float = 0.0
    members: dict[int, np.ndarray] = field(default_factory=dict)
    #: member id -> short text excerpt, for representative (re-)election
    excerpts: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.linear_sum is None:
            self.linear_sum = np.zeros(self.dim, dtype=np.float64)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def centroid(self) -> np.ndarray:
        if not self.members:
            return np.zeros(self.dim, dtype=np.float64)
        return self.linear_sum / self.size

    @property
    def rms_radius(self) -> float:
        """Root-mean-square deviation of members from the centroid."""
        if self.size == 0:
            return 0.0
        centroid = self.centroid
        variance = self.square_sum / self.size - float(centroid @ centroid)
        return float(np.sqrt(max(variance, 0.0)))

    def add(self, member_id: int, vector: np.ndarray, excerpt: str) -> None:
        if member_id in self.members:
            raise SummaryError(f"member {member_id} already in cluster")
        self.linear_sum += vector
        self.square_sum += float(vector @ vector)
        self.members[member_id] = vector
        self.excerpts[member_id] = excerpt

    def remove(self, member_id: int) -> None:
        vector = self.members.pop(member_id, None)
        if vector is None:
            raise SummaryError(f"member {member_id} not in cluster")
        self.linear_sum -= vector
        self.square_sum -= float(vector @ vector)
        self.excerpts.pop(member_id, None)

    def merge(self, other: "MicroCluster") -> None:
        """Absorb ``other``'s members (CF additivity)."""
        self.linear_sum += other.linear_sum
        self.square_sum += other.square_sum
        self.members.update(other.members)
        self.excerpts.update(other.excerpts)

    def representative(self) -> tuple[int, str] | None:
        """(member id, excerpt) of the member nearest the centroid."""
        if not self.members:
            return None
        centroid = self.centroid
        best_id = min(
            self.members,
            key=lambda mid: (
                float(np.sum((self.members[mid] - centroid) ** 2)),
                mid,  # deterministic tie-break
            ),
        )
        return best_id, self.excerpts[best_id]

    def distance_to(self, vector: np.ndarray) -> float:
        diff = self.centroid - vector
        return float(np.sqrt(diff @ diff))


class CluStream:
    """Online micro-clustering of one tuple's annotations.

    Parameters
    ----------
    dim:
        Hashed-feature dimensionality.
    max_clusters:
        Cap on simultaneous micro-clusters; exceeding it merges the two
        closest clusters (the CluStream maintenance rule).
    radius_factor:
        Boundary multiplier for absorption.
    """

    def __init__(
        self,
        dim: int = DEFAULT_DIM,
        max_clusters: int = DEFAULT_MAX_CLUSTERS,
        radius_factor: float = DEFAULT_RADIUS_FACTOR,
        excerpt_chars: int = 120,
    ):
        self.dim = dim
        self.max_clusters = max_clusters
        self.radius_factor = radius_factor
        self.excerpt_chars = excerpt_chars
        self.clusters: list[MicroCluster] = []
        self._member_cluster: dict[int, MicroCluster] = {}

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def member_count(self) -> int:
        return len(self._member_cluster)

    def vectorize(self, text: str) -> np.ndarray:
        return hashed_tf_vector(tokenize(text), self.dim)

    def insert(self, member_id: int, text: str) -> MicroCluster:
        """Add an annotation; returns the cluster that absorbed it."""
        if member_id in self._member_cluster:
            raise SummaryError(f"member {member_id} already clustered")
        vector = self.vectorize(text)
        excerpt = text[: self.excerpt_chars]
        target = self._nearest_within_boundary(vector)
        if target is None:
            target = MicroCluster(self.dim)
            self.clusters.append(target)
        target.add(member_id, vector, excerpt)
        self._member_cluster[member_id] = target
        if len(self.clusters) > self.max_clusters:
            self._merge_closest_pair()
        return target

    def remove(self, member_id: int) -> None:
        """Subtract an annotation's effect (CF subtractivity)."""
        cluster = self._member_cluster.pop(member_id, None)
        if cluster is None:
            raise SummaryError(f"member {member_id} is not clustered")
        cluster.remove(member_id)
        if cluster.size == 0:
            self.clusters.remove(cluster)

    def cluster_of(self, member_id: int) -> MicroCluster | None:
        return self._member_cluster.get(member_id)

    def groups(self) -> list[tuple[tuple[int, str], int, list[int]]]:
        """Per cluster: (representative, size, sorted member ids).

        Ordered by descending size then representative id, which keeps the
        resulting Cluster summary object deterministic.
        """
        out = []
        for cluster in self.clusters:
            rep = cluster.representative()
            if rep is None:
                continue
            out.append((rep, cluster.size, sorted(cluster.members)))
        out.sort(key=lambda g: (-g[1], g[0][0]))
        return out

    # -- internals --------------------------------------------------------------

    def _nearest_within_boundary(self, vector: np.ndarray) -> MicroCluster | None:
        best, best_dist = None, float("inf")
        for cluster in self.clusters:
            dist = cluster.distance_to(vector)
            if dist < best_dist:
                best, best_dist = cluster, dist
        if best is None:
            return None
        boundary = max(self.radius_factor * best.rms_radius, MIN_BOUNDARY)
        return best if best_dist <= boundary else None

    def _merge_closest_pair(self) -> None:
        best_pair, best_dist = None, float("inf")
        for i in range(len(self.clusters)):
            for j in range(i + 1, len(self.clusters)):
                dist = self.clusters[i].distance_to(self.clusters[j].centroid)
                if dist < best_dist:
                    best_pair, best_dist = (i, j), dist
        if best_pair is None:
            return
        i, j = best_pair
        keeper, absorbed = self.clusters[i], self.clusters[j]
        keeper.merge(absorbed)
        for member_id in absorbed.members:
            self._member_cluster[member_id] = keeper
        del self.clusters[j]
