"""§2.2 Example 1 end-to-end: the worked SPJ query of the paper — shared
annotations must not double-count when joined tuples' summaries merge,
projection eliminates annotation effects before the merge, and cluster
representatives are re-elected when theirs is dropped."""

import pytest

from repro import Column, Database, ValueType

SEEDS = [
    ("flu virus infection outbreak epidemic", "Disease"),
    ("provenance source derivation lineage record", "Provenance"),
    ("comment remark note feedback", "Comment"),
]
DISEASE = "flu virus infection epidemic reported"
COMMENT = "comment remark feedback left by reviewer"


@pytest.fixture()
def db():
    database = Database()
    database.create_table("r_tab", [
        Column("a", ValueType.INT), Column("b", ValueType.INT),
        Column("c", ValueType.TEXT),
    ])
    database.create_table("s_tab", [
        Column("x", ValueType.INT), Column("y", ValueType.TEXT),
        Column("z", ValueType.TEXT),
    ])
    database.create_classifier_instance(
        "ClassBird2", ["Disease", "Provenance", "Comment"], SEEDS
    )
    database.manager.link("r_tab", "ClassBird2")
    database.manager.link("s_tab", "ClassBird2")
    return database


class TestSharedAnnotationDedup:
    def test_join_does_not_double_count(self, db):
        """An annotation attached to both r and s contributes ONCE to the
        merged classifier counts (the paper's 22-not-27 example)."""
        from repro.annotations.annotation import AnnotationTarget

        r_oid = db.insert("r_tab", {"a": 1, "b": 2, "c": "x"})
        s_oid = db.insert("s_tab", {"x": 1, "y": "u", "z": "v"})
        # 2 r-only comments, 3 s-only comments, 5 SHARED comments.
        for _ in range(2):
            db.add_annotation(COMMENT, table="r_tab", oid=r_oid)
        for _ in range(3):
            db.add_annotation(COMMENT, table="s_tab", oid=s_oid)
        for _ in range(5):
            db.add_annotation(COMMENT, targets=[
                AnnotationTarget("r_tab", r_oid, ()),
                AnnotationTarget("s_tab", s_oid, ()),
            ])
        result = db.sql(
            "Select r.a, s.z From r_tab r, s_tab s Where r.a = s.x"
        )
        counts = dict(result.summaries(0)["ClassBird2"])
        # 2 + 3 + 5 = 10, not 2 + 3 + 5 + 5 = 15.
        assert counts["Comment"] == 10

    def test_self_join_full_overlap(self, db):
        r_oid = db.insert("r_tab", {"a": 1, "b": 2, "c": "x"})
        for _ in range(4):
            db.add_annotation(DISEASE, table="r_tab", oid=r_oid)
        result = db.sql(
            "Select v1.a From r_tab v1, r_tab v2 Where v1.a = v2.a"
        )
        counts = dict(result.summaries(0)["ClassBird2"])
        assert counts["Disease"] == 4  # identical sets merge to themselves


class TestProjectionBeforeMerge:
    def test_cell_annotations_on_projected_out_columns_eliminated(self, db):
        """Example 1 step 1: r.c is projected out, so annotations attached
        to r.c leave the propagated summaries BEFORE the join merge."""
        r_oid = db.insert("r_tab", {"a": 1, "b": 2, "c": "x"})
        s_oid = db.insert("s_tab", {"x": 1, "y": "u", "z": "v"})
        db.add_annotation(COMMENT, table="r_tab", oid=r_oid,
                          columns=("c",))  # eliminated with r.c
        db.add_annotation(COMMENT, table="r_tab", oid=r_oid)  # row-level
        db.add_annotation(COMMENT, table="s_tab", oid=s_oid)
        result = db.sql(
            "Select r.a, r.b, s.z From r_tab r, s_tab s Where r.a = s.x"
        )
        counts = dict(result.summaries(0)["ClassBird2"])
        assert counts["Comment"] == 2  # the cell-attached one is gone

    def test_join_column_annotations_kept_until_after_join(self, db):
        """s.x is needed by the join and only projected out afterwards —
        but its annotations' effect is eliminated from the OUTPUT because
        s.x is not in the final projection (plan-invariant semantics:
        elimination happens at the scans in every plan)."""
        r_oid = db.insert("r_tab", {"a": 1, "b": 2, "c": "x"})
        s_oid = db.insert("s_tab", {"x": 1, "y": "u", "z": "v"})
        db.add_annotation(COMMENT, table="s_tab", oid=s_oid, columns=("x",))
        db.add_annotation(COMMENT, table="s_tab", oid=s_oid, columns=("z",))
        result = db.sql(
            "Select r.a, s.z From r_tab r, s_tab s Where r.a = s.x"
        )
        counts = dict(result.summaries(0)["ClassBird2"])
        assert counts["Comment"] == 1  # only the z-attached one survives


class TestClusterRepresentativeReelection:
    def test_projection_reelects_dropped_representative(self):
        db = Database()
        db.create_table("t", [
            Column("a", ValueType.TEXT), Column("b", ValueType.TEXT),
        ])
        db.create_cluster_instance("Sim")
        db.manager.link("t", "Sim")
        oid = db.insert("t", {"a": "keep", "b": "drop"})
        # Three similar annotations forming one cluster; attach them to
        # different columns so projection can eliminate some.
        texts = [
            "wetland lake marsh reed shoreline habitat water",
            "marsh wetland reed lake habitat shoreline water",
            "reed marsh lake wetland water habitat shoreline",
        ]
        db.add_annotation(texts[0], table="t", oid=oid, columns=("b",))
        db.add_annotation(texts[1], table="t", oid=oid, columns=("a",))
        db.add_annotation(texts[2], table="t", oid=oid, columns=("a",))
        stored = db.manager.summary_set_for("t", oid) \
            .get_summary_object("Sim")
        assert sum(size for _r, size in stored.rep()) == 3
        # Project out b: the b-attached annotation leaves its group; if it
        # was the representative, another member takes over.
        result = db.sql("Select a From t")
        merged = result.summaries(0)["Sim"]
        assert sum(size for _r, size in merged) == 2
        rep_text = merged[0][0]
        assert rep_text  # a representative exists and is a member excerpt
