"""LRU buffer pool.

The buffer pool caches page bytes between the storage structures (heap
files, B-Trees) and the simulated disk. Page fetches that miss the pool cost
one disk read; evictions of dirty frames cost one disk write. Hit/miss
counters are tracked so benchmarks can report cache behaviour.

Pages registered via :meth:`BufferPool.protect` (the heap files' slotted
pages) are *checksummed*: their CRC32 header field is stamped on every
write-back and verified on every miss read, so on-disk corruption raises
:class:`~repro.errors.CorruptPageError` instead of being decoded.

When a :class:`~repro.wal.writer.WALWriter` is attached (``pool.wal``),
the pool enforces **log-before-data**: every dirtied page is stamped with
the writer's current append position (its ``page_lsn``), and a dirty page
whose LSN is beyond the flushed log tail is never written back — the pool
forces a log flush through that LSN first, so no data page can reach disk
describing a change whose log record could still be lost.

The pool is **latched**: one reentrant mutex covers the frame map, the
LRU order, the dirty/pin bits, and the LSN table, so concurrent sessions
(readers under shared table locks run truly concurrently) cannot corrupt
frame bookkeeping — the structures above the pool are protected by the
coarser table locks; the latch protects the pool itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import BufferPoolError, CorruptPageError
from repro.storage.disk import DiskManager
from repro.storage.page import stamp_checksum, verify_checksum

DEFAULT_POOL_PAGES = 256


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = False
    pins: int = 0


class BufferPool:
    """A fixed-capacity LRU page cache over a :class:`DiskManager`."""

    def __init__(self, disk: DiskManager, capacity: int = DEFAULT_POOL_PAGES):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        #: page ids whose CRC32 header field is stamped/verified (slotted
        #: heap pages; B-Tree nodes and overflow chunks have no CRC field).
        self._protected: set[int] = set()
        #: attached WAL writer (set by ``Database.attach_wal``); None = no
        #: logging, write-backs need no ordering.
        self.wal = None
        #: dirty-page LSNs: page id -> WAL append position when last dirtied.
        self._page_lsns: dict[int, int] = {}
        #: attached :class:`~repro.resilience.guard.DiskGuard`; None = raw
        #: device calls (no retry, no breaker). Lives on the pool, not as a
        #: disk proxy, so install_faults/remove_faults swapping ``disk``
        #: underneath cannot detach it.
        self.guard = None
        #: pool latch (see module docstring). Reentrant: flush_all takes
        #: it and calls flush_page, evictions write back under it.
        self._latch = threading.RLock()

    # -- WAL ordering ---------------------------------------------------------

    def _stamp_lsn(self, page_id: int) -> None:
        """Record the log position that must be durable before ``page_id``
        may be written back (the writer's current append position upper-
        bounds every record describing this page's pending changes)."""
        if self.wal is not None:
            self._page_lsns[page_id] = self.wal.next_lsn

    def page_lsn(self, page_id: int) -> int | None:
        """The LSN stamped on ``page_id`` when it was last dirtied."""
        return self._page_lsns.get(page_id)

    def _write_back(self, page_id: int, frame: _Frame) -> None:
        """Write one dirty frame to disk, honouring log-before-data."""
        if self.wal is not None:
            lsn = self._page_lsns.get(page_id)
            if lsn is not None and lsn > self.wal.flushed_lsn:
                self.wal.flush(lsn)
        if page_id in self._protected:
            stamp_checksum(frame.data)
        if self.guard is None:
            self.disk.write_page(page_id, frame.data)
        else:
            self.guard.call(
                "write", lambda: self.disk.write_page(page_id, frame.data)
            )
        frame.dirty = False
        self._page_lsns.pop(page_id, None)

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        # The WAL writer belongs to the crashed process, not the image:
        # a loaded pool starts detached (Database.attach_wal re-attaches).
        # The guard travels with the image — a database restored under an
        # injecting environment must keep retrying.
        state = self.__dict__.copy()
        state["wal"] = None
        state["_page_lsns"] = {}
        state.pop("_latch", None)  # process state, unpicklable
        return state

    def __setstate__(self, state: dict) -> None:
        # Images written before the WAL/resilience eras lack the attributes.
        state.setdefault("wal", None)
        state.setdefault("_page_lsns", {})
        state.setdefault("guard", None)
        self.__dict__.update(state)
        self._latch = threading.RLock()

    # -- checksums ------------------------------------------------------------

    def protect(self, page_id: int) -> None:
        """Enroll ``page_id`` for CRC32 stamping/verification."""
        self._protected.add(page_id)

    def unprotect(self, page_id: int) -> None:
        self._protected.discard(page_id)

    def is_protected(self, page_id: int) -> bool:
        return page_id in self._protected

    @property
    def protected_pages(self) -> frozenset[int]:
        """Checksummed page ids (the integrity checker's disk-scan set)."""
        return frozenset(self._protected)

    def _verify(self, page_id: int, data: bytearray) -> None:
        # An all-zero page was allocated but never written back; it carries
        # no checksum yet and cannot have been torn.
        if data == bytes(len(data)):
            return
        if not verify_checksum(data):
            raise CorruptPageError(
                f"page {page_id} failed its checksum on read "
                "(torn write or bit corruption)"
            )

    def _read_verified(self, page_id: int) -> bytearray:
        """One miss read + checksum verification, as a unit."""
        data = self.disk.read_page(page_id)
        if page_id in self._protected:
            self._verify(page_id, data)
        return data

    # -- page lifecycle -------------------------------------------------------

    def new_page(self) -> int:
        """Allocate a fresh page on disk and cache it; returns the page id.

        Room is made *before* allocating so a failed eviction write cannot
        leak a freshly allocated but uncached disk page.
        """
        with self._latch:
            self._make_room()
            page_id = self.disk.allocate_page()
            self._frames[page_id] = _Frame(
                bytearray(self.disk.page_size), dirty=True
            )
            self._stamp_lsn(page_id)
            return page_id

    def get_page(self, page_id: int) -> bytearray:
        """Return the cached bytes for ``page_id``, reading on a miss.

        The returned bytearray is the live frame: callers that mutate it must
        follow up with :meth:`mark_dirty`.

        The frame is only installed after the disk read succeeded and (for
        protected pages) the checksum verified, so a failed or corrupt read
        can never leave a half-initialized frame in the pool.
        """
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.hits += 1
                self._frames.move_to_end(page_id)
                return frame.data
            self.misses += 1
            if self.guard is None:
                data = self._read_verified(page_id)
            else:
                # Read + verify retried as a unit: every attempt re-fetches
                # from disk, so transient rot (a corrupted returned copy)
                # heals on retry while persistent rot fails every attempt
                # and still surfaces as CorruptPageError after the budget.
                data = self.guard.call(
                    "read",
                    lambda: self._read_verified(page_id),
                    also_transient=(CorruptPageError,),
                )
            self._make_room()
            self._frames[page_id] = _Frame(data)
            return data

    def mark_dirty(self, page_id: int) -> None:
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"page {page_id} is not resident")
            frame.dirty = True
            self._stamp_lsn(page_id)

    def put_page(self, page_id: int, data: bytearray) -> None:
        """Replace the cached contents of ``page_id`` and mark it dirty."""
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is None:
                # The page was not resident: account it like any other fault
                # so hit_rate and page-access totals stay consistent with
                # get_page.
                self.misses += 1
                self._make_room()
                self._frames[page_id] = _Frame(data, dirty=True)
            else:
                frame.data = data
                frame.dirty = True
                self._frames.move_to_end(page_id)
            self._stamp_lsn(page_id)

    def free_page(self, page_id: int) -> None:
        """Drop ``page_id`` from the pool and deallocate it on disk.

        Freeing a pinned page would yank the frame out from under whoever
        pinned it (their bytearray would silently stop being the page), so
        that is an error, not a no-op.
        """
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is not None and frame.pins > 0:
                raise BufferPoolError(
                    f"page {page_id} is pinned ({frame.pins}x); cannot free"
                )
            self._frames.pop(page_id, None)
            self._protected.discard(page_id)
            self._page_lsns.pop(page_id, None)
            self.disk.deallocate_page(page_id)

    # -- pinning -------------------------------------------------------------

    def pin(self, page_id: int) -> None:
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is None:
                self.get_page(page_id)
                frame = self._frames[page_id]
            frame.pins += 1

    def unpin(self, page_id: int) -> None:
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is None or frame.pins == 0:
                raise BufferPoolError(f"page {page_id} is not pinned")
            frame.pins -= 1

    # -- flushing ------------------------------------------------------------

    def flush_page(self, page_id: int) -> bool:
        """Write ``page_id`` back to disk if it is resident and dirty.

        Contract (documented rather than inconsistent): flushing an
        unknown or clean page is a **typed no-op** — the method returns
        ``True`` when a write-back actually happened and ``False``
        otherwise, never raising.  A no-op result is normal (the page was
        evicted earlier, or was never dirtied), so callers that must know
        whether I/O occurred check the return value instead of catching.
        """
        with self._latch:
            frame = self._frames.get(page_id)
            if frame is None or not frame.dirty:
                return False
            self._write_back(page_id, frame)
            return True

    def flush_all(self) -> None:
        """Write back every dirty frame.

        The WAL is flushed *first* (one sync instead of one forced flush
        per page): log-before-data then holds trivially for every frame,
        since no dirty page can carry an LSN beyond the writer's current
        append position.
        """
        with self._latch:
            if self.wal is not None:
                self.wal.flush()
            for page_id in list(self._frames):
                self.flush_page(page_id)

    def clear(self) -> None:
        """Flush everything and empty the pool (simulates a cold cache)."""
        with self._latch:
            self.flush_all()
            self._frames.clear()

    # -- internal ------------------------------------------------------------

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = None
            for page_id, frame in self._frames.items():
                if frame.pins == 0:
                    victim_id = page_id
                    break
            if victim_id is None:
                raise BufferPoolError("all frames are pinned; cannot evict")
            # Write back *before* dropping the frame: if the disk write
            # fails, the dirty frame must stay resident (and dirty) or its
            # contents would be silently lost. _write_back enforces
            # log-before-data for the evicted page.
            frame = self._frames[victim_id]
            if frame.dirty:
                self._write_back(victim_id, frame)
            self._frames.pop(victim_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
