"""Concurrency layer: table locks, transactions, sessions.

See :mod:`repro.txn.locks` (striped RW lock manager with timeout
deadlock detection), :mod:`repro.txn.manager` (buffered-redo
transactions over the WAL), and :mod:`repro.txn.session` (the
per-caller statement surface).
"""

from repro.txn.locks import (
    ANNOTATION_RESOURCE,
    StripedLockManager,
    default_lock_timeout,
)
from repro.txn.manager import Transaction, TransactionManager
from repro.txn.session import Session

__all__ = [
    "ANNOTATION_RESOURCE",
    "Session",
    "StripedLockManager",
    "Transaction",
    "TransactionManager",
    "default_lock_timeout",
]
