"""Randomized plan-equivalence fuzzing: hypothesis generates summary
predicates (and sort/limit decorations) and every access-path/optimizer
mode must return identical results.  This is the adversarial version of
test_plan_equivalence's hand-picked cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import WorkloadConfig, build_database

LABELS = ["Disease", "Anatomy", "Behavior", "Other"]
OPS = ["=", "<", "<=", ">", ">="]
EXPR = "$.getSummaryObject('ClassBird1').getLabelValue"


@pytest.fixture(scope="module")
def db():
    database = build_database(WorkloadConfig(
        num_birds=30, annotations_per_tuple=20, indexes="both",
        cell_fraction=0.0, seed=6,
    ))
    database.create_normalized_replicas("birds")
    return database


predicates = st.lists(
    st.tuples(
        st.sampled_from(LABELS),
        st.sampled_from(OPS),
        st.integers(0, 15),
    ),
    min_size=1,
    max_size=3,
)


def build_query(preds, order_label, descending, limit):
    where = " And ".join(
        f"r.{EXPR}('{label}') {op} {constant}"
        for label, op, constant in preds
    )
    sql = f"Select common_name From birds r Where {where}"
    if order_label is not None:
        direction = "Desc" if descending else ""
        sql += f" Order By r.{EXPR}('{order_label}') {direction}"
        sql += ", common_name"  # tiebreak so orders are deterministic
    if limit is not None and order_label is not None:
        sql += f" Limit {limit}"
    return sql


def run_mode(db, sql, scheme, force, rules):
    db.options.index_scheme = scheme
    db.options.force_access = force
    db.options.enable_rules = rules
    try:
        result = db.sql(sql)
        return [t.get("common_name") for t in result.tuples]
    finally:
        db.options.index_scheme = "summary_btree"
        db.options.force_access = None
        db.options.enable_rules = True


class TestFuzzedEquivalence:
    @given(preds=predicates)
    @settings(max_examples=30, deadline=None)
    def test_selection_modes_agree(self, db, preds):
        sql = build_query(preds, None, False, None)
        reference = sorted(run_mode(db, sql, "none", None, True))
        for scheme, force in [
            ("summary_btree", "index"),
            ("baseline", "index"),
            ("summary_btree", None),
        ]:
            assert sorted(run_mode(db, sql, scheme, force, True)) \
                == reference, (sql, scheme, force)

    @given(preds=predicates)
    @settings(max_examples=15, deadline=None)
    def test_rules_off_agrees(self, db, preds):
        sql = build_query(preds, None, False, None)
        on = sorted(run_mode(db, sql, "summary_btree", None, True))
        off = sorted(run_mode(db, sql, "summary_btree", None, False))
        assert on == off

    @given(
        preds=predicates,
        order_label=st.sampled_from(LABELS),
        descending=st.booleans(),
        limit=st.one_of(st.none(), st.integers(1, 10)),
    )
    @settings(max_examples=25, deadline=None)
    def test_ordered_modes_agree(self, db, preds, order_label, descending,
                                 limit):
        sql = build_query(preds, order_label, descending, limit)
        reference = run_mode(db, sql, "none", None, True)
        via_index = run_mode(db, sql, "summary_btree", "index", True)
        assert via_index == reference, sql
