"""WAL unit + integration tests: framing, devices, writer, recovery.

Covers the redo-log stack bottom-up — CRC32 record framing and torn-tail
scanning, the memory/file devices' durability split, the writer's LSN
accounting, buffer-pool log-before-data ordering, the documented
``flush_page`` no-op contract — then end-to-end: statement logging,
crash + replay equivalence, idempotent re-replay, checkpoint truncation,
and v2 (pre-WAL) image compatibility.
"""

from __future__ import annotations

import struct

import pytest

from repro.catalog.schema import Column
from repro.core.database import Database
from repro.errors import InjectedFaultError, WALError
from repro.faults.plan import FaultPlan
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.record import ValueType
from repro.wal.device import FILE_HEADER_SIZE, FileWALDevice, MemoryWALDevice
from repro.wal.record import (
    FRAME_SIZE,
    WALRecordType,
    encode_record,
    scan_records,
)
from repro.wal.recovery import replay
from repro.wal.writer import WALWriter


def rows_of(db: Database, query: str = "Select name, n From t") -> list[str]:
    return sorted(str(t) for t in db.sql(query))


def build_db() -> Database:
    db = Database(buffer_pages=32)
    db.attach_wal()
    db.create_table("t", [Column("name", ValueType.TEXT),
                          Column("n", ValueType.INT)])
    db.create_classifier_instance(
        "C", ["pos", "neg"], [("good fine", "pos"), ("bad awful", "neg")]
    )
    db.link_summary_instance("t", "C", indexable=True)
    for i in range(15):
        db.insert("t", {"name": f"row{i}", "n": i})
    for i in range(1, 9):
        db.add_annotation("good fine stuff" if i % 2 else "bad awful stuff",
                          table="t", oid=i)
    db.delete_tuple("t", 3)
    db.delete_annotation(2)
    db.sql("Update t r Set n = 99 Where r.n > 12")
    return db


class TestRecordFraming:
    def test_roundtrip(self):
        frames = b""
        payloads = [{"a": 1}, {"b": [1, 2, 3]}, {"method": "create_table"}]
        lsn = 0
        for i, payload in enumerate(payloads):
            frame = encode_record(lsn, WALRecordType.DDL, i, payload)
            lsn += len(frame)
            frames += frame
        scan = scan_records(frames, base_lsn=0)
        assert [r.payload for r in scan.records] == payloads
        assert [r.stmt_id for r in scan.records] == [0, 1, 2]
        assert scan.torn_bytes == 0
        assert scan.end_lsn == len(frames)

    def test_torn_tail_is_clean_end(self):
        a = encode_record(0, WALRecordType.INSERT, 1, {"oid": 1})
        b = encode_record(len(a), WALRecordType.INSERT, 2, {"oid": 2})
        torn = (a + b)[:-5]
        scan = scan_records(torn, base_lsn=0)
        assert len(scan.records) == 1
        assert scan.records[0].payload == {"oid": 1}
        assert scan.torn_bytes == len(b) - 5
        assert scan.end_lsn == len(a)

    def test_corrupt_crc_truncates(self):
        a = encode_record(0, WALRecordType.INSERT, 1, {"oid": 1})
        b = encode_record(len(a), WALRecordType.INSERT, 2, {"oid": 2})
        data = bytearray(a + b)
        data[len(a) + FRAME_SIZE + 1] ^= 0xFF  # flip a payload byte of b
        scan = scan_records(bytes(data), base_lsn=0)
        assert len(scan.records) == 1
        assert scan.torn_bytes == len(b)

    def test_base_lsn_offsets(self):
        a = encode_record(500, WALRecordType.DELETE, 1, {"oid": 9})
        scan = scan_records(a, base_lsn=500)
        assert scan.records[0].lsn == 500
        assert scan.end_lsn == 500 + len(a)
        # The same bytes at the wrong base fail the LSN self-check.
        assert scan_records(a, base_lsn=0).records == []


class TestMemoryDevice:
    def test_append_is_not_durable_until_sync(self):
        dev = MemoryWALDevice()
        dev.append(b"abc")
        assert dev.durable_len == 0 and dev.pending_len == 3
        dev.sync()
        assert dev.durable() == b"abc" and dev.pending_len == 0

    def test_fail_stop_append_kills_device(self):
        dev = MemoryWALDevice(plan=FaultPlan().fail_append(at=1))
        dev.append(b"a")
        with pytest.raises(InjectedFaultError):
            dev.append(b"b")
        assert dev.dead
        with pytest.raises(InjectedFaultError):
            dev.sync()

    def test_torn_sync_lands_prefix(self):
        dev = MemoryWALDevice(plan=FaultPlan().torn_sync(at=0, torn_bytes=4))
        dev.append(b"abcdefgh")
        with pytest.raises(InjectedFaultError):
            dev.sync()
        assert dev.durable() == b"abcd" and dev.dead

    def test_truncate_and_discard(self):
        dev = MemoryWALDevice()
        dev.append(b"abcdef")
        dev.sync()
        dev.discard_after(4)
        assert dev.durable() == b"abcd"
        dev.truncate(100)
        assert dev.base_lsn == 100 and dev.durable_len == 0
        with pytest.raises(WALError):
            dev.truncate(50)


class TestFileDevice:
    def test_roundtrip_and_reopen(self, tmp_path):
        path = tmp_path / "x.wal"
        dev = FileWALDevice(path)
        dev.append(b"hello")
        dev.sync()
        assert dev.durable() == b"hello"
        assert path.stat().st_size == FILE_HEADER_SIZE + 5
        dev.truncate(77)
        dev.append(b"zz")
        dev.sync()
        again = FileWALDevice(path)
        assert again.base_lsn == 77
        assert again.durable() == b"zz"

    def test_discard_after(self, tmp_path):
        dev = FileWALDevice(tmp_path / "x.wal")
        dev.append(b"abcdef")
        dev.sync()
        dev.discard_after(2)
        assert dev.durable() == b"ab"

    def test_rejects_non_wal_file(self, tmp_path):
        path = tmp_path / "junk.wal"
        path.write_bytes(b"this is not a log at all....")
        with pytest.raises(WALError):
            FileWALDevice(path)


class TestWriter:
    def test_lsn_accounting_and_flush(self):
        dev = MemoryWALDevice(base_lsn=1000)
        writer = WALWriter(dev)
        assert writer.next_lsn == 1000 and writer.flushed_lsn == 1000
        lsn = writer.append(WALRecordType.INSERT, {"oid": 1})
        assert lsn == 1000
        assert writer.next_lsn > 1000 and writer.flushed_lsn == 1000
        # Forces a sync: the record's bytes end beyond the flushed tail.
        writer.flush(writer.next_lsn)
        assert writer.flushed_lsn == writer.next_lsn
        before = dev.sync_ops
        writer.flush(writer.next_lsn)  # already durable: no-op
        assert dev.sync_ops == before

    def test_truncate_requires_synced_tail(self):
        writer = WALWriter(MemoryWALDevice())
        writer.append(WALRecordType.DDL, {"method": "x"})
        with pytest.raises(WALError):
            writer.truncate(0)  # not the current tail
        writer.sync()
        writer.truncate(writer.next_lsn)
        assert writer.flushed_lsn == writer.next_lsn


class TestLogBeforeData:
    def _pool(self):
        pool = BufferPool(DiskManager(), capacity=4)
        pool.wal = WALWriter(MemoryWALDevice())
        return pool

    def test_write_back_forces_log_flush(self):
        pool = self._pool()
        page_id = pool.new_page()
        pool.wal.append(WALRecordType.INSERT, {"oid": 1})
        pool.mark_dirty(page_id)  # stamps the current append position
        assert pool.page_lsn(page_id) == pool.wal.next_lsn
        assert pool.wal.flushed_lsn < pool.wal.next_lsn
        assert pool.flush_page(page_id) is True
        # The page write-back dragged the log to durability first.
        assert pool.wal.flushed_lsn == pool.wal.next_lsn
        assert pool.page_lsn(page_id) is None

    def test_eviction_honours_ordering(self):
        pool = self._pool()
        first = pool.new_page()
        pool.wal.append(WALRecordType.INSERT, {"oid": 1})
        pool.mark_dirty(first)
        for _ in range(4):  # force eviction of `first`
            pool.new_page()
        assert first not in pool._frames
        assert pool.wal.flushed_lsn == pool.wal.next_lsn

    def test_flush_all_syncs_wal_once_first(self):
        pool = self._pool()
        for _ in range(3):
            pool.new_page()
        pool.wal.append(WALRecordType.INSERT, {"oid": 1})
        syncs_before = pool.wal.device.sync_ops
        pool.flush_all()
        assert pool.wal.device.sync_ops == syncs_before + 1
        assert pool.wal.flushed_lsn == pool.wal.next_lsn


class TestFlushPageContract:
    """Satellite: flush_page is a documented typed no-op, never a raise."""

    def test_unknown_page_is_noop(self):
        pool = BufferPool(DiskManager(), capacity=4)
        assert pool.flush_page(123456) is False

    def test_clean_page_is_noop(self):
        pool = BufferPool(DiskManager(), capacity=4)
        page_id = pool.new_page()
        assert pool.flush_page(page_id) is True   # dirty from allocation
        assert pool.flush_page(page_id) is False  # now clean


class TestRecovery:
    def test_replay_reproduces_acked_state(self):
        db = build_db()
        crashed = MemoryWALDevice.from_durable(db.wal.device.durable(), 0)
        db2, report = Database.recover(None, crashed, verify=True)
        assert report.failed == 0 and report.torn_bytes == 0
        assert rows_of(db2) == rows_of(db)
        assert len(db2.manager.annotations) == len(db.manager.annotations)
        key = ("t", "C")
        assert len(db2.summary_indexes[key]) == len(db.summary_indexes[key])

    def test_replay_is_idempotent(self):
        db = build_db()
        crashed = MemoryWALDevice.from_durable(db.wal.device.durable(), 0)
        db2, first = Database.recover(None, crashed, verify=True)
        again = replay(db2, crashed)
        assert again.replayed == 0
        assert again.skipped == first.replayed

    def test_torn_tail_truncated_never_replayed(self):
        db = build_db()
        durable = db.wal.device.durable()
        crashed = MemoryWALDevice.from_durable(durable[:-7], 0)
        db2, report = Database.recover(None, crashed, verify=True)
        assert report.torn_bytes > 0
        # The device tail was cut back to the last whole record, so new
        # appends extend a clean log …
        assert crashed.durable_len == report.end_lsn
        db2.insert("t", {"name": "after", "n": 1})
        # … and a second crash recovers the post-recovery write too.
        crashed2 = MemoryWALDevice.from_durable(crashed.durable(), 0)
        db3, _ = Database.recover(None, crashed2, verify=True)
        assert rows_of(db3) == rows_of(db2)

    def test_unsynced_failed_statement_not_acked(self):
        from repro.errors import RecordNotFoundError

        db = build_db()
        with pytest.raises(RecordNotFoundError):
            db.delete_tuple("t", 9999)  # record appended, stmt fails
        # The failed statement's record was never synced: a crash loses it.
        crashed = MemoryWALDevice.from_durable(db.wal.device.durable(), 0)
        db2, report = Database.recover(None, crashed, verify=True)
        assert rows_of(db2) == rows_of(db)


class TestCheckpoint:
    def test_save_truncates_and_restarts_log(self, tmp_path):
        db = build_db()
        path = tmp_path / "img.db"
        db.save(path)
        assert db.checkpoint_lsn == db.wal.next_lsn
        assert db.wal.device.durable_len == 0
        db.insert("t", {"name": "post-ckpt", "n": 500})
        crashed = MemoryWALDevice.from_durable(
            db.wal.device.durable(), db.wal.device.base_lsn
        )
        db2, report = Database.recover(path, crashed, verify=True)
        assert report.replayed == 1  # only the post-checkpoint insert
        assert rows_of(db2) == rows_of(db)

    def test_records_below_checkpoint_are_skipped(self, tmp_path):
        """Crash between rename and log truncation: replay must skip the
        pre-checkpoint records the image already contains."""
        db = build_db()
        full_log = db.wal.device.durable()
        path = tmp_path / "img.db"
        db.save(path)
        checkpoint_lsn = db.checkpoint_lsn
        # Simulate the un-truncated log surviving the crash.
        crashed = MemoryWALDevice.from_durable(full_log, 0)
        db2, report = Database.recover(path, crashed, verify=True)
        assert report.checkpoint_lsn == checkpoint_lsn
        assert report.replayed == 0 and report.skipped == report.scanned
        assert rows_of(db2) == rows_of(db)

    def test_v2_image_loads_with_zero_checkpoint(self, tmp_path):
        """Pre-WAL (v2) images stay loadable; their checkpoint LSN is 0."""
        db = Database()
        db.create_table("t", [Column("n", ValueType.INT)])
        db.insert("t", {"n": 1})
        path = tmp_path / "img.db"
        db.save(path)
        data = path.read_bytes()
        magic = Database._IMAGE_MAGIC
        fields = Database._IMAGE_HEADER.unpack_from(data, len(magic))
        payload = data[len(magic) + Database._IMAGE_HEADER.size:]
        v2 = magic + Database._IMAGE_HEADER_V2.pack(2, *fields[1:3]) + payload
        path.write_bytes(v2)
        db2 = Database.load(path, verify=True)
        assert db2.checkpoint_lsn == 0
        assert db2.sql("Select count(*) c From t").scalar() == 1


class TestWALMetrics:
    def test_counters_flow(self):
        db = build_db()
        snap = db.metrics_snapshot()
        assert snap["wal.records"] > 0
        assert snap["wal.syncs"] > 0
        assert snap["wal.bytes"] == db.wal.next_lsn
