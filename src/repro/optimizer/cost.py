"""Cardinality and cost estimation (§5.2).

The summary-based operators deliberately reuse the heuristics of their
standard counterparts: S estimates like σ (from the per-label statistics of
Figure 6), F sizes its output like π (from AvgObjectSize), and J estimates
an equality join like ⋈ (|R|·|S| / max(NumDistinct)). Costs are expressed
in page-I/O units with a small CPU charge per processed row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.ast import (
    And,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    Not,
    Or,
    SummaryExpr,
)
from repro.optimizer.statistics import StatisticsCatalog

#: Cost of one page I/O (the unit).
IO_COST = 1.0
#: CPU charge per row handled by an operator.
CPU_ROW = 0.005
#: CPU charge per predicate evaluation.
CPU_EVAL = 0.005
#: Extra per-row charge for keyword predicates that may fall back to the raw
#: annotations ([16]'s snippets-vs-raw tradeoff).
RAW_SEARCH_ROW = 0.5

#: CPU cost per byte of summary payload merged when a join/group combines
#: two tuples' summary sets — what makes early F-pushdown (Rules 7/8) pay:
#: dropping unneeded objects shrinks every downstream merge.  Driven by
#: the Figure 6 AvgObjectSize statistics.
CPU_MERGE_BYTE = 0.00002
#: B-Tree descent charge (root-to-leaf, fanout is large).
INDEX_DESCENT = 3.0
DEFAULT_EQ_SELECTIVITY = 0.05
DEFAULT_RANGE_SELECTIVITY = 0.2
DEFAULT_PRED_SELECTIVITY = 0.25
KEYWORD_SELECTIVITY = 0.1

#: Cap on the cost discount a warm summary cache may claim on cached
#: summary-row reads.  Capped (rather than letting a 100% hit rate erase
#: the charge entirely) because the hit rate is a global average, cached
#: probes still pay CPU, and plan choices must not whipsaw on cache
#: warm-up: with the cap, every access path keeps a floor of half its
#: summary-read I/O charge.
SUMMARY_CACHE_DISCOUNT_CAP = 0.5
#: Minimum observed lookups before the discount kicks in — a handful of
#: early hits must not reprice every plan.
SUMMARY_CACHE_MIN_SAMPLE = 64


def summary_read_discount(cache) -> float:
    """Multiplier in [1 - CAP, 1] applied to summary-storage read I/O for
    access paths whose summary reads go through the cache.

    1.0 (no discount) when the cache is absent, disabled, or has seen too
    few lookups to trust its hit rate.
    """
    if cache is None or not cache.enabled:
        return 1.0
    total = cache.hits + cache.misses
    if total < SUMMARY_CACHE_MIN_SAMPLE:
        return 1.0
    rate = cache.hits / total
    return 1.0 - min(rate, 1.0) * SUMMARY_CACHE_DISCOUNT_CAP


@dataclass(frozen=True)
class IndexableSummaryPred:
    """A ``getLabelValue(label) <op> constant`` conjunct (§4.1 target query)."""

    alias: str
    instance: str
    label: str
    op: str
    constant: int

    def bounds(self) -> tuple[int | None, int | None, bool, bool]:
        """(lo, hi, lo_inclusive, hi_inclusive) for an index probe."""
        c = self.constant
        return {
            "=": (c, c, True, True),
            ">": (c, None, False, True),
            ">=": (c, None, True, True),
            "<": (None, c, True, False),
            "<=": (None, c, True, True),
        }[self.op]


def match_indexable_summary_pred(expr: Expr) -> IndexableSummaryPred | None:
    """Recognize the Summary-BTree's target-query shape in a conjunct."""
    if not isinstance(expr, Comparison) or expr.op not in ("=", ">", ">=", "<", "<="):
        return None
    sides = [(expr.left, expr.right, expr.op)]
    flipped = {"=": "=", ">": "<", ">=": "<=", "<": ">", "<=": ">="}
    sides.append((expr.right, expr.left, flipped[expr.op]))
    for summary_side, const_side, op in sides:
        if not isinstance(summary_side, SummaryExpr):
            continue
        if not isinstance(const_side, Literal):
            continue
        if not isinstance(const_side.value, int):
            continue
        chain = summary_side.chain
        if (
            len(chain) == 2
            and chain[0].name == "getSummaryObject"
            and chain[1].name == "getLabelValue"
            and chain[0].args and isinstance(chain[0].args[0], str)
            and chain[1].args and isinstance(chain[1].args[0], str)
        ):
            return IndexableSummaryPred(
                alias=summary_side.alias or "",
                instance=chain[0].args[0],
                label=chain[1].args[0],
                op=op,
                constant=const_side.value,
            )
    return None


@dataclass(frozen=True)
class IndexableSummaryJoinPred:
    """A summary-join conjunct ``<outer expr> <op> inner.$...getLabelValue``
    answerable by probing the inner side's Summary-BTree per outer row
    (the J operator's index-based implementation choice, §5.2)."""

    inner_alias: str
    instance: str
    label: str
    #: comparison with the inner value on the RIGHT (outer <op> inner)
    op: str
    outer_expr: Expr


def match_summary_join_pred(
    expr: Expr, inner_alias: str
) -> IndexableSummaryJoinPred | None:
    """Recognize a summary-join conjunct whose inner side addresses one
    classifier label of ``inner_alias`` and whose other side does not
    reference ``inner_alias`` at all."""
    from repro.query.logical import aliases_in

    if not isinstance(expr, Comparison) or expr.op not in (
        "=", ">", ">=", "<", "<="
    ):
        return None
    flipped = {"=": "=", ">": "<", ">=": "<=", "<": ">", "<=": ">="}
    for inner_side, outer_side, op in (
        (expr.right, expr.left, expr.op),
        (expr.left, expr.right, flipped[expr.op]),
    ):
        if not isinstance(inner_side, SummaryExpr):
            continue
        if inner_side.alias != inner_alias:
            continue
        if inner_alias in aliases_in(outer_side):
            continue
        chain = inner_side.chain
        if (
            len(chain) == 2
            and chain[0].name == "getSummaryObject"
            and chain[1].name == "getLabelValue"
            and chain[0].args and isinstance(chain[0].args[0], str)
            and chain[1].args and isinstance(chain[1].args[0], str)
        ):
            return IndexableSummaryJoinPred(
                inner_alias=inner_alias,
                instance=chain[0].args[0],
                label=chain[1].args[0],
                op=op,
                outer_expr=outer_side,
            )
    return None


@dataclass(frozen=True)
class KeywordPred:
    """A containsSingle/containsUnion conjunct over one snippet instance —
    servable by a trigram keyword index in snippet-only search mode."""

    alias: str
    instance: str
    function: str  # containsSingle | containsUnion
    keywords: tuple[str, ...]


def match_keyword_pred(expr: Expr) -> KeywordPred | None:
    if not isinstance(expr, SummaryExpr):
        return None
    chain = expr.chain
    if (
        len(chain) == 2
        and chain[0].name == "getSummaryObject"
        and chain[1].name in ("containsSingle", "containsUnion")
        and chain[0].args and isinstance(chain[0].args[0], str)
        and chain[1].args
        and all(isinstance(a, str) for a in chain[1].args)
    ):
        return KeywordPred(
            alias=expr.alias or "",
            instance=chain[0].args[0],
            function=chain[1].name,
            keywords=tuple(chain[1].args),
        )
    return None


@dataclass(frozen=True)
class IndexableDataPred:
    """A ``column <op> constant`` conjunct with a matching data index."""

    alias: str
    column: str
    op: str
    constant: object

    def bounds(self) -> tuple[object | None, object | None, bool, bool]:
        c = self.constant
        return {
            "=": (c, c, True, True),
            ">": (c, None, False, True),
            ">=": (c, None, True, True),
            "<": (None, c, True, False),
            "<=": (None, c, True, True),
        }[self.op]


def match_indexable_data_pred(expr: Expr) -> IndexableDataPred | None:
    if not isinstance(expr, Comparison) or expr.op not in ("=", ">", ">=", "<", "<="):
        return None
    sides = [(expr.left, expr.right, expr.op)]
    flipped = {"=": "=", ">": "<", ">=": "<=", "<": ">", "<=": ">="}
    sides.append((expr.right, expr.left, flipped[expr.op]))
    for col_side, const_side, op in sides:
        if isinstance(col_side, ColumnRef) and isinstance(const_side, Literal):
            return IndexableDataPred(
                alias=col_side.alias or "",
                column=col_side.column,
                op=op,
                constant=const_side.value,
            )
    return None


class Estimator:
    """Selectivity estimation backed by the statistics catalog."""

    def __init__(self, stats: StatisticsCatalog, alias_tables: dict[str, str]):
        self.stats = stats
        self.alias_tables = alias_tables

    def _table_of(self, alias: str) -> str | None:
        return self.alias_tables.get(alias)

    def selectivity(self, expr: Expr | None) -> float:
        """Estimated fraction of rows satisfying ``expr``."""
        if expr is None:
            return 1.0
        if isinstance(expr, And):
            out = 1.0
            for item in expr.items:
                out *= self.selectivity(item)
            return out
        if isinstance(expr, Or):
            out = 1.0
            for item in expr.items:
                out *= 1.0 - self.selectivity(item)
            return 1.0 - out
        if isinstance(expr, Not):
            return 1.0 - self.selectivity(expr.item)
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr)
        if isinstance(expr, SummaryExpr):
            # A bare boolean summary function, e.g. containsUnion(...).
            return KEYWORD_SELECTIVITY
        return DEFAULT_PRED_SELECTIVITY

    def _comparison_selectivity(self, expr: Comparison) -> float:
        summary_pred = match_indexable_summary_pred(expr)
        if summary_pred is not None:
            return self._label_selectivity(summary_pred)
        if expr.op == "LIKE":
            return KEYWORD_SELECTIVITY
        data_pred = match_indexable_data_pred(expr)
        if data_pred is not None:
            return self._column_selectivity(data_pred)
        if expr.op == "=":
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    def _label_selectivity(self, pred: IndexableSummaryPred) -> float:
        """S reuses σ's heuristics over the Figure 6 label statistics."""
        table = self._table_of(pred.alias)
        if table is None:
            return DEFAULT_RANGE_SELECTIVITY
        label_stats = self.stats.label_stats(table, pred.instance, pred.label)
        if label_stats is None or label_stats.ndistinct == 0:
            return DEFAULT_RANGE_SELECTIVITY
        if pred.op == "=":
            return label_stats.histogram.selectivity_eq(
                float(pred.constant), label_stats.ndistinct
            )
        lo, hi, *_ = pred.bounds()
        return label_stats.histogram.selectivity_range(
            None if lo is None else float(lo),
            None if hi is None else float(hi),
        )

    def _column_selectivity(self, pred: IndexableDataPred) -> float:
        table = self._table_of(pred.alias)
        if table is None:
            return DEFAULT_EQ_SELECTIVITY
        col_stats = self.stats.table_stats(table).columns.get(pred.column)
        if col_stats is None or col_stats.ndistinct == 0:
            return DEFAULT_EQ_SELECTIVITY
        if pred.op == "=":
            return 1.0 / col_stats.ndistinct
        if col_stats.histogram is not None and isinstance(
            pred.constant, (int, float)
        ):
            lo, hi, *_ = pred.bounds()
            return col_stats.histogram.selectivity_range(
                None if lo is None else float(lo),
                None if hi is None else float(hi),
            )
        return DEFAULT_RANGE_SELECTIVITY

    def join_selectivity(
        self, condition: Expr | None, left_rows: float, right_rows: float
    ) -> float:
        """⋈/J equality heuristic: 1 / max(NumDistinct of the two sides)."""
        if condition is None:
            return 1.0
        if isinstance(condition, And):
            out = 1.0
            for item in condition.items:
                out *= self.join_selectivity(item, left_rows, right_rows)
            return out
        if isinstance(condition, Comparison) and condition.op == "=":
            ndv = []
            for side in (condition.left, condition.right):
                if isinstance(side, ColumnRef) and side.alias:
                    table = self._table_of(side.alias)
                    if table:
                        cs = self.stats.table_stats(table).columns.get(side.column)
                        if cs:
                            ndv.append(max(cs.ndistinct, 1))
                summary = side if isinstance(side, SummaryExpr) else None
                if summary is not None and summary.instance_name and summary.label:
                    table = self._table_of(summary.alias or "")
                    if table:
                        ls = self.stats.label_stats(
                            table, summary.instance_name, summary.label
                        )
                        if ls:
                            ndv.append(max(ls.ndistinct, 1))
            if ndv:
                return 1.0 / max(ndv)
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_PRED_SELECTIVITY

    def needs_raw_search(self, expr: Expr | None) -> bool:
        """Does evaluating ``expr`` potentially touch raw annotations?"""
        if expr is None:
            return False
        for node in expr.walk():
            if isinstance(node, SummaryExpr):
                for call in node.chain:
                    if call.name in ("containsSingle", "containsUnion"):
                        return True
        return False
