"""LSA (Latent Semantic Analysis) snippet summarization (paper ref [18]).

Used by Snippet summary instances: every annotation longer than a threshold
is condensed into a short extractive snippet. Sentences are embedded in a
term-sentence TF-IDF matrix; the SVD's leading right-singular vectors score
each sentence's alignment with the document's dominant latent topics, and the
top-scoring sentences (in original order) form the snippet.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.mining.text import sentences, tokenize

DEFAULT_MAX_CHARS = 400
DEFAULT_TOPICS = 2


class LsaSummarizer:
    """Extractive summarizer producing snippets of at most ``max_chars``."""

    def __init__(self, max_chars: int = DEFAULT_MAX_CHARS, topics: int = DEFAULT_TOPICS):
        self.max_chars = max_chars
        self.topics = topics

    def summarize(self, text: str) -> str:
        """Return a snippet of ``text`` no longer than ``max_chars``."""
        if len(text) <= self.max_chars:
            return text
        sents = sentences(text)
        if len(sents) <= 1:
            return text[: self.max_chars]
        scores = self._sentence_scores(sents)
        ranked = sorted(range(len(sents)), key=lambda i: -scores[i])
        chosen: list[int] = []
        used = 0
        for i in ranked:
            cost = len(sents[i]) + (1 if chosen else 0)
            if used + cost <= self.max_chars:
                chosen.append(i)
                used += cost
        if not chosen:
            # Even the best sentence is too long: truncate it.
            return sents[ranked[0]][: self.max_chars]
        chosen.sort()  # restore original order for readability
        return " ".join(sents[i] for i in chosen)

    def _sentence_scores(self, sents: list[str]) -> np.ndarray:
        """Latent-topic salience score per sentence."""
        token_lists = [tokenize(s) for s in sents]
        vocab: dict[str, int] = {}
        for tokens in token_lists:
            for token in tokens:
                vocab.setdefault(token, len(vocab))
        if not vocab:
            return np.array([float(len(s)) for s in sents])
        # Term-by-sentence TF-IDF matrix.
        matrix = np.zeros((len(vocab), len(sents)), dtype=np.float64)
        doc_freq = Counter()
        for tokens in token_lists:
            doc_freq.update(set(tokens))
        n_sents = len(sents)
        for j, tokens in enumerate(token_lists):
            for token, count in Counter(tokens).items():
                idf = math.log((1 + n_sents) / (1 + doc_freq[token])) + 1.0
                matrix[vocab[token], j] = count * idf
        # SVD: columns of vt.T give each sentence's topic coordinates.
        try:
            _, singular, vt = np.linalg.svd(matrix, full_matrices=False)
        except np.linalg.LinAlgError:
            return matrix.sum(axis=0)
        k = min(self.topics, len(singular))
        # Salience: length of the sentence vector in the top-k topic space,
        # weighted by singular values (Steinberger & Jezek scoring).
        weighted = (singular[:k, None] * vt[:k, :]) ** 2
        return np.sqrt(weighted.sum(axis=0))
