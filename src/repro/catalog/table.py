"""Tables: heap storage + OID index + secondary B-Tree indexes.

Every inserted row receives a monotonically increasing OID (the system
column the paper shows as ``OID`` in Figure 4). A unique B-Tree on the OID
column maps OIDs to heap RIDs — this is the structure behind the engine's
``disk_tuple_loc()`` used by the Summary-BTree's backward referencing.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.btree import BTree
from repro.catalog.keys import decode_int, encode_int, encode_key
from repro.catalog.schema import Schema
from repro.errors import CatalogError, RecordNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, RID

_RID_CODEC = struct.Struct("<IH")


def pack_rid(rid: RID) -> bytes:
    return _RID_CODEC.pack(rid.page_no, rid.slot)


def unpack_rid(data: bytes) -> RID:
    page_no, slot = _RID_CODEC.unpack(data)
    return RID(page_no, slot)


class Table:
    """A user relation: schema, heap file, OID index, secondary indexes."""

    def __init__(self, name: str, schema: Schema, pool: BufferPool):
        self.name = name
        self.schema = schema
        self.pool = pool
        self.heap = HeapFile(pool)
        self._codec = schema.codec()
        self._next_oid = 1
        #: Unique B-Tree on the OID system column: oid -> heap RID.
        self.oid_index = BTree(pool, unique=True)
        #: Secondary indexes on data columns: column name -> B-Tree whose
        #: entries are (encoded column value, encoded oid).
        self.secondary_indexes: dict[str, BTree] = {}

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def row_count(self) -> int:
        return len(self.heap)

    # -- DML -------------------------------------------------------------------

    def insert(self, row: dict[str, object] | list[object]) -> int:
        """Insert a row (mapping or positional); returns its OID."""
        values = self.schema.row_from_dict(row) if isinstance(row, dict) else list(row)
        self.schema.validate_row(values)
        oid = self._next_oid
        self._next_oid += 1
        rid = self.heap.insert(self._codec.encode(values))
        self.oid_index.insert(encode_int(oid), pack_rid(rid))
        for col_name, index in self.secondary_indexes.items():
            value = values[self.schema.index_of(col_name)]
            key = encode_key(value, self.schema.column(col_name).type)
            index.insert(key, encode_int(oid))
        return oid

    def disk_tuple_loc(self, oid: int) -> RID:
        """Heap location of the tuple with ``oid`` (paper's diskTupleLoc())."""
        hits = self.oid_index.search(encode_int(oid))
        if not hits:
            raise RecordNotFoundError(f"{self.name}: no tuple with OID {oid}")
        return unpack_rid(hits[0])

    def read(self, oid: int) -> list[object]:
        """Positional row values for ``oid``."""
        return self._codec.decode(self.heap.read(self.disk_tuple_loc(oid)))

    def read_dict(self, oid: int) -> dict[str, object]:
        return self.schema.dict_from_row(self.read(oid))

    def read_at(self, rid: RID) -> list[object]:
        """Positional row values at a known heap location (no OID lookup)."""
        return self._codec.decode(self.heap.read(rid))

    def update(self, oid: int, row: dict[str, object]) -> None:
        """Update the named columns of tuple ``oid``."""
        old_values = self.read(oid)
        values = list(old_values)
        for name, value in row.items():
            values[self.schema.index_of(name)] = value
        self.schema.validate_row(values)
        old_rid = self.disk_tuple_loc(oid)
        new_rid = self.heap.update(old_rid, self._codec.encode(values))
        if new_rid != old_rid:
            self.oid_index.delete(encode_int(oid), pack_rid(old_rid))
            self.oid_index.insert(encode_int(oid), pack_rid(new_rid))
        for col_name, index in self.secondary_indexes.items():
            i = self.schema.index_of(col_name)
            if values[i] != old_values[i]:
                ctype = self.schema.column(col_name).type
                index.delete(encode_key(old_values[i], ctype), encode_int(oid))
                index.insert(encode_key(values[i], ctype), encode_int(oid))

    def delete(self, oid: int) -> None:
        """Delete tuple ``oid`` and all its index entries."""
        values = self.read(oid)
        rid = self.disk_tuple_loc(oid)
        self.heap.delete(rid)
        self.oid_index.delete(encode_int(oid), pack_rid(rid))
        for col_name, index in self.secondary_indexes.items():
            value = values[self.schema.index_of(col_name)]
            key = encode_key(value, self.schema.column(col_name).type)
            index.delete(key, encode_int(oid))

    def scan(self) -> Iterator[tuple[int, list[object]]]:
        """Yield ``(oid, values)`` for every live tuple, heap order.

        OIDs are recovered by scanning the OID index once into a reverse map;
        heap order is preserved for realistic sequential-scan behaviour.
        """
        rid_to_oid = {
            unpack_rid(v): decode_int(k)
            for k, v in self.oid_index.items()
        }
        for rid, record in self.heap.scan():
            yield rid_to_oid[rid], self._codec.decode(record)

    # -- secondary indexes -------------------------------------------------------

    def create_index(self, column: str) -> BTree:
        """Build a standard B-Tree index on a data column."""
        if column in self.secondary_indexes:
            raise CatalogError(f"index on {self.name}.{column} already exists")
        ctype = self.schema.column(column).type
        index = BTree(self.pool)
        col_pos = self.schema.index_of(column)
        for oid, values in self.scan():
            index.insert(encode_key(values[col_pos], ctype), encode_int(oid))
        self.secondary_indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        return column in self.secondary_indexes

    def index_lookup(self, column: str, value: object) -> list[int]:
        """OIDs of tuples where ``column == value`` via the secondary index."""
        index = self.secondary_indexes.get(column)
        if index is None:
            raise CatalogError(f"no index on {self.name}.{column}")
        key = encode_key(value, self.schema.column(column).type)
        return [decode_int(v) for v in index.search(key)]

    def index_range(
        self,
        column: str,
        lo: object | None,
        hi: object | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[int]:
        """OIDs with ``lo <= column <= hi``, in column order."""
        index = self.secondary_indexes.get(column)
        if index is None:
            raise CatalogError(f"no index on {self.name}.{column}")
        ctype = self.schema.column(column).type
        lo_key = None if lo is None else encode_key(lo, ctype)
        hi_key = None if hi is None else encode_key(hi, ctype)
        for _, v in index.range_scan(lo_key, hi_key, lo_inclusive, hi_inclusive):
            yield decode_int(v)
