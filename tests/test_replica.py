"""Tests for the normalized snippet replica (Figure 12's propagation
substrate) and its event-driven maintenance."""

import pytest

from repro import Column, Database, ValueType
from repro.index.replica import NormalizedSnippetReplica

LONG = (
    "this is a deliberately long annotation about an experiment that was "
    "documented in the wikipedia article and archived with provenance "
    "notes for the record keeping of the survey"
)
SHORT = "brief behavior note"


def make_db() -> Database:
    db = Database()
    db.create_table("t", [Column("a", ValueType.TEXT),
                          Column("b", ValueType.INT)])
    db.create_snippet_instance("Snip", min_chars=60, max_chars=40)
    db.manager.link("t", "Snip")
    return db


def replica_for(db: Database) -> NormalizedSnippetReplica:
    [replica] = db.create_normalized_replicas("t")
    return replica


class TestBulkBuild:
    def test_bulk_build_counts_rows(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        db.add_annotation(LONG, table="t", oid=oid)
        db.add_annotation(SHORT, table="t", oid=oid)
        replica = replica_for(db)
        # one snippet row (only LONG earns one) + two member rows
        assert len(replica) == 1
        assert len(replica.members) == 2

    def test_reconstruct_matches_stored(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        db.add_annotation(LONG, table="t", oid=oid)
        db.add_annotation(SHORT, table="t", oid=oid)
        replica = replica_for(db)
        stored = db.manager.summary_set_for("t", oid).get_summary_object("Snip")
        rebuilt = replica.reconstruct(oid)
        assert rebuilt.snippets == stored.snippets
        assert rebuilt.ann_targets == stored.ann_targets

    def test_reconstruct_unknown_oid_none(self):
        db = make_db()
        replica = replica_for(db)
        assert replica.reconstruct(999) is None

    def test_pages_used_positive_after_build(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        db.add_annotation(LONG, table="t", oid=oid)
        replica = replica_for(db)
        assert replica.pages_used() > 0


class TestIncrementalMaintenance:
    def test_annotation_after_build_is_replicated(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        replica = replica_for(db)
        db.add_annotation(LONG, table="t", oid=oid)
        rebuilt = replica.reconstruct(oid)
        assert rebuilt is not None
        assert len(rebuilt.snippets) == 1

    def test_annotation_delete_removes_rows(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        replica = replica_for(db)
        ann = db.add_annotation(LONG, table="t", oid=oid)
        db.add_annotation(SHORT, table="t", oid=oid)
        db.delete_annotation(ann.ann_id)
        rebuilt = replica.reconstruct(oid)
        assert rebuilt.snippets == {}
        assert len(rebuilt.ann_targets) == 1

    def test_tuple_delete_clears_replica(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        replica = replica_for(db)
        db.add_annotation(LONG, table="t", oid=oid)
        db.delete_tuple("t", oid)
        assert replica.reconstruct(oid) is None

    def test_rewrite_is_idempotent(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        replica = replica_for(db)
        db.add_annotation(LONG, table="t", oid=oid)
        before = len(replica)
        # Another write event for the same tuple must not duplicate rows.
        objects = db.manager.storage_for("t").get(oid)
        replica.on_objects_write(oid, objects)
        assert len(replica) == before

    def test_cell_level_columns_roundtrip(self):
        db = make_db()
        oid = db.insert("t", {"a": "x", "b": 1})
        replica = replica_for(db)
        db.add_annotation(LONG, table="t", oid=oid, columns=("a",))
        rebuilt = replica.reconstruct(oid)
        [(_, columns)] = list(rebuilt.ann_targets.items())
        assert columns == ("a",)


class TestDatabaseIntegration:
    def test_create_replicas_skips_existing(self):
        db = make_db()
        first = db.create_normalized_replicas("t")
        second = db.create_normalized_replicas("t")
        assert len(first) == 1
        assert second == []

    def test_replicas_only_for_snippet_instances(self):
        db = make_db()
        db.create_classifier_instance("C", ["A", "B"],
                                      [("alpha text", "A"), ("beta", "B")])
        db.manager.link("t", "C")
        built = db.create_normalized_replicas("t")
        assert len(built) == 1  # Snip only; the classifier's normalized
        # form lives in the BaselineClassifierIndex instead

    def test_registry_keyed_by_table_and_instance(self):
        db = make_db()
        db.create_normalized_replicas("t")
        assert ("t", "Snip") in db.normalized_replicas
