"""Tables: heap storage + OID index + secondary B-Tree indexes.

Every inserted row receives a monotonically increasing OID (the system
column the paper shows as ``OID`` in Figure 4). A unique B-Tree on the OID
column maps OIDs to heap RIDs — this is the structure behind the engine's
``disk_tuple_loc()`` used by the Summary-BTree's backward referencing.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.btree import BTree
from repro.catalog.keys import decode_int, encode_int, encode_key
from repro.catalog.schema import Schema
from repro.errors import CatalogError, RecordNotFoundError, ReproError
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, RID
from repro.storage.page import SlottedPage
from repro.storage.record import LazyColumn

_RID_CODEC = struct.Struct("<IH")


def pack_rid(rid: RID) -> bytes:
    return _RID_CODEC.pack(rid.page_no, rid.slot)


def unpack_rid(data: bytes) -> RID:
    page_no, slot = _RID_CODEC.unpack(data)
    return RID(page_no, slot)


class Table:
    """A user relation: schema, heap file, OID index, secondary indexes."""

    def __init__(self, name: str, schema: Schema, pool: BufferPool):
        self.name = name
        self.schema = schema
        self.pool = pool
        self.heap = HeapFile(pool)
        self._codec = schema.codec()
        self._next_oid = 1
        #: Unique B-Tree on the OID system column: oid -> heap RID.
        self.oid_index = BTree(pool, unique=True)
        #: Secondary indexes on data columns: column name -> B-Tree whose
        #: entries are (encoded column value, encoded oid).
        self.secondary_indexes: dict[str, BTree] = {}

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def row_count(self) -> int:
        return len(self.heap)

    # -- DML -------------------------------------------------------------------

    def canonical_row(self, row: dict[str, object] | list[object]) -> list[object]:
        """Validated positional values for ``row`` (mapping or positional).

        This is the canonical form WAL records carry: replay re-inserts
        exactly these values regardless of how the original call spelled
        the row.
        """
        values = self.schema.row_from_dict(row) if isinstance(row, dict) else list(row)
        self.schema.validate_row(values)
        return values

    @property
    def next_oid(self) -> int:
        """The OID the next insert will assign (WAL records log it ahead)."""
        return self._next_oid

    def insert(
        self, row: dict[str, object] | list[object], oid: int | None = None
    ) -> int:
        """Insert a row (mapping or positional); returns its OID.

        ``oid`` forces the assigned OID (WAL replay re-creating a tuple
        under its original identity); the OID counter always advances past
        it so later inserts cannot collide.
        """
        values = self.canonical_row(row)
        if oid is None:
            oid = self._next_oid
        self._next_oid = max(self._next_oid, oid + 1)
        rid = self.heap.insert(self._codec.encode(values))
        self.oid_index.insert(encode_int(oid), pack_rid(rid))
        for col_name, index in self.secondary_indexes.items():
            value = values[self.schema.index_of(col_name)]
            key = encode_key(value, self.schema.column(col_name).type)
            index.insert(key, encode_int(oid))
        return oid

    def disk_tuple_loc(self, oid: int) -> RID:
        """Heap location of the tuple with ``oid`` (paper's diskTupleLoc())."""
        hits = self.oid_index.search(encode_int(oid))
        if not hits:
            raise RecordNotFoundError(f"{self.name}: no tuple with OID {oid}")
        return unpack_rid(hits[0])

    def read(self, oid: int) -> list[object]:
        """Positional row values for ``oid``."""
        return self._codec.decode(self.heap.read(self.disk_tuple_loc(oid)))

    def read_dict(self, oid: int) -> dict[str, object]:
        return self.schema.dict_from_row(self.read(oid))

    def read_at(self, rid: RID) -> list[object]:
        """Positional row values at a known heap location (no OID lookup)."""
        return self._codec.decode(self.heap.read(rid))

    def _records_for(self, oids: list[int]) -> dict[int, bytes]:
        """Raw heap records for many OIDs; missing OIDs are simply absent.

        Dense OID sets resolve all their RIDs in a single OID-index range
        pass instead of one B-Tree descent each; sparse sets — where the
        range pass would visit mostly unwanted entries — fall back to
        per-OID lookups.
        """
        if not oids:
            return {}
        wanted = set(oids)
        lo, hi = min(wanted), max(wanted)
        out: dict[int, bytes] = {}
        if hi - lo + 1 > 4 * len(wanted):
            for oid in wanted:
                try:
                    out[oid] = self.heap.read(self.disk_tuple_loc(oid))
                except RecordNotFoundError:
                    pass
            return out
        for key, value in self.oid_index.range_scan(
            encode_int(lo), encode_int(hi)
        ):
            oid = decode_int(key)
            if oid in wanted:
                out[oid] = self.heap.read(unpack_rid(value))
        return out

    def read_many(self, oids: list[int]) -> dict[int, list[object]]:
        """Positional rows for many OIDs (see :meth:`_records_for`)."""
        return {
            oid: self._codec.decode(record)
            for oid, record in self._records_for(oids).items()
        }

    def read_column_many(
        self, oids: list[int], column: str
    ) -> dict[int, object]:
        """One column's values for many OIDs, decoding nothing else."""
        items = list(self._records_for(oids).items())
        values = self._codec.decode_column(
            [record for _, record in items], self.schema.index_of(column)
        )
        return {oid: value for (oid, _), value in zip(items, values)}

    def update(self, oid: int, row: dict[str, object]) -> None:
        """Update the named columns of tuple ``oid``."""
        old_values = self.read(oid)
        values = list(old_values)
        for name, value in row.items():
            values[self.schema.index_of(name)] = value
        self.schema.validate_row(values)
        old_rid = self.disk_tuple_loc(oid)
        new_rid = self.heap.update(old_rid, self._codec.encode(values))
        if new_rid != old_rid:
            self.oid_index.delete(encode_int(oid), pack_rid(old_rid))
            self.oid_index.insert(encode_int(oid), pack_rid(new_rid))
        for col_name, index in self.secondary_indexes.items():
            i = self.schema.index_of(col_name)
            if values[i] != old_values[i]:
                ctype = self.schema.column(col_name).type
                index.delete(encode_key(old_values[i], ctype), encode_int(oid))
                index.insert(encode_key(values[i], ctype), encode_int(oid))

    def delete(self, oid: int) -> None:
        """Delete tuple ``oid`` and all its index entries."""
        values = self.read(oid)
        rid = self.disk_tuple_loc(oid)
        self.heap.delete(rid)
        self.oid_index.delete(encode_int(oid), pack_rid(rid))
        for col_name, index in self.secondary_indexes.items():
            value = values[self.schema.index_of(col_name)]
            key = encode_key(value, self.schema.column(col_name).type)
            index.delete(key, encode_int(oid))

    def scan(self) -> Iterator[tuple[int, list[object]]]:
        """Yield ``(oid, values)`` for every live tuple, heap order.

        OIDs are recovered by scanning the OID index once into a reverse map;
        heap order is preserved for realistic sequential-scan behaviour.
        """
        rid_to_oid = {
            unpack_rid(v): decode_int(k)
            for k, v in self.oid_index.items()
        }
        for rid, record in self.heap.scan():
            yield rid_to_oid[rid], self._codec.decode(record)

    def scan_batches(
        self, batch_rows: int
    ) -> Iterator[tuple[list[int], list[LazyColumn]]]:
        """Yield ``(oids, columns)`` chunks of up to ``batch_rows`` live
        tuples in heap order — the batch executor's scan path. Each column
        is a :class:`LazyColumn` over the chunk's raw record bytes: nothing
        is decoded until an operator actually reads that column, so a
        selective filter never pays for the columns (or rows) it drops."""
        rid_to_oid = {
            unpack_rid(v): decode_int(k)
            for k, v in self.oid_index.items()
        }
        width = len(self.schema.names)

        def lazy(records: list[bytes]) -> list[LazyColumn]:
            return [LazyColumn(self._codec, records, j) for j in range(width)]

        oids: list[int] = []
        records: list[bytes] = []
        for rid, record in self.heap.scan():
            oids.append(rid_to_oid[rid])
            records.append(record)
            if len(records) >= batch_rows:
                yield oids, lazy(records)
                oids, records = [], []
        if records:
            yield oids, lazy(records)

    # -- repair ------------------------------------------------------------------

    def reindex(self) -> dict[str, int]:
        """Rebuild every index of this table from its heap (repair path).

        The OID index is the *only* holder of OID assignments, so it cannot
        be conjured from the heap: entries whose RID no longer holds a
        live, schema-decodable record are **pruned**, and live heap records
        with no surviving OID mapping (or that fail to decode) are
        **salvaged** out — their identity is unrecoverable. Secondary
        indexes are fully derived and are rebuilt wholesale. The heap's
        record counter is re-derived from the pages at the end.

        Returns counters: ``kept``, ``pruned``, ``salvaged``.
        """
        # Best-effort read of the existing OID mapping; an unreadable index
        # contributes nothing (its records will be salvaged, not orphaned
        # under invented OIDs).
        entries: dict[int, RID] = {}
        try:
            for key, value in self.oid_index.items():
                entries.setdefault(decode_int(key), unpack_rid(value))
        except ReproError:
            entries = {}
        # Live, decodable heap records (per-page so one corrupt record
        # cannot abort the whole walk).
        live: dict[RID, list[object]] = {}
        bad: list[RID] = []
        for page_no in range(len(self.heap.page_ids)):
            page = SlottedPage(
                self.pool.get_page(self.heap.page_ids[page_no]),
                page_size=self.pool.disk.page_size,
            )
            for slot, stored in page.records():
                rid = RID(page_no, slot)
                try:
                    values = self._codec.decode(self.heap._unwrap(stored))
                    self.schema.validate_row(values)
                except ReproError:
                    bad.append(rid)
                    continue
                live[rid] = values
        # Keep one OID per live RID (lowest OID wins on corrupt duplicates).
        rid_to_oid: dict[RID, int] = {}
        for oid in sorted(entries):
            rid = entries[oid]
            if rid in live and rid not in rid_to_oid:
                rid_to_oid[rid] = oid
        pruned = len(entries) - len(rid_to_oid)
        salvage = bad + [rid for rid in live if rid not in rid_to_oid]
        for rid in salvage:
            self.heap.salvage_delete(rid)
        # Fresh OID index from the surviving mapping.
        try:
            self.oid_index.drop()
        except ReproError:
            pass  # corrupt tree: abandon its pages rather than fail repair
        self.oid_index = BTree(self.pool, unique=True)
        for rid, oid in rid_to_oid.items():
            self.oid_index.insert(encode_int(oid), pack_rid(rid))
        if rid_to_oid:
            self._next_oid = max(self._next_oid, max(rid_to_oid.values()) + 1)
        # Secondary indexes are derived: rebuild from the kept rows.
        for col_name in list(self.secondary_indexes):
            try:
                self.secondary_indexes[col_name].drop()
            except ReproError:
                pass
            index = BTree(self.pool)
            ctype = self.schema.column(col_name).type
            pos = self.schema.index_of(col_name)
            for rid, oid in rid_to_oid.items():
                index.insert(encode_key(live[rid][pos], ctype), encode_int(oid))
            self.secondary_indexes[col_name] = index
        self.heap.recount()
        return {
            "kept": len(rid_to_oid),
            "pruned": pruned,
            "salvaged": len(salvage),
        }

    # -- secondary indexes -------------------------------------------------------

    def create_index(self, column: str) -> BTree:
        """Build a standard B-Tree index on a data column."""
        if column in self.secondary_indexes:
            raise CatalogError(f"index on {self.name}.{column} already exists")
        ctype = self.schema.column(column).type
        index = BTree(self.pool)
        col_pos = self.schema.index_of(column)
        for oid, values in self.scan():
            index.insert(encode_key(values[col_pos], ctype), encode_int(oid))
        self.secondary_indexes[column] = index
        return index

    def has_index(self, column: str) -> bool:
        return column in self.secondary_indexes

    def index_lookup(self, column: str, value: object) -> list[int]:
        """OIDs of tuples where ``column == value`` via the secondary index."""
        index = self.secondary_indexes.get(column)
        if index is None:
            raise CatalogError(f"no index on {self.name}.{column}")
        key = encode_key(value, self.schema.column(column).type)
        return [decode_int(v) for v in index.search(key)]

    def index_range(
        self,
        column: str,
        lo: object | None,
        hi: object | None,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> Iterator[int]:
        """OIDs with ``lo <= column <= hi``, in column order."""
        index = self.secondary_indexes.get(column)
        if index is None:
            raise CatalogError(f"no index on {self.name}.{column}")
        ctype = self.schema.column(column).type
        lo_key = None if lo is None else encode_key(lo, ctype)
        hi_key = None if hi is None else encode_key(hi, ctype)
        for _, v in index.range_scan(lo_key, hi_key, lo_inclusive, hi_inclusive):
            yield decode_int(v)
