"""Cross-feature interoperability: the extensions must compose — images
carry hierarchies and keyword indexes, DML drives every index type's
maintenance, UDFs see hierarchical roll-ups, and the shell touches all of
it through one session."""

import pytest

from repro import Column, Database, ValueType
from repro.cli import execute_line

TREE = {"Health": {"Disease": {}, "Injury": {}}, "Other": {}}
SEEDS = [
    ("flu virus infection outbreak epidemic", "Disease"),
    ("broken wing wound bleeding fracture", "Injury"),
    ("survey checklist volunteer photo", "Other"),
]
DISEASE = "flu virus infection outbreak observed"
INJURY = "broken wing wound bleeding badly"
LONG_PAD = " with enough extra words to push this past the threshold"


def build() -> Database:
    db = Database()
    db.create_table("t", [Column("name", ValueType.TEXT)])
    db.create_hierarchical_classifier_instance("H", TREE, SEEDS)
    db.create_snippet_instance("S", min_chars=50, max_chars=200)
    db.sql("Alter Table t Add Indexable H")
    db.manager.link("t", "S")
    for i in range(6):
        oid = db.insert("t", {"name": f"n{i}"})
        for _ in range(i % 3):
            db.add_annotation(DISEASE + LONG_PAD, table="t", oid=oid)
        if i % 2:
            db.add_annotation(INJURY + LONG_PAD, table="t", oid=oid)
    db.create_keyword_index("t", "S")
    db.analyze("t")
    return db


HEALTH = "$.getSummaryObject('H').getLabelValue('Health')"


class TestPersistenceInterop:
    def test_hierarchy_survives_image(self, tmp_path):
        db = build()
        path = tmp_path / "db.indb"
        db.save(path)
        restored = Database.load(path)
        result = restored.sql(
            f"Select name From t r Where r.{HEALTH} >= 2 Order By name"
        )
        expected = db.sql(
            f"Select name From t r Where r.{HEALTH} >= 2 Order By name"
        )
        assert result.column("name") == expected.column("name")

    def test_keyword_index_survives_image(self, tmp_path):
        db = build()
        path = tmp_path / "db.indb"
        db.save(path)
        restored = Database.load(path)
        assert ("t", "S") in restored.keyword_indexes
        restored.options.search_raw = False
        restored.options.force_access = "index"
        result = restored.sql(
            "Select name From t r Where "
            "r.$.getSummaryObject('S').containsUnion('infection')"
        )
        restored.options.force_access = None
        restored.options.search_raw = True
        assert len(result) > 0

    def test_multilevel_zoom_after_restore(self, tmp_path):
        db = build()
        path = tmp_path / "db.indb"
        db.save(path)
        restored = Database.load(path)
        # n5: 2 disease + 1 injury annotations -> Health zoom returns 3.
        assert len(restored.zoom_in("t", 6, "H", "Health")) == 3


class TestDmlInterop:
    def test_delete_maintains_keyword_index(self):
        db = build()
        index = db.keyword_indexes[("t", "S")]
        victims = index.candidates(["infection"])
        assert victims
        db.sql(f"Delete From t r Where r.{HEALTH} >= 1")
        assert index.candidates(["infection"]) == set()

    def test_delete_with_hierarchical_predicate(self):
        db = build()
        deleted = db.sql(f"Delete From t r Where r.{HEALTH} = 0")
        # n0 and n3 carry no annotations at all -> Health is NULL there,
        # so only annotated tuples with zero Health counts match: none.
        assert deleted == 0
        deleted = db.sql(f"Delete From t r Where r.{HEALTH} >= 3")
        assert deleted == 1  # n5 (2 disease + 1 injury)

    def test_update_with_udf_predicate(self):
        db = build()
        db.register_udf(
            "sick",
            lambda s: (obj := s.get_summary_object("H")) is not None
            and obj.get_label_value("Disease") >= 2,
        )
        changed = db.sql("Update t r Set name = 'flagged' Where sick(r.$)")
        assert changed == 2  # n2 and n5 have 2 disease annotations
        flagged = db.sql("Select name From t Where name = 'flagged'")
        assert len(flagged) == 2


class TestShellInterop:
    def test_shell_session_touches_everything(self):
        db = build()
        out = execute_line(db, "\\instances")
        assert "H (HierarchicalClassifier) -> t" in out
        out = execute_line(
            db, f"Select name From t r Where r.{HEALTH} >= 2 Order By name"
        )
        assert "n1" in out and "n2" in out and "n5" in out
        out = execute_line(db, f"Delete From t r Where r.{HEALTH} >= 3")
        assert out == "1 rows affected"
        out = execute_line(db, "\\set search_raw false")
        assert db.options.search_raw is False
        execute_line(db, "\\set search_raw true")


class TestFuzzComposition:
    def test_hierarchy_rollup_consistent_with_leaf_sums(self):
        db = build()
        instance = db.manager.instance("H")
        for oid in range(1, 7):
            sset = db.manager.summary_set_for("t", oid)
            obj = sset.get_summary_object("H")
            if obj is None:
                continue
            health = instance.resolve_value(obj, "Health")
            leaves = (obj.get_label_value("Disease")
                      + obj.get_label_value("Injury"))
            assert health == leaves
