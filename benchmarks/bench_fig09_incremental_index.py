"""Figure 9 — overhead of incremental index maintenance.

Paper: insert 100 annotations at each scale and report the average
per-annotation insertion time under (1) no indexes, (2) a Summary-BTree
index (≈10–15% overhead), and (3) the Baseline index (≈20–37% overhead,
because of the extra de-normalization step).
"""

import random
import time

import pytest

from repro.bench import FigureTable, fresh_database
from repro.workload.generator import WorkloadConfig, annotation_batch

INSERTS = 100


def _avg_insert_ms(db, config, rng) -> float:
    """Average per-annotation wall time of INSERTS single inserts spread
    over random already-annotated tuples."""
    oids = [oid for oid, _ in db.catalog.table("birds").scan()]
    started = time.perf_counter()
    for i in range(INSERTS):
        oid = rng.choice(oids)
        [(text, targets)] = annotation_batch(rng, oid, config, 1)
        db.manager.add_annotation(text, targets)
    return (time.perf_counter() - started) / INSERTS * 1e3


@pytest.mark.benchmark(group="fig09-incremental")
@pytest.mark.parametrize("density", [10, 50, 200])
def test_incremental_indexing(benchmark, density, preset, figure_writer):
    if density not in preset.densities:
        pytest.skip(f"density {density} not in preset {preset.name}")
    config = WorkloadConfig(
        num_birds=preset.num_birds, annotations_per_tuple=density,
        indexes="none",
    )

    def run_all():
        db = fresh_database(
            num_birds=config.num_birds,
            annotations_per_tuple=config.annotations_per_tuple,
            indexes="none",
        )
        rng = random.Random(99)
        no_index_ms = _avg_insert_ms(db, config, rng)
        db.create_summary_index("birds", "ClassBird1")
        summary_ms = _avg_insert_ms(db, config, rng)
        db.drop_summary_index("birds", "ClassBird1")
        db.create_baseline_index("birds", "ClassBird1")
        baseline_ms = _avg_insert_ms(db, config, rng)
        return no_index_ms, summary_ms, baseline_ms

    no_index_ms, summary_ms, baseline_ms = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    table = figure_writer.setdefault(
        "fig09_incremental",
        FigureTable(
            "Figure 9 — incremental insertion (avg per annotation)",
            unit="ms",
        ),
    )
    x = preset.label(density)
    table.add("No Indexes", x, no_index_ms)
    table.add("Summary-BTree", x, summary_ms)
    table.add("Baseline", x, baseline_ms)
    if density == max(d for d in (10, 50, 200) if d in preset.densities):
        summary_over = table.mean_ratio("Summary-BTree", "No Indexes") - 1
        baseline_over = table.mean_ratio("Baseline", "No Indexes") - 1
        table.note(
            f"Summary-BTree adds {summary_over:.0%} per-insert overhead"
            "  [paper: 10-15%]"
        )
        table.note(
            f"Baseline adds {baseline_over:.0%} per-insert overhead"
            "  [paper: 20-37%]"
        )
