"""Wire protocol of the query server: length-prefixed JSON frames.

A frame is a 4-byte big-endian unsigned length followed by exactly that
many bytes of UTF-8 JSON.  Requests are objects::

    {"sql": "<statement>"}            required
    {"timeout": <seconds>}            optional per-statement deadline

Responses are objects with ``ok``::

    {"ok": true,  "result": <value>, "elapsed_ms": <float>}
    {"ok": false, "error": "<message>", "error_type": "<ReproError class>"}

Result values mirror :meth:`Database.sql` returns in JSON shape: a
SELECT becomes ``{"columns": [...], "rows": [[...]], "row_count": n}``,
ZOOM IN a list of texts, DELETE/UPDATE/ANNOTATE a number, DDL/INSERT
``null``, EXPLAIN its rendered text.

Framing errors are deliberately unforgiving: an oversized length or
undecodable payload raises :class:`~repro.errors.ProtocolError` and the
server answers with an error frame then drops the connection — a peer
that cannot frame correctly cannot be trusted to stay in sync with the
stream.  Statement errors (parse errors, lock timeouts, deadlines) are
ordinary ``ok: false`` responses and the connection survives.
"""

from __future__ import annotations

import json
import struct

from repro.errors import ProtocolError

#: 4-byte big-endian unsigned frame length.
LENGTH = struct.Struct(">I")

#: Refuse frames beyond this many payload bytes (requests *and* results).
MAX_FRAME = 8 * 1024 * 1024

#: Default server port (0 = ephemeral, for tests).
DEFAULT_PORT = 5433


def encode_frame(obj: object, max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one length-prefixed JSON frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {max_frame}-byte limit"
        )
    return LENGTH.pack(len(payload)) + payload


def decode_length(header: bytes, max_frame: int = MAX_FRAME) -> int:
    """Validate and unpack a frame header; returns the payload length."""
    if len(header) != LENGTH.size:
        raise ProtocolError(
            f"truncated frame header ({len(header)} of {LENGTH.size} bytes)"
        )
    (length,) = LENGTH.unpack(header)
    if length > max_frame:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    return length


def decode_payload(payload: bytes) -> dict:
    """Decode a frame payload into a request/response object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def jsonable_result(result: object) -> object:
    """Render a :meth:`Database.sql` return value as JSON-compatible data."""
    from repro.core.database import QueryReport
    from repro.query.result import ResultSet

    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    if isinstance(result, ResultSet):
        return {
            "columns": list(result.columns),
            "rows": [
                [_jsonable_value(v) for v in t.values] for t in result.tuples
            ],
            "row_count": len(result),
        }
    if isinstance(result, QueryReport):
        return str(result)
    if isinstance(result, (list, tuple)):
        return [_jsonable_value(v) for v in result]
    return str(result)


def _jsonable_value(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)
