"""Binder: SELECT AST -> validated initial logical plan.

The initial plan mirrors the paper's "default" shape (Figure 5(a)): data
selections are pushed onto their scans (classic optimization, assumed
given), data joins are built left-deep in FROM order, and the *summary-based*
operators (S, J, O) sit above the join tree — which is exactly where the
§5.1 rules then find their opportunities.

Summary elimination for the final projection (§2.2 step 1: "project out the
un-needed annotations before any merge") is recorded per alias in
:class:`BindInfo.retained_summary_columns` and applied by the physical scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import BindError
from repro.query.ast import (
    UdfCall,
    AggCall,
    ColumnRef,
    ExplainStmt,
    Expr,
    SelectItem,
    SelectStmt,
    Star,
    SummaryExpr,
)
from repro.query.logical import (
    summary_exprs_in,
    LogicalDistinct,
    LogicalGroup,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSelect,
    LogicalSort,
    LogicalSummaryFilter,
    LogicalSummaryJoin,
    LogicalSummarySelect,
    aliases_in,
    conjoin,
    has_summary_expr,
    split_conjuncts,
)
from repro.summaries.maintenance import SummaryManager


@dataclass
class BindInfo:
    """Catalog facts the optimizer and executor need about a bound query."""

    alias_tables: dict[str, str]
    #: alias -> columns retained in the final output (None = all columns,
    #: e.g. a ``*`` projection); drives summary-effect elimination.
    retained_summary_columns: dict[str, set[str] | None] = field(
        default_factory=dict
    )

    def table_of(self, alias: str) -> str:
        return self.alias_tables[alias]


def _rewrite_having(expr: Expr, aliases: dict[str, str] | None = None) -> Expr:
    """Replace aggregate calls (and select-list aliases of aggregates)
    with references to the group operator's output columns (GroupOp
    materializes each aggregate under its canonical ``str(AggCall)``
    name)."""
    from repro.query.ast import And, Comparison, Not, Or

    aliases = aliases or {}
    if isinstance(expr, AggCall):
        return ColumnRef(None, str(expr))
    if isinstance(expr, ColumnRef) and expr.alias is None \
            and expr.column in aliases:
        return ColumnRef(None, aliases[expr.column])
    if isinstance(expr, Comparison):
        return Comparison(expr.op, _rewrite_having(expr.left, aliases),
                          _rewrite_having(expr.right, aliases))
    if isinstance(expr, And):
        return And(tuple(_rewrite_having(i, aliases) for i in expr.items))
    if isinstance(expr, Or):
        return Or(tuple(_rewrite_having(i, aliases) for i in expr.items))
    if isinstance(expr, Not):
        return Not(_rewrite_having(expr.item, aliases))
    return expr


class Binder:
    def __init__(self, catalog: Catalog, manager: SummaryManager):
        self.catalog = catalog
        self.manager = manager

    def bind(self, stmt: SelectStmt | ExplainStmt) -> tuple[LogicalPlan, BindInfo]:
        if isinstance(stmt, ExplainStmt):
            # EXPLAIN is transparent to binding: the inner SELECT is what
            # gets validated and planned.
            stmt = stmt.query
        info = self._bind_tables(stmt)
        stmt = self._resolve_order_aliases(stmt)
        self._validate_expressions(stmt, info)
        plan = self._build_plan(stmt, info)
        return plan, info

    @staticmethod
    def _resolve_order_aliases(stmt: SelectStmt) -> SelectStmt:
        """ORDER BY (and HAVING handles its own) may reference select-item
        aliases; resolve them to the aliased expression — aggregates map to
        the group operator's canonical output column."""
        if not stmt.order_by:
            return stmt
        by_alias = {
            item.alias: item.expr
            for item in stmt.items
            if isinstance(item, SelectItem) and item.alias
        }
        if not by_alias:
            return stmt
        resolved = []
        changed = False
        for expr, direction in stmt.order_by:
            if isinstance(expr, ColumnRef) and expr.alias is None \
                    and expr.column in by_alias:
                target = by_alias[expr.column]
                if isinstance(target, AggCall):
                    target = ColumnRef(None, str(target))
                resolved.append((target, direction))
                changed = True
            else:
                resolved.append((expr, direction))
        if not changed:
            return stmt
        import dataclasses

        return dataclasses.replace(stmt, order_by=resolved)

    # -- tables -----------------------------------------------------------------

    def _bind_tables(self, stmt: SelectStmt) -> BindInfo:
        alias_tables: dict[str, str] = {}
        for ref in stmt.tables:
            if not self.catalog.has_table(ref.name):
                raise BindError(f"unknown table {ref.name!r}")
            if ref.alias in alias_tables:
                raise BindError(f"duplicate alias {ref.alias!r}")
            alias_tables[ref.alias] = self.catalog.table(ref.name).name
        return BindInfo(alias_tables)

    # -- validation -----------------------------------------------------------------

    def _iter_exprs(self, stmt: SelectStmt):
        for item in stmt.items:
            if isinstance(item, SelectItem):
                yield item.expr
        if stmt.where is not None:
            yield stmt.where
        yield from stmt.group_by
        for expr, _ in stmt.order_by:
            yield expr

    def _validate_expressions(self, stmt: SelectStmt, info: BindInfo) -> None:
        aliases = info.alias_tables
        # Group-output columns (canonical aggregate names and select
        # aliases) are legal bare references in ORDER BY / HAVING.
        group_columns = set()
        for item in stmt.items:
            if isinstance(item, SelectItem) and isinstance(item.expr, AggCall):
                group_columns.add(str(item.expr))
                if item.alias:
                    group_columns.add(item.alias)
        for root in self._iter_exprs(stmt):
            udf_args: set[int] = set()
            for node in root.walk():
                if isinstance(node, ColumnRef):
                    if node.alias is None and node.column in group_columns:
                        continue
                    self._validate_column(node, info)
                elif isinstance(node, UdfCall):
                    if node.name not in self.manager.udfs:
                        raise BindError(
                            f"unknown UDF {node.name!r}; register it with "
                            "Database.register_udf first"
                        )
                    udf_args.update(id(a) for a in node.args)
                elif isinstance(node, SummaryExpr):
                    if not node.chain and id(node) not in udf_args:
                        raise BindError(
                            "a bare '$' is only valid as a UDF argument"
                        )
                    self._validate_summary_expr(node, info)

    def _validate_column(self, ref: ColumnRef, info: BindInfo) -> None:
        if ref.alias is not None:
            if ref.alias not in info.alias_tables:
                raise BindError(f"unknown alias {ref.alias!r}")
            table = self.catalog.table(info.alias_tables[ref.alias])
            if ref.column.lower() != "oid" and ref.column not in table.schema:
                raise BindError(
                    f"no column {ref.column!r} in table {table.name!r}"
                )
            return
        hits = [
            alias
            for alias, tname in info.alias_tables.items()
            if ref.column in self.catalog.table(tname).schema
        ]
        if ref.column.lower() == "oid":
            return
        if not hits:
            raise BindError(f"unknown column {ref.column!r}")
        if len(hits) > 1:
            raise BindError(f"ambiguous column {ref.column!r}")

    def _validate_summary_expr(self, expr: SummaryExpr, info: BindInfo) -> None:
        if expr.alias is None:
            if len(info.alias_tables) > 1:
                raise BindError("'$' must be alias-qualified in a multi-table query")
        elif expr.alias not in info.alias_tables:
            raise BindError(f"unknown alias {expr.alias!r} in summary expression")
        instance = expr.instance_name
        if instance is not None:
            if not self.manager.has_instance(instance):
                raise BindError(f"unknown summary instance {instance!r}")
            table = info.alias_tables.get(expr.alias) if expr.alias \
                else next(iter(info.alias_tables.values()))
            if table is not None and not self.manager.is_linked(
                table, instance
            ):
                raise BindError(
                    f"summary instance {instance!r} is not linked to "
                    f"table {table!r}"
                )

    # -- plan construction ------------------------------------------------------------

    def _build_plan(self, stmt: SelectStmt, info: BindInfo) -> LogicalPlan:
        conjuncts = split_conjuncts(stmt.where)
        data_single: dict[str, list[Expr]] = {a: [] for a in info.alias_tables}
        data_multi: list[Expr] = []
        summary_single: list[Expr] = []
        summary_multi: list[Expr] = []
        for pred in conjuncts:
            refs = aliases_in(pred)
            if not refs and len(info.alias_tables) == 1:
                refs = set(info.alias_tables)
            if has_summary_expr(pred):
                (summary_multi if len(refs) > 1 else summary_single).append(pred)
            elif len(refs) <= 1:
                alias = next(iter(refs), next(iter(info.alias_tables)))
                data_single[alias].append(pred)
            else:
                data_multi.append(pred)

        # Scans with pushed single-table data selections.
        subplans: dict[str, LogicalPlan] = {}
        for ref in stmt.tables:
            plan: LogicalPlan = LogicalScan(info.alias_tables[ref.alias], ref.alias)
            pred = conjoin(data_single[ref.alias])
            if pred is not None:
                plan = LogicalSelect(plan, pred)
            subplans[ref.alias] = plan

        # Left-deep join tree in FROM order; each step picks up the data join
        # conditions and summary-join predicates that just became evaluable.
        order = [ref.alias for ref in stmt.tables]
        tree = subplans[order[0]]
        covered = {order[0]}
        pending_data = list(data_multi)
        pending_summary = list(summary_multi)
        for alias in order[1:]:
            covered.add(alias)
            ready_data = [p for p in pending_data if aliases_in(p) <= covered]
            pending_data = [p for p in pending_data if not (aliases_in(p) <= covered)]
            ready_summary = [p for p in pending_summary if aliases_in(p) <= covered]
            pending_summary = [
                p for p in pending_summary if not (aliases_in(p) <= covered)
            ]
            right = subplans[alias]
            if ready_summary:
                tree = LogicalSummaryJoin(
                    tree, right,
                    predicate=conjoin(ready_summary),
                    data_condition=conjoin(ready_data),
                )
            else:
                tree = LogicalJoin(tree, right, conjoin(ready_data))
        if pending_data or pending_summary:
            raise BindError("unresolvable join predicates in WHERE clause")

        # Summary-based selections default *above* the joins (Figure 5(a)).
        pred = conjoin(summary_single)
        if pred is not None:
            tree = LogicalSummarySelect(tree, pred)

        # FILTER SUMMARIES -> the F operator, defaulting above the joins.
        if stmt.summary_filter is not None:
            from repro.query.eval import is_structural_predicate

            tree = LogicalSummaryFilter(
                tree,
                stmt.summary_filter,
                structural=is_structural_predicate(stmt.summary_filter),
            )

        # Grouping (+ HAVING as a post-group selection).
        if stmt.group_by or stmt.having is not None or any(
            isinstance(i, SelectItem) and isinstance(i.expr, AggCall)
            for i in stmt.items
        ):
            aggregates = [
                (item.expr, item.alias or str(item.expr))
                for item in stmt.items
                if isinstance(item, SelectItem) and isinstance(item.expr, AggCall)
            ]
            having = None
            if stmt.having is not None:
                known = {str(expr) for expr, _ in aggregates}
                for agg in stmt.having.walk():
                    if isinstance(agg, AggCall) and str(agg) not in known:
                        # HAVING-only aggregates are computed by the group
                        # operator under their canonical name.
                        aggregates.append((agg, str(agg)))
                        known.add(str(agg))
                alias_map = {
                    item.alias: str(item.expr)
                    for item in stmt.items
                    if isinstance(item, SelectItem)
                    and isinstance(item.expr, AggCall)
                    and item.alias
                }
                having = _rewrite_having(stmt.having, alias_map)
            tree = LogicalGroup(tree, list(stmt.group_by), aggregates)
            if having is not None:
                if summary_exprs_in(having):
                    tree = LogicalSummarySelect(tree, having)
                else:
                    tree = LogicalSelect(tree, having)

        # Ordering (the O operator when keys are summary expressions).
        if stmt.order_by:
            tree = LogicalSort(tree, list(stmt.order_by))

        if stmt.limit is not None:
            tree = LogicalLimit(tree, stmt.limit)

        tree = LogicalProject(tree, list(stmt.items))
        if getattr(stmt, "distinct", False):
            tree = LogicalDistinct(tree)

        info.retained_summary_columns = self._retained_columns(stmt, info)
        return tree

    def _retained_columns(
        self, stmt: SelectStmt, info: BindInfo
    ) -> dict[str, set[str] | None]:
        """Columns of each alias surviving into the final output.

        Annotations attached only to non-retained columns have their effect
        eliminated at scan time (before any merge — the Theorem-1/2
        requirement of [22] quoted in §2.2).
        """
        retained: dict[str, set[str] | None] = {a: set() for a in info.alias_tables}

        def keep(alias: str | None, column: str) -> None:
            targets = [alias] if alias else list(info.alias_tables)
            for a in targets:
                table = self.catalog.table(info.alias_tables[a])
                if column in table.schema and retained[a] is not None:
                    retained[a].add(column)

        for item in stmt.items:
            if isinstance(item, Star):
                for a in ([item.alias] if item.alias else info.alias_tables):
                    retained[a] = None  # all columns retained
            else:
                for node in item.expr.walk():
                    if isinstance(node, ColumnRef):
                        keep(node.alias, node.column)
        # Group keys materialize in the output as well.
        for expr in stmt.group_by:
            for node in expr.walk():
                if isinstance(node, ColumnRef):
                    keep(node.alias, node.column)
        return retained
