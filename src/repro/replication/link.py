"""The replication link: a replica's polling connection to its primary.

Runs on its own thread over the blocking :class:`~repro.server.client.
QueryClient`.  Each cycle requests WAL bytes from the applier's
``fetch_lsn`` (which doubles as the cumulative ack) and feeds them to the
:class:`~repro.replication.applier.WALApplier`.  The loop embodies the
robustness contract:

* **Reconnect-and-resume.**  Any transport failure — reset, stall,
  garbled frame, primary restart — drops the connection; the link backs
  off on the seeded :class:`~repro.resilience.RetryPolicy` schedule and
  reconnects, rewinding the applier to its ack watermark.  The refetched
  overlap contains only never-applied records, so resume never double
  applies.
* **Bootstrap / re-bootstrap.**  The first session (and any session
  after the primary answers ``too_old`` or divergence is detected)
  downloads a fresh snapshot image chunk-by-chunk and installs it via
  the owner's ``install_snapshot`` callback before streaming resumes.
* **Divergence detection.**  The WAL scan validates CRC and positional
  LSN on every frame; bytes at the fetch point that repeatedly fail to
  parse — while the primary reports durable data there and the window
  cannot be short — mean the replica's log position no longer matches
  the primary's stream.  The link raises
  :class:`~repro.errors.ReplicationDivergenceError` and re-bootstraps
  automatically.
"""

from __future__ import annotations

import base64
import threading
import time

from repro.errors import (
    ClientTimeoutError,
    ProtocolError,
    ReplicationDivergenceError,
    ReplicationError,
    ReproError,
    ServerError,
)
from repro.resilience import RetryPolicy
from repro.server.client import QueryClient

#: consecutive zero-progress polls (with data present and the window not
#: the limiting factor) before the link declares divergence.
DIVERGENCE_THRESHOLD = 3

#: client-side ceiling on the poll window (matches the primary's cap).
MAX_POLL_BYTES = 4 << 20

_TRANSPORT_ERRORS = (ConnectionError, ClientTimeoutError, ProtocolError,
                     OSError)


class ReplicationLink:
    """Streams a primary's WAL into a local applier, resiliently.

    ``install_snapshot(image_bytes) -> lsn`` is the owner's bootstrap
    hook: install a primary snapshot image and return its LSN (the
    :class:`~repro.replication.replica.ReplicaServer` swaps its database
    state in place and resets the applier).
    """

    def __init__(self, db, applier, primary_host: str, primary_port: int,
                 replica_id: str, install_snapshot,
                 retry: RetryPolicy | None = None,
                 poll_interval: float = 0.02,
                 max_bytes: int = 1 << 20,
                 connect_timeout: float = 2.0,
                 response_timeout: float | None = 10.0):
        self.db = db
        self.applier = applier
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.replica_id = replica_id
        self.install_snapshot = install_snapshot
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, base_delay=0.01, max_delay=0.5
        )
        self.poll_interval = poll_interval
        self.max_bytes = max_bytes
        self.connect_timeout = connect_timeout
        self.response_timeout = response_timeout
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: observability (all also surfaced through :meth:`health`).
        self.connected = False
        self.bootstrapped = threading.Event()
        self.last_error: BaseException | None = None
        self.primary_lsn = 0
        self.durable_lsn = 0
        self.reconnects = 0
        self.bootstraps = 0
        self.divergences = 0
        #: completed replicate polls (drives wait_caught_up freshness).
        self.polls = 0
        self._needs_bootstrap = True

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ReplicationLink":
        self._thread = threading.Thread(
            target=self._run, name=f"repl-link-{self.replica_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, join: bool = True) -> None:
        self._stop.set()
        thread = self._thread
        if join and thread is not None and thread.is_alive():
            thread.join(timeout=10.0)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def wait_for_lsn(self, lsn: int, timeout: float = 0.0) -> int:
        return self.applier.wait_for_lsn(lsn, timeout)

    def wait_caught_up(self, timeout: float = 5.0) -> bool:
        """Block until the replica has applied everything the primary
        reported durable at some point *after* the call (tests' barrier).

        ``durable_lsn`` is only as fresh as the last poll, so requiring
        two completed polls after entry guarantees at least one request
        was *issued* after the call — its answer carries the primary's
        current durable tail, covering every write acked before entry.
        """
        deadline = time.monotonic() + timeout
        entry_polls = self.polls
        while time.monotonic() < deadline:
            if (self.bootstrapped.is_set() and self.connected
                    and self.polls >= entry_polls + 2
                    and self.durable_lsn
                    and self.applier.fetch_lsn >= self.durable_lsn
                    and self.applier.ack_lsn >= self.durable_lsn):
                return True
            time.sleep(0.005)
        return False

    # -- health --------------------------------------------------------------

    def lag_bytes(self) -> int:
        return max(0, self.durable_lsn - self.applier.ack_lsn)

    def lag_seconds(self) -> float:
        if self.lag_bytes() == 0:
            return 0.0
        return max(0.0, time.monotonic() - self.applier.last_advance)

    def health(self) -> dict:
        return {
            "role": "replica",
            "primary": f"{self.primary_host}:{self.primary_port}",
            "replica_id": self.replica_id,
            "connected": self.connected,
            "bootstrapped": self.bootstrapped.is_set(),
            "applied_lsn": self.applier.ack_lsn,
            "primary_lsn": self.primary_lsn,
            "lag_bytes": self.lag_bytes(),
            "lag_seconds": self.lag_seconds(),
            "reconnects": self.reconnects,
            "bootstraps": self.bootstraps,
            "divergences": self.divergences,
            "last_error": (
                str(self.last_error) if self.last_error is not None else None
            ),
        }

    def _set_lag_gauges(self) -> None:
        metrics = getattr(self.db, "metrics", None)
        if metrics is not None:
            metrics.set_gauge("repl.lag_bytes", self.lag_bytes())
            metrics.set_gauge("repl.lag_seconds", self.lag_seconds())
            metrics.set_gauge("repl.applied_lsn", self.applier.ack_lsn)
            metrics.set_gauge("repl.primary_lsn", self.primary_lsn)

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        attempt = 0
        while not self._stop.is_set():
            try:
                self._session()
                attempt = 0  # a session that ended cleanly resets backoff
            except ReplicationDivergenceError as exc:
                self.last_error = exc
                self.divergences += 1
                self._needs_bootstrap = True
                self.db.metrics.inc("repl.divergences")
            except (ServerError, ReplicationError,
                    *_TRANSPORT_ERRORS) as exc:
                self.last_error = exc
                self.db.metrics.inc("repl.link_errors")
            finally:
                if self.connected:
                    self.reconnects += 1
                self.connected = False
            if self._stop.is_set():
                break
            attempt += 1
            # Bounded backoff, retried forever: a replica never gives up
            # on its primary coming back.
            delay = self.retry.delay(min(attempt, self.retry.max_attempts))
            self._stop.wait(delay if delay > 0 else 0.001)

    def _session(self) -> None:
        """One connection's lifetime: (re)bootstrap if needed, then poll
        until stop or failure."""
        with QueryClient(
            self.primary_host, self.primary_port,
            connect_timeout=self.connect_timeout,
            response_timeout=self.response_timeout,
        ) as client:
            self.connected = True
            # Anything buffered belongs to the dead connection's parse
            # state; resume from the applied prefix (idempotent overlap).
            self.applier.reset_to_ack()
            if self._needs_bootstrap:
                self._bootstrap(client)
            self._poll(client)

    def _bootstrap(self, client: QueryClient) -> None:
        """Download a snapshot image chunk-by-chunk and install it."""
        chunks = bytearray()
        offset = 0
        while True:
            result = client.request(
                {"op": "replicate_snapshot", "offset": offset}
            )
            if result.get("offset") != offset:
                raise ReplicationError(
                    f"snapshot chunk at offset {result.get('offset')} "
                    f"answered a request for {offset}"
                )
            chunk = base64.b64decode(result.get("data", ""))
            chunks.extend(chunk)
            offset += len(chunk)
            if result.get("done"):
                break
            if not chunk:
                raise ReplicationError(
                    "primary sent an empty, non-final snapshot chunk"
                )
        lsn = self.install_snapshot(bytes(chunks))
        self.bootstraps += 1
        self._needs_bootstrap = False
        self.bootstrapped.set()
        self.db.metrics.inc("repl.bootstraps")
        self.db.metrics.set_gauge("repl.applied_lsn", lsn)

    def _poll(self, client: QueryClient) -> None:
        applier = self.applier
        no_progress = 0
        window = self.max_bytes
        while not self._stop.is_set():
            result = client.request({
                "op": "replicate",
                "from_lsn": applier.fetch_lsn,
                "replica_id": self.replica_id,
                "max_bytes": window,
            })
            self.primary_lsn = int(result.get("next_lsn", 0))
            self.durable_lsn = int(result.get("durable_lsn", 0))
            if result.get("status") == "too_old":
                # Fell off the primary's retained log (e.g. we were
                # detached across a checkpoint): start over from a
                # fresh snapshot on this same connection.
                self.db.metrics.inc("repl.too_old")
                self._needs_bootstrap = True
                self._bootstrap(client)
                no_progress = 0
                continue
            data = base64.b64decode(result.get("data", ""))
            try:
                res = applier.feed(data)
            except ReproError as exc:
                raise ReplicationDivergenceError(
                    f"stream apply failed at LSN {applier.fetch_lsn}: {exc}"
                ) from exc
            if data and res.parsed_bytes == 0:
                if len(data) >= window and window < MAX_POLL_BYTES:
                    # The next frame is bigger than the window; grow it
                    # rather than misread a short read as divergence.
                    window = min(window * 2, MAX_POLL_BYTES)
                    continue
                no_progress += 1
                if no_progress >= DIVERGENCE_THRESHOLD:
                    raise ReplicationDivergenceError(
                        f"no valid frame at LSN {applier.fetch_lsn} after "
                        f"{no_progress} polls (primary durable through "
                        f"{self.durable_lsn}): LSN/CRC mismatch — "
                        "replica has diverged"
                    )
            else:
                no_progress = 0
                window = self.max_bytes
            self.polls += 1
            self._set_lag_gauges()
            if applier.fetch_lsn >= self.durable_lsn:
                # Caught up; idle until the next poll tick.
                self._stop.wait(self.poll_interval)
