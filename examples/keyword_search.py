"""Keyword search over annotations: snippets vs raw text, trigram index,
and black-box UDFs.

§3.1 of the paper calls out an accuracy/performance trade-off between
searching the snippets and searching the raw annotations.  This example
walks both sides, then accelerates the snippet side with the trigram
keyword index and closes with a registered UDF predicate.

Run with::

    python examples/keyword_search.py
"""

import time

from repro.workload.generator import WorkloadConfig, build_database

SNIPPET = "$.getSummaryObject('TextSummary1')"
QUERY = (
    "Select common_name From birds r Where "
    f"r.{SNIPPET}.containsUnion('experiment', 'wikipedia')"
)

print("Building a workload with long annotations (12% earn snippets)...")
db = build_database(WorkloadConfig(
    num_birds=100, annotations_per_tuple=30, cell_fraction=0.0, seed=23,
))


def timed(label):
    started = time.perf_counter()
    result = db.sql(QUERY)
    elapsed = (time.perf_counter() - started) * 1e3
    print(f"  {label:<42} {len(result):>3} rows in {elapsed:7.1f} ms")
    return result


print("\ncontainsUnion('experiment', 'wikipedia'):")
# 1. The accurate-but-slow side: search snippets AND all raw annotations.
db.options.search_raw = True
timed("raw-annotation search (accurate, slow)")

# 2. The fast side: snippets only — may miss keywords that never made it
#    into a snippet, which is precisely the paper's accuracy trade-off.
db.options.search_raw = False
timed("snippet-only search")

# 3. Accelerate the snippet side with the trigram keyword index.
db.create_keyword_index("birds", "TextSummary1")
db.options.force_access = "index"
timed("snippet-only + trigram keyword index")
print("\nPlan with the index:")
print(db.explain(QUERY).physical)
db.options.force_access = None
db.options.search_raw = True

# 4. Black-box UDFs (§3.2): arbitrary Python over the summary set.
print("\nA registered UDF mixing both instances:")


def newsworthy(summary_set) -> bool:
    """Birds with disease reports AND article-backed snippets."""
    classifier = summary_set.get_summary_object("ClassBird1")
    snippets = summary_set.get_summary_object("TextSummary1")
    return (
        classifier is not None
        and classifier.get_label_value("Disease") >= 10
        and snippets is not None
        and snippets.get_size() > 0
    )


db.register_udf("newsworthy", newsworthy)
result = db.sql("Select common_name From birds r Where newsworthy(r.$)")
for t in result.tuples[:5]:
    print(f"  {t.get('common_name')}")
print(f"  ({len(result)} birds total)")
