"""Analytical model of the paper's two usability case studies.

The paper runs each study with 20 students split into two groups and
reports per-query wall time and accuracy (Figures 2 and 16).  Humans
cannot be re-run, so the model replays the *structure* of each group's
workflow over a real generated database:

* every step the group's engine can automate runs as a **real query**
  against the engine (and is timed for real);
* every remaining manual step charges calibrated per-item human costs —
  reading an annotation, judging a tuple, one step of a manual sort — and
  draws seeded Bernoulli classification errors per annotation.

Calibration.  The constants in :class:`HumanModel` are fitted to the
paper's reported numbers at the paper's scale:

=======================  =======  ==========================================
constant                 value    provenance
=======================  =======  ==========================================
``write_query_s``        35 s     both groups "including writing the query";
                                  InsightNotes Q1/Q2 finish in 47 s total
``read_annotation_s``    1.1 s    Fig 2 Q1: 21 min over ≈1,100 annotations
``judge_tuple_s``        1.05 s   Fig 16 Q2: 8.1 min over 450 joined tuples
``sort_tuple_s``         3.1 s    Fig 2/16 Q1: 5.2 min manual sort of 100
``base_fp``              0.04     per-annotation chance of flagging an
                                  irrelevant annotation; with a ~20%%
                                  relevant fraction this yields Fig 2 Q1's
                                  17%% false positives among reported items
``base_fn``              0.25     per-annotation chance of missing a
                                  relevant annotation (Fig 2 Q1's 25%%)
``fatigue``              0.09     Fig 2 Q2 errors grow toward 0.18/0.34 as
                                  the number of annotations read doubles
``infeasible_after_s``   3600 s   tasks past an hour are reported infeasible
                                  (the paper marks them "---")
=======================  =======  ==========================================

The structural claims then fall out: fully automated queries answer in
seconds at 100% accuracy; manual post-processing scales with the number of
items touched and accumulates errors; and queries whose manual workload
exceeds an hour are infeasible, exactly the "---" cells of Figures 2/16.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field

from repro.core.database import Database
from repro.study.dataset import StudyConfig, build_study_database

_DISEASE_EXPR = (
    "$.getSummaryObject('ClassBird1').getLabelValue('Disease')"
)


@dataclass
class HumanModel:
    """Calibrated human-cost constants (see module docstring)."""

    write_query_s: float = 35.0
    read_annotation_s: float = 1.1
    judge_tuple_s: float = 1.05
    sort_tuple_s: float = 3.1
    base_fp: float = 0.04
    base_fn: float = 0.25
    fatigue: float = 0.09
    infeasible_after_s: float = 3600.0
    #: reference item count at which base error rates apply (Fig 2 Q1 scale)
    reference_items: int = 1100

    def error_rates(self, items_read: int) -> tuple[float, float]:
        """(false-positive, false-negative) rates after reading
        ``items_read`` annotations; fatigue grows both logarithmically."""
        if items_read <= 0:
            return 0.0, 0.0
        growth = self.fatigue * math.log(
            max(1.0, items_read / self.reference_items), 2
        )
        fp = min(0.5, self.base_fp * (1.0 + growth) + max(0.0, growth) * 0.0)
        fn = min(0.6, self.base_fn * (1.0 + growth))
        return fp, fn


@dataclass
class GroupResult:
    """One cell of Figure 2 / Figure 16: a group answering one query."""

    group: str
    query: str
    qualifying: int
    human_s: float
    machine_s: float
    false_positives: float
    false_negatives: float
    feasible: bool = True
    notes: str = ""

    @property
    def total_s(self) -> float:
        return self.human_s + self.machine_s

    @property
    def accuracy(self) -> float:
        """1 − (FP+FN)/2, the symmetric accuracy the paper reports as %."""
        return 1.0 - (self.false_positives + self.false_negatives) / 2.0

    def describe(self) -> str:
        if not self.feasible:
            return f"{self.group:>18} {self.query}: infeasible ({self.notes})"
        return (
            f"{self.group:>18} {self.query}: {self.total_s:8.1f} s  "
            f"acc {self.accuracy * 100:5.1f}%  FP {self.false_positives:.0%}"
            f"  FN {self.false_negatives:.0%}  ({self.qualifying} tuples)"
        )


@dataclass
class StudyReport:
    """All group×query cells of one simulated study."""

    title: str
    results: list[GroupResult] = field(default_factory=list)

    def rows_for(self, query: str) -> list[GroupResult]:
        return [r for r in self.results if r.query == query]

    def result(self, group: str, query: str) -> GroupResult:
        for r in self.results:
            if r.group == group and r.query == query:
                return r
        raise KeyError((group, query))

    def __str__(self) -> str:
        lines = [self.title]
        lines += [r.describe() for r in self.results]
        return "\n".join(lines)


def _timed(fn):
    """Run ``fn`` and return (result, elapsed seconds)."""
    started = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - started


def _manual_classification(
    rng: random.Random,
    model: HumanModel,
    relevant: int,
    irrelevant: int,
) -> tuple[float, float, float]:
    """A human reads ``relevant + irrelevant`` annotations and flags the
    relevant ones.  Returns (seconds, fp_rate, fn_rate) with seeded
    Bernoulli errors at fatigue-adjusted rates."""
    total = relevant + irrelevant
    fp_rate, fn_rate = model.error_rates(total)
    missed = sum(1 for _ in range(relevant) if rng.random() < fn_rate)
    extra = sum(1 for _ in range(irrelevant) if rng.random() < fp_rate)
    seconds = total * model.read_annotation_s
    reported = relevant - missed + extra
    fp = extra / max(1, reported)  # wrong items among what was reported
    fn = missed / max(1, relevant)  # relevant items the reader missed
    return seconds, fp, fn


def _result_oids(result) -> list[int]:
    """Base-table OIDs behind a single-table result's tuples."""
    return [next(iter(t.provenance.values()))[1] for t in result.tuples]


def _annotation_counts(
    db: Database, table: str, oids: list[int], label: str
) -> tuple[int, int]:
    """(relevant, irrelevant) raw-annotation counts over ``oids`` according
    to the engine's own classifier summaries — the operational ground truth
    a zoom-in would return."""
    relevant = 0
    total = 0
    for oid in oids:
        summary_set = db.manager.summary_set_for(table, oid)
        obj = summary_set.get_summary_object("ClassBird1")
        if obj is None:
            continue
        counts = dict(obj.rep())
        relevant += counts.get(label, 0)
        total += sum(counts.values())
    return relevant, total - relevant


def simulate_motivating_study(
    db: Database | None = None,
    model: HumanModel | None = None,
    config: StudyConfig | None = None,
    seed: int = 7,
) -> StudyReport:
    """Figure 2: the InsightNotes group vs. the Raw-Annotations group
    answering Q1–Q3 of §1.1 over the 100-tuple study database."""
    model = model or HumanModel()
    db = db or build_study_database(config)
    rng = random.Random(seed)
    report = StudyReport("Figure 2 — motivating usability study")

    # ---- Q1: disease annotations on birds named Swan* --------------------
    swans, machine = _timed(
        lambda: db.sql("Select name From birds Where name Like 'Swan%'")
    )
    swan_oids = _result_oids(swans)
    # InsightNotes: one query + one zoom-in per tuple, all automated.
    _, zoom_s = _timed(
        lambda: [
            db.zoom_in("birds", oid, "ClassBird1", "Disease")
            for oid in swan_oids
        ]
    )
    report.results.append(
        GroupResult(
            "InsightNotes", "Q1", len(swans),
            human_s=model.write_query_s,
            machine_s=machine + zoom_s,
            false_positives=0.0, false_negatives=0.0,
        )
    )
    # Raw group: same data query, then read every attached annotation.
    relevant, irrelevant = _annotation_counts(
        db, "birds", swan_oids, "Disease"
    )
    seconds, fp, fn = _manual_classification(rng, model, relevant, irrelevant)
    report.results.append(
        GroupResult(
            "Raw-Annotations", "Q1", len(swans),
            human_s=model.write_query_s + seconds,
            machine_s=machine,
            false_positives=fp, false_negatives=fn,
        )
    )

    # ---- Q2: behavior counts per qualifying family group -----------------
    family_pred = " Or ".join(
        f"family = '{f}'" for f in ("Anatidae", "Accipitridae", "Corvidae")
    )
    grouped, machine = _timed(
        lambda: db.sql(
            "Select family, r.$.getSummaryObject('ClassBird1')."
            f"getLabelValue('Behavior') b From birds r Where {family_pred} "
            "Group By family Order By family"
        )
    )
    group_families = [t.get("family") for t in grouped.tuples]
    report.results.append(
        GroupResult(
            "InsightNotes", "Q2", len(grouped),
            human_s=model.write_query_s,
            machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
        )
    )
    # Raw group must read annotations of every tuple in the chosen groups
    # (aggregation collects annotations from multiple base tuples).
    member_oids: list[int] = []
    for family in group_families:
        members = db.sql(
            f"Select name From birds Where family = '{family}'"
        )
        member_oids += _result_oids(members)
    relevant, irrelevant = _annotation_counts(
        db, "birds", member_oids, "Behavior"
    )
    seconds, fp, fn = _manual_classification(rng, model, relevant, irrelevant)
    report.results.append(
        GroupResult(
            "Raw-Annotations", "Q2", len(grouped),
            human_s=model.write_query_s + seconds,
            machine_s=machine,
            false_positives=fp, false_negatives=fn,
        )
    )

    # ---- Q3: sort all tuples by disease-annotation count -----------------
    all_birds, machine = _timed(lambda: db.sql("Select name From birds"))
    n = len(all_birds)
    # Basic InsightNotes: engine reports summaries but cannot sort by them;
    # the student sorts n tuples by hand.
    manual_sort_s = n * model.sort_tuple_s
    report.results.append(
        GroupResult(
            "InsightNotes", "Q3", n,
            human_s=model.write_query_s + manual_sort_s,
            machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
            notes="manual sort of propagated summaries",
        )
    )
    # Raw group: would have to count disease annotations on every tuple
    # before sorting.  Feasibility is judged at the paper's full annotation
    # density: the generated database holds ``scale`` × the paper's 75–380
    # annotations/tuple, so the paper-scale workload divides by that scale.
    scale = (config or StudyConfig()).scale
    relevant, irrelevant = _annotation_counts(
        db, "birds", _result_oids(all_birds), "Disease"
    )
    raw_seconds = (relevant + irrelevant) * model.read_annotation_s
    raw_seconds += manual_sort_s
    paper_scale_seconds = raw_seconds / max(scale, 1e-9)
    report.results.append(
        GroupResult(
            "Raw-Annotations", "Q3", n,
            human_s=model.write_query_s + raw_seconds,
            machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
            feasible=paper_scale_seconds <= model.infeasible_after_s,
            notes=f"{relevant + irrelevant} annotations to read "
            f"({round((relevant + irrelevant) / max(scale, 1e-9))} at paper"
            " scale)",
        )
    )
    return report


def simulate_usability_study(
    db: Database | None = None,
    model: HumanModel | None = None,
    config: StudyConfig | None = None,
    seed: int = 7,
) -> StudyReport:
    """Figure 16: basic InsightNotes vs. InsightNotes+ answering the three
    §6 queries.  The "+" group's queries run fully inside the engine."""
    model = model or HumanModel()
    db = db or build_study_database(config)
    rng = random.Random(seed)
    report = StudyReport("Figure 16 — usability study (InsightNotes vs. +)")

    # ---- Q1: tuples sorted by disease-annotation count -------------------
    sorted_birds, machine = _timed(
        lambda: db.sql(
            f"Select name From birds r Order By r.{_DISEASE_EXPR} Desc"
        )
    )
    n = len(sorted_birds)
    report.results.append(
        GroupResult(
            "InsightNotes+", "Q1", n,
            human_s=model.write_query_s, machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
        )
    )
    plain, machine_basic = _timed(lambda: db.sql("Select name From birds"))
    report.results.append(
        GroupResult(
            "InsightNotes", "Q1", len(plain),
            human_s=model.write_query_s + n * model.sort_tuple_s,
            machine_s=machine_basic,
            false_positives=0.0, false_negatives=0.0,
            notes="manual sort",
        )
    )

    # ---- Q2: revision join, differing disease counts ----------------------
    joined, machine = _timed(
        lambda: db.sql(
            "Select v1.name From birds v1, birds_v2 v2 "
            "Where v1.bird_id = v2.bird_id And "
            f"v1.{_DISEASE_EXPR} <> v2.{_DISEASE_EXPR}"
        )
    )
    report.results.append(
        GroupResult(
            "InsightNotes+", "Q2", len(joined),
            human_s=model.write_query_s, machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
        )
    )
    # Basic group: engine joins on the data predicate only; the student
    # checks the summary predicate on every joined tuple by hand.
    data_joined, machine_basic = _timed(
        lambda: db.sql(
            "Select v1.name From birds v1, birds_v2 v2 "
            "Where v1.bird_id = v2.bird_id"
        )
    )
    report.results.append(
        GroupResult(
            "InsightNotes", "Q2", len(joined),
            human_s=model.write_query_s
            + len(data_joined) * model.judge_tuple_s,
            machine_s=machine_basic,
            false_positives=0.0, false_negatives=0.0,
            notes=f"manual check of {len(data_joined)} joined tuples",
        )
    )

    # ---- Q3: summary-based selection --------------------------------------
    selected, machine = _timed(
        lambda: db.sql(
            f"Select name From birds r Where r.{_DISEASE_EXPR} > 3"
        )
    )
    report.results.append(
        GroupResult(
            "InsightNotes+", "Q3", len(selected),
            human_s=model.write_query_s, machine_s=machine,
            false_positives=0.0, false_negatives=0.0,
        )
    )
    # Basic group: all tuples come back; manually selecting from them is
    # infeasible at the paper's 45,000-tuple scale (and flagged as such
    # whenever the manual workload passes the infeasibility threshold).
    everything, machine_basic = _timed(lambda: db.sql("Select name From birds"))
    manual_s = len(everything) * model.judge_tuple_s
    paper_scale_manual_s = 45_000 * model.judge_tuple_s
    report.results.append(
        GroupResult(
            "InsightNotes", "Q3", len(selected),
            human_s=model.write_query_s + manual_s,
            machine_s=machine_basic,
            false_positives=0.0, false_negatives=0.0,
            feasible=paper_scale_manual_s <= model.infeasible_after_s,
            notes=f"{len(everything)} tuples reported for manual selection"
            " (45,000 at paper scale)",
        )
    )
    # Keep the rng threaded through for future error-bearing branches.
    del rng
    return report
