"""Order-preserving key encodings for B-Tree indexes.

Every encoder maps Python values to byte strings whose lexicographic order
matches the natural value order, so B-Tree range scans return values in the
right sequence. NULLs sort first via a leading tag byte.
"""

from __future__ import annotations

import struct

from repro.errors import IndexError_
from repro.storage.record import ValueType

_NULL_TAG = b"\x00"
_VALUE_TAG = b"\x01"

_I64_BE = struct.Struct(">Q")
_F64_BE = struct.Struct(">d")

_INT_OFFSET = 1 << 63


def encode_int(value: int) -> bytes:
    """Offset-binary big-endian signed 64-bit encoding."""
    if not -_INT_OFFSET <= value < _INT_OFFSET:
        raise IndexError_(f"integer {value} out of 64-bit range")
    return _I64_BE.pack(value + _INT_OFFSET)


def decode_int(data: bytes) -> int:
    return _I64_BE.unpack(data)[0] - _INT_OFFSET


def encode_float(value: float) -> bytes:
    """IEEE-754 bits, flipped so byte order matches numeric order."""
    bits = struct.unpack(">Q", _F64_BE.pack(value))[0]
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1  # negative: flip everything
    else:
        bits ^= 1 << 63  # positive: flip sign bit
    return _I64_BE.pack(bits)


def encode_text(value: str) -> bytes:
    return value.encode("utf-8")


def encode_bool(value: bool) -> bytes:
    return b"\x01" if value else b"\x00"


def encode_key(value: object, vtype: ValueType) -> bytes:
    """Encode ``value`` of ``vtype`` as an order-preserving index key.

    ``None`` sorts before every real value.
    """
    if value is None:
        return _NULL_TAG
    if vtype is ValueType.INT:
        return _VALUE_TAG + encode_int(value)
    if vtype is ValueType.FLOAT:
        return _VALUE_TAG + encode_float(float(value))
    if vtype is ValueType.TEXT:
        return _VALUE_TAG + encode_text(value)
    if vtype is ValueType.BOOL:
        return _VALUE_TAG + encode_bool(value)
    raise IndexError_(f"type {vtype} is not indexable")
