"""Summary-aware query optimizer (§5).

Equivalence/transformation rules over the summary-based operators (Rules
1–11 of §5.1), summary statistics with per-label histograms (§5.2,
Figure 6), a cardinality/cost model, and a planner that enumerates rewritten
plans, lowers them to physical operators (choosing access paths, join
algorithms, and sort methods), and picks the cheapest.
"""

from repro.optimizer.statistics import StatisticsCatalog, LabelStats, Histogram
from repro.optimizer.rules import apply_rules
from repro.optimizer.planner import Planner, PlannerOptions

__all__ = [
    "StatisticsCatalog",
    "LabelStats",
    "Histogram",
    "apply_rules",
    "Planner",
    "PlannerOptions",
]
