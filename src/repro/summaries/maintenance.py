"""Incremental summary maintenance (§2 + §4.1.2).

:class:`SummaryManager` owns the summary-instance registry, the per-table
``R_SummaryStorage`` tables, the per-tuple CluStream states, and the
annotation store. Every annotation mutation flows through it:

* **Adding an annotation on an un-annotated tuple** creates the tuple's
  storage row (the paper's *Insertion* case) and notifies index observers
  with the fresh classifier objects.
* **Adding on an already-annotated tuple** updates the affected summary
  objects in place (*Update* case); observers receive old/new label counts
  so a Summary-BTree can delete+re-insert only the modified keys.
* **Deleting an annotation / a tuple** reverses those effects.

Index structures and optimizer statistics both subscribe through the same
observer interface, matching the paper's "statistics are maintained whenever
a summary object is updated" (§5.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Protocol

from repro.annotations.annotation import Annotation, AnnotationTarget
from repro.annotations.store import AnnotationStore
from repro.cache import CacheInvalidator, SummaryCache, default_cache_bytes
from repro.errors import SummaryError, UnknownInstanceError
from repro.mining.clustream import CluStream
from repro.obs.metrics import MetricsRegistry
from repro.storage.buffer import BufferPool
from repro.summaries.functions import SummarySet
from repro.summaries.instances import (
    ClassifierInstance,
    ClusterInstance,
    SnippetInstance,
    SummaryInstance,
)
from repro.summaries.objects import (
    ClassifierObject,
    ClusterGroup,
    ClusterObject,
    SnippetObject,
    SummaryObject,
)
from repro.summaries.storage import SummaryStorage


class SummaryObserver(Protocol):
    """Observer notified of classifier summary-object changes."""

    def on_summary_insert(self, oid: int, obj: ClassifierObject) -> None:
        """A new storage row was created carrying ``obj``."""

    def on_summary_update(
        self, oid: int, old_counts: dict[str, int], new_counts: dict[str, int]
    ) -> None:
        """An existing classifier object changed label counts."""

    def on_tuple_delete(self, oid: int, counts: dict[str, int]) -> None:
        """The tuple (and its summary row) was deleted."""


class SummaryManager:
    """The summary subsystem's single entry point."""

    #: Class-level fallback for managers unpickled from pre-cache images.
    cache: SummaryCache | None = None

    def __init__(
        self,
        pool: BufferPool,
        metrics: MetricsRegistry | None = None,
        cache_bytes: int | None = None,
    ):
        #: maintenance-event counters (``maint.*``); shared with the owning
        #: Database's registry so EXPLAIN ANALYZE can report deltas.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: shared summary-set cache in front of every SummaryStorage;
        #: capacity defaults to the REPRO_CACHE_BYTES env var (0 = off).
        self.cache = SummaryCache(
            capacity_bytes=(
                default_cache_bytes() if cache_bytes is None else cache_bytes
            ),
            metrics=self.metrics,
        )
        self._cell_annotated: set[str] = set()
        #: black-box summary-set UDFs (§3.2): name -> callable(SummarySet)
        self.udfs: dict[str, object] = {}
        self.pool = pool
        self.annotations = AnnotationStore(pool)
        self._instances: dict[str, SummaryInstance] = {}
        self._links: dict[str, list[str]] = defaultdict(list)  # table -> names
        self._storages: dict[str, SummaryStorage] = {}
        self._clusterers: dict[tuple[str, int, str], CluStream] = {}
        #: (table, instance) -> observers
        self._observers: dict[tuple[str, str], list[SummaryObserver]] = defaultdict(list)

    # -- instance registry ---------------------------------------------------------

    def create_classifier_instance(
        self,
        name: str,
        labels: list[str],
        seed_examples: list[tuple[str, str]] | None = None,
    ) -> ClassifierInstance:
        """Define a Classifier summary instance and seed-train its model."""
        instance = ClassifierInstance(name=name, labels=list(labels))
        if seed_examples:
            instance.train(seed_examples)
        self._register(instance)
        return instance

    def create_hierarchical_classifier_instance(
        self,
        name: str,
        tree_spec: dict,
        seed_examples: list[tuple[str, str]] | None = None,
    ):
        """Define a multi-level Classifier instance (future-work §8): the
        Naive Bayes model classifies to the hierarchy's leaves; inner nodes
        roll up at query time."""
        from repro.summaries.hierarchy import (
            HierarchicalClassifierInstance,
            LabelTree,
        )

        tree = tree_spec if isinstance(tree_spec, LabelTree) else LabelTree(tree_spec)
        instance = HierarchicalClassifierInstance(
            name=name, labels=tree.leaves(), tree=tree
        )
        if seed_examples:
            instance.train(seed_examples)
        self._register(instance)
        return instance

    def create_snippet_instance(
        self, name: str, min_chars: int = 1000, max_chars: int = 400
    ) -> SnippetInstance:
        """Define a Snippet summary instance."""
        instance = SnippetInstance(name=name, min_chars=min_chars, max_chars=max_chars)
        self._register(instance)
        return instance

    def create_cluster_instance(self, name: str, **kwargs) -> ClusterInstance:
        """Define a Cluster summary instance."""
        instance = ClusterInstance(name=name, **kwargs)
        self._register(instance)
        return instance

    def _register(self, instance: SummaryInstance) -> None:
        if instance.name in self._instances:
            raise SummaryError(f"summary instance {instance.name!r} already exists")
        self._instances[instance.name] = instance

    def instance(self, name: str) -> SummaryInstance:
        if name not in self._instances:
            raise UnknownInstanceError(f"no summary instance named {name!r}")
        return self._instances[name]

    def has_instance(self, name: str) -> bool:
        return name in self._instances

    # -- table links (Alter Table ... Add <InstanceName>) -----------------------------

    def link(self, table: str, instance_name: str) -> None:
        """Link a summary instance to a relation (§2.1)."""
        self.instance(instance_name)  # validate
        table = table.lower()
        if instance_name in self._links[table]:
            raise SummaryError(
                f"instance {instance_name!r} already linked to {table!r}"
            )
        self._links[table].append(instance_name)

    def unlink(self, table: str, instance_name: str) -> None:
        """Drop the link (Alter Table ... Drop <InstanceName>)."""
        table = table.lower()
        if instance_name not in self._links[table]:
            raise SummaryError(f"instance {instance_name!r} not linked to {table!r}")
        self._links[table].remove(instance_name)

    def instances_for(self, table: str) -> list[SummaryInstance]:
        return [self._instances[n] for n in self._links[table.lower()]]

    def is_linked(self, table: str, instance_name: str) -> bool:
        return instance_name in self._links[table.lower()]

    def tables_with_instance(self, instance_name: str) -> list[str]:
        return [t for t, names in self._links.items() if instance_name in names]

    def storage_for(self, table: str) -> SummaryStorage:
        table = table.lower()
        if table not in self._storages:
            self._storages[table] = SummaryStorage(
                table, self.pool, cache=self.cache
            )
            if self.cache is not None:
                # Observer-driven invalidation: the "*" channel sees one
                # event per storage write/delete for this table.
                self.add_observer(
                    table, "*", CacheInvalidator(self.cache, table)
                )
        return self._storages[table]

    # -- observers ----------------------------------------------------------------

    def add_observer(
        self, table: str, instance_name: str, observer: SummaryObserver
    ) -> None:
        self._observers[(table.lower(), instance_name)].append(observer)

    def remove_observer(
        self, table: str, instance_name: str, observer: SummaryObserver
    ) -> None:
        self._observers[(table.lower(), instance_name)].remove(observer)

    def _notify(self, table: str, instance_name: str, method: str, *args) -> None:
        self.metrics.inc(f"maint.{method}")
        for observer in self._observers.get((table.lower(), instance_name), []):
            getattr(observer, method)(*args)

    # -- annotation mutations ----------------------------------------------------------

    def register_udf(self, name: str, fn) -> None:
        """Register a black-box UDF usable in summary predicates (§3.2),
        e.g. ``Where diseaseHeavy(r.$)``.  ``fn`` receives the evaluated
        arguments (a bare ``alias.$`` evaluates to the SummarySet)."""
        self.udfs[name] = fn

    def has_cell_annotations(self, table: str) -> bool:
        """True when any annotation ever targeted specific columns of
        ``table``.  The planner's summary-index side condition: when False,
        projection-time annotation elimination is a no-op on classifier
        counts, so index probes (which see stored counts) stay equivalent
        to scan plans."""
        return table.lower() in self._cell_annotated

    def _record_targets(self, targets: list[AnnotationTarget]) -> None:
        for target in targets:
            if target.columns:
                self._cell_annotated.add(target.table.lower())

    def add_annotation(
        self, text: str, targets: list[AnnotationTarget],
        ann_id: int | None = None,
    ) -> Annotation:
        """Store a raw annotation and incrementally update every summary
        object it affects.  ``ann_id`` forces the assigned id (WAL replay)."""
        self._record_targets(targets)
        self.metrics.inc("maint.annotation_add")
        annotation = self.annotations.create(text, targets, ann_id=ann_id)
        for table, oid in self._affected_tuples(annotation):
            self._apply_to_tuple(annotation, table, oid)
        return annotation

    def add_annotations_bulk(
        self, items: list[tuple[str, list[AnnotationTarget]]]
    ) -> list[Annotation]:
        """Bulk-load many annotations (initial-upload mode, §6).

        Summary objects are written back once per affected tuple instead of
        once per annotation; observers see one consolidated event per tuple.
        """
        for _text, targets in items:
            self._record_targets(targets)
        self.metrics.inc("maint.annotation_add", len(items))
        annotations = [self.annotations.create(t, targets) for t, targets in items]
        grouped: dict[tuple[str, int], list[Annotation]] = {}
        for annotation in annotations:
            for key in self._affected_tuples(annotation):
                grouped.setdefault(key, []).append(annotation)
        for (table, oid), batch in grouped.items():
            self._apply_batch_to_tuple(batch, table, oid)
        return annotations

    def _apply_batch_to_tuple(
        self, batch: list[Annotation], table: str, oid: int
    ) -> None:
        instances = self.instances_for(table)
        if not instances:
            return
        storage = self.storage_for(table)
        objects = storage.get(oid)
        created_row = objects is None
        if objects is None:
            objects = {}
        old_counts: dict[str, dict[str, int] | None] = {}
        for instance in instances:
            obj = objects.get(instance.name)
            if obj is None:
                old_counts[instance.name] = None
                objects[instance.name] = instance.new_object(oid)
            elif isinstance(obj, ClassifierObject):
                old_counts[instance.name] = dict(obj.rep())
        for annotation in batch:
            columns = annotation.columns_on(table, oid)
            for instance in instances:
                obj = objects[instance.name]
                if isinstance(instance, ClassifierInstance):
                    assert isinstance(obj, ClassifierObject)
                    label = instance.classify(annotation.text)
                    obj.add_annotation(annotation.ann_id, label, columns)
                elif isinstance(instance, SnippetInstance):
                    assert isinstance(obj, SnippetObject)
                    obj.add_annotation(
                        annotation.ann_id, columns,
                        instance.snippet_for(annotation.text),
                    )
                else:
                    assert isinstance(instance, ClusterInstance)
                    clusterer = self._clusterer_for(table, oid, instance, objects)
                    clusterer.insert(annotation.ann_id, annotation.text)
                    obj.ann_targets[annotation.ann_id] = columns
        for instance in instances:
            if isinstance(instance, ClusterInstance):
                clusterer = self._clusterers.get((table, oid, instance.name))
                if clusterer is not None:
                    self._rebuild_cluster_object(
                        objects[instance.name], clusterer  # type: ignore[arg-type]
                    )
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)
        for instance in instances:
            if not isinstance(instance, ClassifierInstance):
                continue
            obj = objects[instance.name]
            assert isinstance(obj, ClassifierObject)
            previous = old_counts.get(instance.name)
            if created_row or previous is None:
                self._notify(table, instance.name, "on_summary_insert", oid, obj)
            else:
                self._notify(
                    table, instance.name, "on_summary_update", oid, previous,
                    dict(obj.rep()),
                )

    def delete_annotation(self, ann_id: int) -> None:
        """Remove a raw annotation and subtract its effects (§4.1.2)."""
        self.metrics.inc("maint.annotation_delete")
        annotation = self.annotations.delete(ann_id)
        for table, oid in self._affected_tuples(annotation):
            self._remove_from_tuple(annotation, table, oid)

    def on_tuple_delete(self, table: str, oid: int) -> None:
        """The data tuple is gone: drop its summary row and index entries."""
        table = table.lower()
        storage = self.storage_for(table)
        objects = storage.get(oid)
        if objects is None:
            return
        for name, obj in objects.items():
            if isinstance(obj, ClassifierObject):
                self._notify(table, name, "on_tuple_delete", oid,
                             dict(obj.rep()))
            self._clusterers.pop((table, oid, name), None)
        storage.delete(oid)
        self._notify(table, "*", "on_objects_delete", oid)

    # -- reads -------------------------------------------------------------------------

    def summary_set_for(self, table: str, oid: int) -> SummarySet:
        """The stored summary objects of one tuple as a :class:`SummarySet`.

        Objects are deserialized copies; callers may mutate them freely.
        """
        objects = self.storage_for(table).get(oid)
        return SummarySet(objects or {})

    def raw_texts_for(self, table: str, oid: int) -> list[str]:
        """Raw texts of every annotation attached to a tuple (keyword-search
        fallback of §3.1).

        Memoized per (table, oid): annotation texts are immutable and any
        change to *which* annotations a tuple carries rewrites its storage
        row, which invalidates both cache kinds for the OID.
        """
        table = table.lower()
        cache = self.cache
        if cache is not None and cache.enabled:
            hit, texts = cache.lookup(table, oid, kind="texts")
            if hit:
                return list(texts)
        objects = self.storage_for(table).get(oid)
        if not objects:
            texts = []
        else:
            ann_ids: set[int] = set()
            for obj in objects.values():
                ann_ids |= obj.all_annotation_ids()
            texts = self.annotations.texts(sorted(ann_ids))
        if cache is not None and cache.enabled:
            cache.store(
                table, oid, tuple(texts),
                sum(len(t) for t in texts), kind="texts",
            )
        return texts

    def zoom_in(
        self, table: str, oid: int, instance_name: str,
        selector: str | int | None = None,
    ) -> list[str]:
        """Zoom-in: raw annotation texts behind a summary (or one of its
        representatives).

        ``selector`` is a class label for Classifier objects, a Rep[]
        position for Snippet/Cluster objects, or None for everything.
        """
        objects = self.storage_for(table).get(oid)
        if not objects or instance_name not in objects:
            return []
        obj = objects[instance_name]
        if selector is None:
            ann_ids = sorted(obj.all_annotation_ids())
        elif isinstance(obj, ClassifierObject) and isinstance(selector, str):
            if selector not in obj.label_elements:
                from repro.summaries.hierarchy import (
                    HierarchicalClassifierInstance,
                )

                instance = self._instances.get(instance_name)
                if isinstance(instance, HierarchicalClassifierInstance) \
                        and selector in instance.tree:
                    # Multi-level zoom: an inner node unions its subtree.
                    ann_ids = instance.resolve_elements(obj, selector)
                    return self.annotations.texts(ann_ids)
                raise SummaryError(f"no label {selector!r} on {instance_name!r}")
            ann_ids = sorted(obj.label_elements[selector])
        elif isinstance(selector, int):
            element_lists = obj.elements()
            if not 0 <= selector < len(element_lists):
                raise SummaryError(f"representative {selector} out of range")
            ann_ids = element_lists[selector]
        else:
            raise SummaryError(f"bad zoom selector {selector!r}")
        return self.annotations.texts(ann_ids)

    # -- internals -----------------------------------------------------------------------

    @staticmethod
    def _affected_tuples(annotation: Annotation) -> list[tuple[str, int]]:
        seen: list[tuple[str, int]] = []
        for target in annotation.targets:
            key = (target.table.lower(), target.oid)
            if key not in seen:
                seen.append(key)
        return seen

    def _apply_to_tuple(self, annotation: Annotation, table: str, oid: int) -> None:
        instances = self.instances_for(table)
        if not instances:
            return
        storage = self.storage_for(table)
        objects = storage.get(oid)
        created_row = objects is None
        if objects is None:
            objects = {}
        columns = annotation.columns_on(table, oid)
        updates: list[tuple[str, dict[str, int] | None, ClassifierObject]] = []
        for instance in instances:
            obj = objects.get(instance.name)
            fresh = obj is None
            if obj is None:
                obj = instance.new_object(oid)
                objects[instance.name] = obj
            if isinstance(instance, ClassifierInstance):
                assert isinstance(obj, ClassifierObject)
                old_counts = None if fresh else dict(obj.rep())
                label = instance.classify(annotation.text)
                obj.add_annotation(annotation.ann_id, label, columns)
                updates.append((instance.name, old_counts, obj))
            elif isinstance(instance, SnippetInstance):
                assert isinstance(obj, SnippetObject)
                obj.add_annotation(
                    annotation.ann_id, columns, instance.snippet_for(annotation.text)
                )
            else:
                assert isinstance(instance, ClusterInstance)
                clusterer = self._clusterer_for(table, oid, instance, objects)
                clusterer.insert(annotation.ann_id, annotation.text)
                self._rebuild_cluster_object(obj, clusterer)  # type: ignore[arg-type]
                obj.ann_targets[annotation.ann_id] = columns
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)
        for name, old_counts, obj in updates:
            if created_row or old_counts is None:
                self._notify(table, name, "on_summary_insert", oid, obj)
            else:
                self._notify(
                    table, name, "on_summary_update", oid, old_counts,
                    dict(obj.rep()),
                )

    def _remove_from_tuple(self, annotation: Annotation, table: str, oid: int) -> None:
        storage = self.storage_for(table)
        objects = storage.get(oid)
        if objects is None:
            return
        ann_id = annotation.ann_id
        for name, obj in objects.items():
            if isinstance(obj, ClassifierObject):
                if ann_id not in obj.all_annotation_ids():
                    continue
                old_counts = dict(obj.rep())
                obj.remove_annotations({ann_id})
                self._notify(
                    table, name, "on_summary_update", oid, old_counts,
                    dict(obj.rep()),
                )
            elif isinstance(obj, ClusterObject):
                key = (table, oid, name)
                clusterer = self._clusterers.get(key)
                if clusterer is not None and clusterer.cluster_of(ann_id):
                    clusterer.remove(ann_id)
                    self._rebuild_cluster_object(obj, clusterer)
                else:
                    obj.remove_annotations({ann_id})
                obj.ann_targets.pop(ann_id, None)
            else:
                obj.remove_annotations({ann_id})
        storage.put(oid, objects)
        self._notify(table, "*", "on_objects_write", oid, objects)

    def _clusterer_for(
        self,
        table: str,
        oid: int,
        instance: ClusterInstance,
        objects: dict[str, SummaryObject],
    ) -> CluStream:
        key = (table, oid, instance.name)
        clusterer = self._clusterers.get(key)
        if clusterer is None:
            clusterer = instance.new_clusterer()
            existing = objects.get(instance.name)
            if isinstance(existing, ClusterObject) and existing.groups:
                # Rebuild in-memory state from the raw annotations (e.g.
                # after the engine restarts or the state was evicted).
                for group in existing.groups:
                    for member in sorted(group.members):
                        clusterer.insert(
                            member, self.annotations.get(member).text
                        )
            self._clusterers[key] = clusterer
        return clusterer

    @staticmethod
    def _rebuild_cluster_object(obj: ClusterObject, clusterer: CluStream) -> None:
        obj.groups = [
            ClusterGroup(rep_id, set(members),
                         {m: clusterer.cluster_of(m).excerpts[m] for m in members})
            for (rep_id, _), _, members in clusterer.groups()
        ]
